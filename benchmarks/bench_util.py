"""Shared plumbing for the reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper's
evaluation: it runs the experiment on the simulated cluster, prints a
paper-vs-measured comparison, persists the same table under
``benchmarks/results/<name>.txt``, and asserts the *shape* claims
(who wins, rough factors, crossovers) — never absolute numbers, since
the substrate is a simulator rather than the authors' testbed.
"""

from __future__ import annotations

import json
import os
import subprocess
from typing import Any, Dict, Iterable, List, Optional, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Version of the results-JSON envelope.  Bump when the meaning or
#: layout of the stamped fields changes, so trajectory tooling (and
#: the ``BENCH_kernel.json`` staleness gate) can refuse to compare
#: incomparable documents.
RESULTS_SCHEMA_VERSION = 1


def git_sha() -> str:
    """The repo HEAD commit, or ``"unknown"`` outside a git checkout.

    Stamped into every results JSON so a perf number is always tied to
    the code that produced it — the point of tracking a baseline.
    """
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True,
            text=True, cwd=REPO_ROOT, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


def emit(name: str, lines: Iterable[str]) -> str:
    """Print a result block and persist it for the record."""
    text = "\n".join(lines)
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    return path


def emit_json(name: str, payload: Dict[str, Any],
              cluster: Optional[Any] = None,
              path: Optional[str] = None) -> str:
    """Persist a machine-readable result under ``results/<name>.json``.

    ``payload`` carries the benchmark's own summary (throughput,
    latency, whatever the figure measures).  When a cluster is passed,
    its end-of-run health report is appended — out-of-band, so the
    measured run is unchanged.  Every document is stamped with the
    results schema version and the git SHA it was produced at, so perf
    trajectories are comparable across PRs.  ``path`` overrides the
    destination (``BENCH_kernel.json`` lives at the repo root).
    """
    doc = {"benchmark": name,
           "schema_version": RESULTS_SCHEMA_VERSION,
           "git_sha": git_sha(),
           **payload}
    if cluster is not None:
        doc["cluster_health"] = _cluster_health(cluster)
    if path is None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True, default=str)
        fh.write("\n")
    return path


def _cluster_health(cluster: Any) -> Dict[str, Any]:
    try:
        report = cluster.health()
    # mal: disable=MAL004 -- a dead cluster is itself a benchmark
    # result; the report records the failure instead of aborting
    except Exception as exc:
        return {"status": "HEALTH_ERR",
                "error": f"{type(exc).__name__}: {exc}"}
    return report


def table(headers: Sequence[str], rows: Sequence[Sequence]) -> List[str]:
    """Fixed-width text table."""
    cols = [[str(h)] + [str(r[i]) for r in rows]
            for i, h in enumerate(headers)]
    widths = [max(len(cell) for cell in col) for col in cols]
    def fmt(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
    out = [fmt(headers), fmt(["-" * w for w in widths])]
    out.extend(fmt(r) for r in rows)
    return out
