"""CI gate: the tracked ``BENCH_kernel.json`` baseline must exist and
be fresh.

Fails (exit 1) when the repo-root ``BENCH_kernel.json``:

* is missing — the kernel throughput benchmark was never run, so
  there is no perf trajectory to compare against;
* carries a different results schema version than this checkout's
  ``bench_util`` — the numbers are not comparable;
* is missing any of the required metrics;
* is **stale** — its stamped ``git_sha`` is not an ancestor of the
  current HEAD (the baseline was generated on some other line of
  history, or never regenerated after a rebase).

Usage: ``python benchmarks/check_bench_baseline.py`` (from anywhere
inside the repo).  CI runs it before regenerating the baseline, so a
PR that forgets to refresh ``BENCH_kernel.json`` fails loudly.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

from bench_util import REPO_ROOT, RESULTS_SCHEMA_VERSION

BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_kernel.json")

REQUIRED_KEYS = (
    "events", "events_per_sec", "wall_seconds", "sim_seconds",
    "peak_rss_bytes", "git_sha", "schema_version",
)


def fail(message: str) -> int:
    print(f"BENCH_kernel.json baseline check FAILED: {message}")
    return 1


def check() -> int:
    if not os.path.exists(BENCH_PATH):
        return fail(f"missing {BENCH_PATH}; run "
                    "`python -m pytest benchmarks/test_kernel_throughput.py`")
    with open(BENCH_PATH) as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as exc:
            return fail(f"unparsable JSON: {exc}")
    missing = [k for k in REQUIRED_KEYS if k not in doc]
    if missing:
        return fail(f"missing required keys {missing}")
    if doc["schema_version"] != RESULTS_SCHEMA_VERSION:
        return fail(
            f"schema version {doc['schema_version']} != current "
            f"{RESULTS_SCHEMA_VERSION}; regenerate the baseline")
    if doc["events_per_sec"] <= 0 or doc["wall_seconds"] <= 0:
        return fail("non-positive throughput metrics; corrupt baseline")
    sha = doc["git_sha"]
    if sha == "unknown":
        return fail("baseline carries git_sha 'unknown'; regenerate "
                    "from inside the git checkout")
    try:
        proc = subprocess.run(
            ["git", "merge-base", "--is-ancestor", sha, "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=30)
    except (OSError, subprocess.SubprocessError) as exc:
        print(f"note: ancestry check skipped (git unavailable: {exc})")
        proc = None
    if proc is not None and proc.returncode != 0:
        if "not a git repository" in proc.stderr.lower():
            print("note: ancestry check skipped (not a git checkout)")
        elif "bad revision" in proc.stderr.lower() \
                or "bad object" in proc.stderr.lower():
            # Shallow clones cannot resolve old SHAs; checkout with
            # fetch-depth: 0 (the CI job does) for the full check.
            print(f"note: ancestry check inconclusive for {sha[:12]} "
                  "(shallow clone?)")
        else:
            return fail(
                f"stale baseline: git_sha {sha[:12]} is not an "
                "ancestor of HEAD; regenerate BENCH_kernel.json")
    print(f"BENCH_kernel.json OK: schema v{doc['schema_version']}, "
          f"{doc['events_per_sec']:.0f} events/sec at {sha[:12]}")
    return 0


if __name__ == "__main__":
    sys.exit(check())
