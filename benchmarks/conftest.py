"""Benchmark suite configuration.

Makes the sibling ``bench_util`` module importable regardless of the
pytest rootdir, and registers the ``shape`` marker used to tag the
assertions that encode the paper's qualitative claims.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "shape: asserts a qualitative claim from the paper")
