"""Ablation (section 6.2.3): balancer decision aggressiveness.

Paper: "The other way to change aggressiveness of the decision making
is to program into the balancer a threshold for sustained overload.
This forces the balancer to wait a certain number of iterations after
a migration before proceeding ... our experiments confirm that the
more conservative the approach the less overall throughput."

We wrap the Mantle sequencer policy with increasing save_state backoff
counts and measure whole-run throughput: each added backoff tick delays
convergence, costing aggregate ops.
"""

from bench_util import emit, table

from repro.core import LoadBalancingInterface, MalacologyCluster
from repro.mantle import attach_balancers, builtin
from repro.workloads import SequencerWorkload

DURATION = 120.0
BACKOFFS = [0, 2, 4]


def run_one(backoff_ticks, seed=131):
    cluster = MalacologyCluster.build(osds=10, mdss=3, seed=seed)
    attach_balancers(cluster)
    source = builtin.with_backoff(builtin.MANTLE_SEQUENCER, backoff_ticks)
    cluster.do(LoadBalancingInterface(cluster.admin).publish_policy(
        f"backoff-{backoff_ticks}", source))
    workload = SequencerWorkload(cluster, num_sequencers=3,
                                 clients_per_seq=4)
    workload.setup(lease_mode="round-trip")
    start = cluster.sim.now
    workload.start()
    cluster.run(DURATION)
    workload.stop()
    return {
        "whole_run": workload.mean_rate(start, start + DURATION),
        "steady": workload.mean_rate(start + DURATION - 20,
                                     start + DURATION),
    }


def run_experiment():
    return {b: run_one(b) for b in BACKOFFS}


def test_ablation_backoff(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [(b, f"{r['whole_run']:.0f}", f"{r['steady']:.0f}")
            for b, r in results.items()]
    lines = table(["backoff (ticks)", "whole-run ops/s", "steady ops/s"],
                  rows)
    lines.append("")
    lines.append("paper: the more conservative the approach the less "
                 "overall throughput")
    emit("ablation_backoff", lines)

    whole = [results[b]["whole_run"] for b in BACKOFFS]
    # Aggregate throughput strictly suffers as backoff grows.
    assert whole[0] > whole[-1] * 1.05
    for a, b in zip(whole, whole[1:]):
        assert b <= a * 1.02
    # All variants eventually converge to similar steady state.
    steadies = [results[b]["steady"] for b in BACKOFFS]
    assert max(steadies) < 1.5 * min(steadies)
