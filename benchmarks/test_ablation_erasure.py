"""Ablation: erasure coding vs replication (the §4.4 durability menu).

RADOS protects data "using erasure coding, replication, and scrubbing";
the operator's choice trades storage overhead against I/O cost.  This
ablation measures both for 2x/3x replication vs a k=2,m=1 EC profile
(all tolerate at least one failure; 3x and EC degrade differently):

* storage overhead = bytes stored cluster-wide / logical bytes;
* write latency = acked write_full round trip;
* read latency = healthy-path read (EC pays shard gathering).
"""

from bench_util import emit, table

from repro.core import MalacologyCluster
from repro.util.stats import OnlineStats

OBJECT_BYTES = 16 * 1024
OBJECTS = 40


def run_profile(pool_cfg, seed=161):
    cluster = MalacologyCluster.build(
        osds=4, mdss=0, seed=seed,
        pools={"bench": dict(pool_cfg, pg_num=16)})
    cluster.run(2.0)
    admin = cluster.admin
    blob = b"d" * OBJECT_BYTES
    write_lat, read_lat = OnlineStats(), OnlineStats()
    for i in range(OBJECTS):
        t0 = cluster.sim.now
        cluster.do(admin.rados_write_full("bench", f"obj-{i}", blob))
        write_lat.add(cluster.sim.now - t0)
        t0 = cluster.sim.now
        cluster.do(admin.rados_read("bench", f"obj-{i}"))
        read_lat.add(cluster.sim.now - t0)
    stored = 0
    for osd in cluster.osds:
        for pg in osd.pgs.values():
            stored += sum(obj.size for obj in pg.values())
        stored += sum(len(e["shard"]) for e in osd.ec_shards.values())
    logical = OBJECT_BYTES * OBJECTS
    return {
        "overhead": stored / logical,
        "write_us": write_lat.mean * 1e6,
        "read_us": read_lat.mean * 1e6,
    }


def run_experiment():
    return {
        "replicated 2x": run_profile({"size": 2}),
        "replicated 3x": run_profile({"size": 3}),
        "EC k=2 m=1": run_profile({"ec": {"k": 2, "m": 1}}),
    }


def test_ablation_erasure(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [(name, f"{r['overhead']:.2f}x", f"{r['write_us']:.0f}",
             f"{r['read_us']:.0f}")
            for name, r in results.items()]
    lines = table(["profile", "storage overhead", "write latency (us)",
                   "read latency (us)"], rows)
    lines.append("")
    lines.append("EC buys storage (1.5x vs 2-3x) at extra read-path "
                 "cost (shard gathering)")
    emit("ablation_erasure", lines)

    r2 = results["replicated 2x"]
    r3 = results["replicated 3x"]
    ec = results["EC k=2 m=1"]
    # Storage overheads are the headline trade-off.
    assert 1.95 <= r2["overhead"] <= 2.05
    assert 2.95 <= r3["overhead"] <= 3.05
    assert 1.45 <= ec["overhead"] <= 1.55
    # EC reads pay shard gathering; replicated reads are primary-local.
    assert ec["read_us"] > 1.5 * r2["read_us"]
    # Extra replicas cost write latency.
    assert r3["write_us"] > r2["write_us"]
