"""Ablation: gossip fanout vs interface propagation latency.

DESIGN.md calls out the map-distribution design (monitor seeds a few
OSDs; peer-to-peer push gossip with fanout F; epoch piggybacking as
anti-entropy).  This ablation sweeps the fanout and shows the tail of
Figure 8's CDF collapsing as fanout grows — and the message cost of
buying that tail down.
"""

from bench_util import emit, table

from repro.core import MalacologyCluster
from repro.rados.osd import OSD
from repro.util.stats import Cdf

OSD_COUNT = 40
UPDATES = 40

SOURCE = """
def noop(ctx, args):
    return None

METHODS = {"noop": noop}
"""


def run_one(fanout, seed=141):
    old_fanout = OSD.GOSSIP_FANOUT
    old_ping = OSD.PING_INTERVAL
    OSD.GOSSIP_FANOUT = fanout
    OSD.PING_INTERVAL = 0.25
    try:
        cluster = MalacologyCluster.build(osds=OSD_COUNT, mdss=0,
                                          seed=seed,
                                          proposal_interval=0.05)
        live = {}

        def make_hook(osd_name):
            def hook(name, version, t):
                live.setdefault(version, {})[osd_name] = t
            return hook

        for osd in cluster.osds:
            osd.interface_live_hook = make_hook(osd.name)

        sent_before = cluster.net.messages_sent
        samples = []
        for version in range(1, UPDATES + 1):
            cluster.do(cluster.admin.rados_install_interface(
                "abl_iface", version, SOURCE))
            committed = cluster.sim.now
            deadline = committed + 5.0
            while (cluster.sim.now < deadline
                   and len(live.get(version, {})) < OSD_COUNT):
                cluster.run(0.05)
            samples.extend(t - committed
                           for t in live.get(version, {}).values())
        messages = cluster.net.messages_sent - sent_before
        return Cdf(samples), messages / UPDATES
    finally:
        OSD.GOSSIP_FANOUT = old_fanout
        OSD.PING_INTERVAL = old_ping


def run_experiment():
    return {fanout: run_one(fanout) for fanout in (1, 2, 4)}


def test_ablation_gossip(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for fanout, (cdf, msgs) in results.items():
        rows.append((fanout,
                     f"{cdf.quantile(0.5) * 1e3:.1f}",
                     f"{cdf.quantile(0.9) * 1e3:.1f}",
                     f"{cdf.max * 1e3:.1f}",
                     f"{msgs:.0f}"))
    lines = table(["fanout", "p50 (ms)", "p90 (ms)", "max (ms)",
                   "msgs/update"], rows)
    lines.append("")
    lines.append("higher fanout collapses the propagation tail; total "
                 "message cost stays flat because fast push gossip "
                 "displaces the anti-entropy pulls that slow fanouts "
                 "fall back on")
    emit("ablation_gossip", lines)

    tail1 = results[1][0].quantile(0.9)
    tail4 = results[4][0].quantile(0.9)
    # Fanout dramatically shortens the tail ...
    assert tail4 < 0.5 * tail1
    # ... at comparable per-update message cost (push displaces pull).
    costs = [msgs for _, msgs in results.values()]
    assert max(costs) < 2.0 * min(costs)
    # Everything converges eventually regardless of fanout.
    for fanout, (cdf, _) in results.items():
        assert len(cdf) == OSD_COUNT * UPDATES, fanout
