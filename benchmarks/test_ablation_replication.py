"""Ablation: replication factor vs shared-log append latency.

ZLog inherits RADOS's primary-copy replication: the primary acks an
append only after every replica acks.  Sweeping the pool size shows
the durability/latency trade-off the Durability interface exposes —
each extra replica adds (at least) one more replication round trip to
the append path.
"""

from bench_util import emit, table

from repro.core import MalacologyCluster
from repro.util.stats import OnlineStats
from repro.zlog import StripeLayout, ZLog

APPENDS = 150


def run_one(size, seed=151):
    cluster = MalacologyCluster.build(
        osds=4, mdss=1, seed=seed,
        pools={"metadata": {"size": 2, "pg_num": 32},
               "data": {"size": size, "pg_num": 32}})
    log = ZLog(cluster.admin, f"repl{size}",
               layout=StripeLayout(f"repl{size}", width=4))
    cluster.do(log.create())
    # Warm the sequencer cap so we measure the storage path, not the
    # first-acquire cost.
    cluster.do(log.append("warmup"))
    stats = OnlineStats()
    for i in range(APPENDS):
        started = cluster.sim.now

        def one_append(payload=i):
            yield from log.append(payload)

        cluster.do(one_append())
        stats.add(cluster.sim.now - started)
    return stats


def run_experiment():
    return {size: run_one(size) for size in (1, 2, 3)}


def test_ablation_replication(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [(size, f"{s.mean * 1e6:.0f}", f"{s.max * 1e6:.0f}")
            for size, s in results.items()]
    lines = table(["replication factor", "mean append latency (us)",
                   "max (us)"], rows)
    lines.append("")
    lines.append("each extra replica adds a replication round trip to "
                 "the acked append path")
    emit("ablation_replication", lines)

    means = [results[size].mean for size in (1, 2, 3)]
    # Latency grows with the replication factor...
    assert means[0] < means[1] < means[2]
    # ... by roughly a round trip per replica, not by multiples.
    assert means[2] < 3 * means[0]
