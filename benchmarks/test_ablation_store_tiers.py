"""Ablation: store backend tiers under a hot/cold object workload.

The same client workload — a skewed read-mostly stream over a small
hot set plus a long cold tail — races across the four pool profiles
the store subsystem offers: pure MemStore, the log-structured store,
the erasure-coded ColdStore, and ColdStore fronted by the write-back
cache tier.  The shape claim is the classic tiering story: memory is
the ceiling, cold EC storage is the floor, and a small cache buys back
most of the gap whenever the working set fits.
"""

from bench_util import emit, emit_json, table

from repro.core import MalacologyCluster

OPS = 240
HOT, COLD = 8, 64
THINK_EVERY, THINK = 16, 0.5  # let flusher/compaction ticks run

CONFIGS = {
    "memstore": {"backend": "memstore"},
    "logstructured": {"backend": "logstructured"},
    "coldstore": {"backend": {"profile": "coldstore", "k": 2, "m": 1}},
    "cached-cold": {"backend": "coldstore",
                    "cache": {"capacity": 16, "promote_reads": 1}},
}


def quantile(sorted_vals, q):
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(q * len(sorted_vals)))
    return sorted_vals[idx]


def run_one(name, pool_cfg, seed=171):
    cluster = MalacologyCluster.build(
        osds=3, mdss=1, seed=seed,
        pools={"metadata": {"size": 2, "pg_num": 32},
               "data": {"size": 2, "pg_num": 8, **pool_cfg}})

    def prime():
        for i in range(HOT):
            yield from cluster.admin.rados_write_full(
                "data", f"hot{i}", bytes([i]) * 128)
        for i in range(COLD):
            yield from cluster.admin.rados_write_full(
                "data", f"cold{i}", bytes([i % 251]) * 64)

    cluster.do(prime())
    cluster.run(2.0)  # settle: cold batches encode, caches write back

    latencies = []
    for i in range(OPS):
        # 3 of 4 ops touch the hot set; 2 of 5 ops are writes.
        oid = f"hot{i % HOT}" if i % 4 != 3 else f"cold{i % COLD}"
        write = i % 5 < 2

        def one_op(oid=oid, write=write, i=i):
            if write:
                yield from cluster.admin.rados_write_full(
                    "data", oid, bytes([i % 251]) * 128)
            else:
                yield from cluster.admin.rados_read("data", oid)

        started = cluster.sim.now
        cluster.do(one_op())
        latencies.append(cluster.sim.now - started)
        if (i + 1) % THINK_EVERY == 0:
            cluster.run(THINK)

    busy = sum(latencies)
    ordered = sorted(latencies)
    counters = {}
    for osd in cluster.osds:
        for cname, val in osd.perf.dump()["counters"].items():
            if cname.startswith("store."):
                counters[cname] = counters.get(cname, 0) + val
    hits = counters.get("store.cache.hit", 0)
    misses = counters.get("store.cache.miss", 0)
    return {
        "throughput_ops_per_s": OPS / busy,
        "latency_s": {
            "mean": busy / OPS,
            "p50": quantile(ordered, 0.50),
            "p90": quantile(ordered, 0.90),
            "p99": quantile(ordered, 0.99),
        },
        "cache_hit_ratio": (hits / (hits + misses)
                            if hits + misses else None),
        "compactions": counters.get("store.logstructured.compaction", 0),
        "encode_batches": counters.get("store.coldstore.encode_batch", 0),
        "store_counters": counters,
        "health": cluster.health(),
    }


def run_experiment():
    return {name: run_one(name, cfg) for name, cfg in CONFIGS.items()}


def test_ablation_store_tiers(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for name in CONFIGS:
        r = results[name]
        hit = r["cache_hit_ratio"]
        rows.append((name,
                     f"{r['throughput_ops_per_s']:.0f}",
                     f"{r['latency_s']['p50'] * 1e6:.0f}",
                     f"{r['latency_s']['p99'] * 1e6:.0f}",
                     "-" if hit is None else f"{hit:.2f}",
                     r["health"]["status"]))
    lines = table(["backend", "ops/sec", "p50 (us)", "p99 (us)",
                   "cache hit", "health"], rows)
    lines.append("")
    lines.append("tiering story: memory is the ceiling, cold EC the "
                 "floor, the write-back cache buys back the gap for "
                 "the hot set")
    emit("store_tiers", lines)
    emit_json("store_tiers", {"configs": results})

    thr = {n: results[n]["throughput_ops_per_s"] for n in CONFIGS}
    # Memory is the ceiling for every persistent profile.
    assert thr["memstore"] >= max(thr.values()) * 0.999
    assert thr["memstore"] > thr["coldstore"]
    # The cache tier recovers a real fraction of the cold-store gap.
    assert thr["cached-cold"] > thr["coldstore"]
    assert results["cached-cold"]["latency_s"]["p50"] < \
        results["coldstore"]["latency_s"]["p50"]
    # The hot set promotes and then hits.
    assert results["cached-cold"]["cache_hit_ratio"] > 0.3
    # Cold batches really were erasure-coded in the cold profiles.
    assert results["coldstore"]["encode_batches"] > 0
    assert results["cached-cold"]["encode_batches"] > 0
    # No store health check fires at the end of any run.
    for name in CONFIGS:
        checks = results[name]["health"]["checks"]
        assert "CACHE_TIER_FULL" not in checks
        assert "COMPACTION_STALLED" not in checks
