"""Changelog stream benchmark: append throughput and visibility.

Not a paper figure — an ops-facing benchmark for the changelog
subsystem this repo adds on top of the Malacology interfaces (the
shard class is a ``cls_zlog`` sibling; see DESIGN.md).  Measured:

* **append throughput** — records the writer lands in the shard
  objects per second of simulated time while an MDS mutation storm
  is running;
* **end-to-end visibility** — per-record latency from the producer's
  emit timestamp to the consumer handling it (watch/notify wakeups
  mean this tracks the writer's flush cadence, not the 1 s polling
  fallback);
* **lag vs trim** — the peak consumer backlog while the storm runs,
  and that trim reclaims every acknowledged record by the end.

Asserted: every record is consumed exactly as emitted, visibility p90
stays well under the polling fallback, and the stream drains to zero
retained records — shape claims, not absolute numbers.
"""

from bench_util import emit, emit_json

from repro.core import MalacologyCluster
from repro.util.stats import Cdf

FILES = 250
SAMPLE_EVERY = 1.0


def run_stream():
    cluster = MalacologyCluster.build(osds=3, mdss=1, mons=3, seed=90,
                                      changelog=True, mgr=True)
    cluster.run(3.0)
    writer = cluster.changelog_writer
    audit = cluster.audit_pipeline
    client = cluster.new_client("load")

    def storm():
        yield from client.fs_mkdir("/bench")
        for i in range(FILES):
            yield from client.fs_create(f"/bench/f{i}")

    start = cluster.sim.now
    proc = client.do(storm())
    backlog = []  # (t, retained, lag) sampled while the storm runs
    while not proc.done:
        cluster.run(SAMPLE_EVERY)
        status = writer.status()
        backlog.append((cluster.sim.now, status["retained"],
                        status["lag"].get("audit", 0)))
    landed = cluster.sim.now
    # Drain: let the consumer catch up and trim reclaim everything.
    cluster.run(3 * writer.TRIM_INTERVAL)

    appended = writer.perf.get("changelog.appended")
    throughput = appended / (landed - start)
    visibility = Cdf(audit.perf.samples("changelog.visibility"))
    final = writer.status()
    return {
        "cluster": cluster,
        "records": len(audit.received),
        "appended": appended,
        "elapsed": landed - start,
        "throughput": throughput,
        "visibility": visibility,
        "peak_retained": max(r for _, r, _ in backlog),
        "peak_lag": max(l for _, _, l in backlog),
        "final_retained": final["retained"],
        "final_lag": final["lag"].get("audit", 0),
        "trimmed": writer.perf.get("changelog.trimmed"),
    }


def test_changelog_stream_benchmark():
    out = run_stream()
    vis = out["visibility"]
    lines = [
        f"records emitted/consumed   {out['records']}",
        f"append throughput          {out['throughput']:.0f} rec/s "
        f"({out['appended']:.0f} in {out['elapsed']:.2f}s)",
        "visibility (emit -> consume)",
        f"  p50                      {vis.quantile(0.50) * 1e3:.1f} ms",
        f"  p90                      {vis.quantile(0.90) * 1e3:.1f} ms",
        f"  max                      {vis.max * 1e3:.1f} ms",
        f"peak retained / lag        {out['peak_retained']:.0f} / "
        f"{out['peak_lag']:.0f}",
        f"final retained / lag       {out['final_retained']:.0f} / "
        f"{out['final_lag']:.0f} (trimmed {out['trimmed']:.0f})",
    ]
    emit("changelog_stream", lines)
    emit_json("changelog_stream", {
        "records": out["records"],
        "append_throughput_rps": out["throughput"],
        "visibility_s": {
            "p50": vis.quantile(0.50),
            "p90": vis.quantile(0.90),
            "max": vis.max,
        },
        "peak_retained": out["peak_retained"],
        "peak_lag": out["peak_lag"],
        "final_retained": out["final_retained"],
        "trimmed": out["trimmed"],
    }, cluster=out["cluster"])

    # Shape claims: nothing lost, nothing left behind.
    assert out["records"] == FILES + 1  # mkdir + every create
    assert out["appended"] == out["records"]
    # Notify-driven tailing beats the 1 s polling fallback handily.
    assert vis.quantile(0.90) < 1.0
    # Trim reclaimed the acknowledged stream.
    assert out["final_retained"] == 0 and out["final_lag"] == 0
    assert out["trimmed"] == out["appended"]
