"""Figure 10(a): balancing modes — CephFS CPU/workload/hybrid vs Mantle.

Paper: "for this sequencer workload the 3 different modes all have the
same performance ... because the load balancer falls into the same
mode a majority of the time.  The high variation in performance for
the CephFS CPU Mode bar reflects the uncertainty of using something as
dynamic and unpredictable as CPU utilization ... Mantle gives the
administrator more control ... resulting in better throughput and
stability."

We run each mode over several seeds and report mean +/- stdev of
steady-state throughput.  CPU readings carry sampling noise (see
LoadTracker.snapshot), which is exactly what makes the CPU mode's
decisions — and its bar — wobble.
"""

import statistics

from bench_util import emit, emit_json, table

from repro.core import LoadBalancingInterface, MalacologyCluster
from repro.mantle import attach_balancers, builtin
from repro.workloads import SequencerWorkload

DURATION = 90.0
SEEDS = [101, 102, 103]
MODES = {
    "cephfs-cpu": builtin.CEPHFS_CPU,
    "cephfs-workload": builtin.CEPHFS_WORKLOAD,
    "cephfs-hybrid": builtin.CEPHFS_HYBRID,
    "mantle": builtin.MANTLE_SEQUENCER,
}


def run_one(source, seed):
    cluster = MalacologyCluster.build(osds=10, mdss=3, seed=seed)
    attach_balancers(cluster)
    cluster.do(LoadBalancingInterface(cluster.admin).publish_policy(
        "mode-under-test", source))
    workload = SequencerWorkload(cluster, num_sequencers=3,
                                 clients_per_seq=4)
    workload.setup(lease_mode="round-trip")
    start = cluster.sim.now
    workload.start()
    cluster.run(DURATION)
    workload.stop()
    rate = workload.mean_rate(start + DURATION - 30, start + DURATION)
    return rate, cluster.health()


def run_experiment():
    results = {}
    for mode, source in MODES.items():
        runs = [run_one(source, seed) for seed in SEEDS]
        samples = [rate for rate, _ in runs]
        results[mode] = {
            "mean": statistics.mean(samples),
            "stdev": statistics.stdev(samples),
            "samples": samples,
            "health": runs[-1][1],
        }
    return results


def test_fig10a_balancing_modes(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [(mode, f"{r['mean']:.0f}", f"{r['stdev']:.0f}",
             [f"{s:.0f}" for s in r["samples"]])
            for mode, r in results.items()]
    lines = table(["mode", "steady ops/s (mean)", "stdev", "per-seed"],
                  rows)
    lines.append("")
    lines.append("paper: the three CephFS modes perform the same; CPU "
                 "mode has high variance; Mantle is best and stable")
    emit("fig10a_balancing_modes", lines)
    emit_json("fig10a_balancing_modes", {"modes": results})

    # The deterministic CephFS modes (workload, hybrid) are
    # indistinguishable — same structure, same decisions.
    wl = results["cephfs-workload"]
    hy = results["cephfs-hybrid"]
    assert abs(wl["mean"] - hy["mean"]) < 0.1 * wl["mean"]
    # CPU-driven decisions are by far the least predictable: noisy
    # utilization readings trip the migration trigger erratically
    # (sticky migrations ratchet some seeds to full spread, others
    # stall), producing the big error bar of the paper's CPU bar.
    cpu = results["cephfs-cpu"]
    assert cpu["stdev"] > 10 * max(wl["stdev"], 1e-9)
    # Mantle is the best *and* the most stable.
    for mode in ("cephfs-cpu", "cephfs-workload", "cephfs-hybrid"):
        assert results["mantle"]["mean"] >= results[mode]["mean"]
        assert results["mantle"]["stdev"] <= results[mode]["stdev"] + 1e-9
    assert results["mantle"]["mean"] > 1.3 * wl["mean"]
