"""Figure 10(b): migration units — client vs proxy mode, half vs full.

Paper setup: 2 sequencers, 2 servers.  "Client mode does not perform
as well for read-heavy workloads.  We even see a throughput
improvement when migrating all load off the first server ... Proxy
mode does the best in both cases and shows large performance gains
when completely decoupling client request handling and operation
processing in Proxy Mode (Full)" — with "up to a 2x improvement"
between the best and worst combination (figure caption).

The migration unit is exactly the paper's one-liner: half = the
``targets[whoami+1] = mds[whoami]["load"]/2`` policy; full = the same
without the division.  Here we apply the unit explicitly so the four
bars are controlled, as the figure does.
"""

from bench_util import emit, emit_json, table

from repro.core import LoadBalancingInterface, MalacologyCluster
from repro.workloads import SequencerWorkload

DURATION = 40.0
MIGRATE_AT = 10.0


def run_config(mode, unit, seed=111):
    cluster = MalacologyCluster.build(osds=6, mdss=2, seed=seed)
    workload = SequencerWorkload(cluster, num_sequencers=2,
                                 clients_per_seq=4)
    workload.setup(lease_mode="round-trip")
    cluster.do(LoadBalancingInterface(cluster.admin).set_routing_mode(
        mode))
    start = cluster.sim.now
    workload.start()
    cluster.run(MIGRATE_AT)
    source_mds = cluster.mds_of_rank(0)
    count = 1 if unit == "half" else 2
    for idx in range(count):
        cluster.sim.run_until_complete(source_mds.spawn(
            source_mds.migrate_subtree(workload.seq_path(idx), 1)))
    cluster.run(DURATION - MIGRATE_AT)
    workload.stop()
    rate = workload.mean_rate(start + MIGRATE_AT + 10, start + DURATION)
    return rate, cluster.health()


def run_experiment():
    rates = {}
    healths = {}
    for mode in ("client", "proxy"):
        for unit in ("half", "full"):
            rates[(mode, unit)], healths[(mode, unit)] = run_config(
                mode, unit)
    return rates, healths


def test_fig10b_migration_units(benchmark):
    results, healths = benchmark.pedantic(run_experiment, rounds=1,
                                          iterations=1)
    rows = [(mode, unit, f"{rate:.0f}")
            for (mode, unit), rate in results.items()]
    lines = table(["mode", "migration unit", "steady ops/s"], rows)
    lines.append("")
    best = max(results.values())
    worst = min(results.values())
    lines.append(f"best/worst = {best / worst:.2f}x "
                 "(paper: up to 2x)")
    lines.append("paper: proxy beats client mode in both units; known "
                 "deviation: in our queueing model Proxy (Half) can "
                 "edge out Proxy (Full) because the proxy's leftover "
                 "capacity still serves the unmigrated sequencer "
                 "(see EXPERIMENTS.md)")
    emit("fig10b_migration_units", lines)
    emit_json("fig10b_migration_units", {"configs": {
        f"{mode}/{unit}": {"steady_ops": rate,
                           "health": healths[(mode, unit)]}
        for (mode, unit), rate in results.items()}})

    ch = results[("client", "half")]
    cf = results[("client", "full")]
    ph = results[("proxy", "half")]
    pf = results[("proxy", "full")]
    # Proxy mode wins for both migration units, decisively.
    assert ph > 1.5 * ch
    assert pf > 1.5 * cf
    # "Large performance gains" from full decoupling vs client mode.
    assert pf > 1.8 * cf
    # The spread between best and worst combination reaches the
    # paper's "up to 2x".
    assert best / worst > 1.8
    # Both proxy configurations beat both client configurations.
    assert min(ph, pf) > max(ch, cf)
