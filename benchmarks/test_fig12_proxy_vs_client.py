"""Figure 12: per-sequencer throughput over time, proxy vs client mode.

Paper setup: 2 sequencers (4 clients each), 2 servers.  Both
sequencers start below capacity on one server; at t=60 s Sequencer 1
migrates to the slave server.

(a) Proxy mode: "performance of Sequencer 2 decreases because it
stayed on the proxy which now processes requests for Sequencer 2 and
forwards requests for Sequencer 1.  The performance of Sequencer 1
improves dramatically" — total cluster throughput is the highest.

(b) Client mode: "more fair but results in lower cluster throughput"
(the scatter-gather cache-coherence work strains the servers once
client sessions are spread).
"""

from bench_util import emit, emit_json, table

from repro.core import LoadBalancingInterface, MalacologyCluster
from repro.workloads import SequencerWorkload

WARMUP = 60.0
AFTER = 60.0


def run_config(mode, seed=121):
    cluster = MalacologyCluster.build(osds=6, mdss=2, seed=seed)
    workload = SequencerWorkload(cluster, num_sequencers=2,
                                 clients_per_seq=4)
    workload.setup(lease_mode="round-trip")
    cluster.do(LoadBalancingInterface(cluster.admin).set_routing_mode(
        mode))
    start = cluster.sim.now
    workload.start()
    cluster.run(WARMUP)
    source_mds = cluster.mds_of_rank(0)
    cluster.sim.run_until_complete(source_mds.spawn(
        source_mds.migrate_subtree(workload.seq_path(0), 1)))
    cluster.run(AFTER)
    workload.stop()
    window = (start + WARMUP + 15, start + WARMUP + AFTER)
    pre_window = (start + 20, start + WARMUP - 5)
    return {
        "start": start,
        "seq1_pre": workload.per_seq[0].mean_rate(*pre_window),
        "seq2_pre": workload.per_seq[1].mean_rate(*pre_window),
        "seq1_post": workload.per_seq[0].mean_rate(*window),
        "seq2_post": workload.per_seq[1].mean_rate(*window),
        "total_post": workload.total.mean_rate(*window),
        "workload": workload,
        "health": cluster.health(),
    }


def run_experiment():
    return {"proxy": run_config("proxy"), "client": run_config("client")}


def test_fig12_proxy_vs_client(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for mode, r in results.items():
        rows.append((mode,
                     f"{r['seq1_pre']:.0f} -> {r['seq1_post']:.0f}",
                     f"{r['seq2_pre']:.0f} -> {r['seq2_post']:.0f}",
                     f"{r['total_post']:.0f}"))
    lines = table(["mode", "sequencer 1 (pre -> post)",
                   "sequencer 2 (pre -> post)", "cluster total (post)"],
                  rows)
    lines.append("")
    lines.append("time series (cluster ops/s every 15 s, migration at "
                 "t=60):")
    for mode, r in results.items():
        t0 = r["start"]
        samples = [
            f"{r['workload'].total.mean_rate(t0 + t, t0 + t + 15):.0f}"
            for t in range(0, int(WARMUP + AFTER), 15)]
        lines.append(f"  {mode:7s} {' '.join(samples)}")
    lines.append("")
    lines.append("paper: proxy = seq 1 improves dramatically, seq 2 "
                 "dips, best total; client = more fair, lower total")
    emit("fig12_proxy_vs_client", lines)
    emit_json("fig12_proxy_vs_client", {"modes": {
        mode: {k: v for k, v in r.items() if k != "workload"}
        for mode, r in results.items()}})

    proxy, client = results["proxy"], results["client"]
    # Proxy mode: the migrated sequencer improves dramatically...
    assert proxy["seq1_post"] > 2.0 * proxy["seq1_pre"]
    # ... while the sequencer left on the proxy stays pinned near its
    # pre-migration rate (the paper shows an outright dip; our FIFO
    # CPU model mutes it to "no benefit" — see EXPERIMENTS.md).
    assert proxy["seq2_post"] < 1.25 * proxy["seq2_pre"]
    # The asymmetry is dramatic: seq 1 ends far above seq 2.
    assert proxy["seq1_post"] > 2.0 * proxy["seq2_post"]
    # Client mode is more fair across sequencers...
    ratio = client["seq1_post"] / client["seq2_post"]
    assert 0.8 < ratio < 1.25
    # ... but cluster throughput is well below proxy mode's.
    assert proxy["total_post"] > 1.5 * client["total_post"]
