"""Figure 2: growth of co-designed object storage interfaces in Ceph.

Paper: "Since 2010, the growth in the number of co-designed object
storage interfaces in Ceph has been accelerating."  The figure plots
cumulative object classes and total methods per year.

Substitution (DESIGN.md): the figure surveys the real Ceph source
history; we regenerate the series from the transcribed dataset and
assert the acceleration property plus the Table-1-consistent totals.
"""

from bench_util import emit, emit_json, table

from repro.data import growth_series
from repro.data.ceph_survey import TOTAL_METHODS, is_accelerating


def run_experiment():
    return growth_series()


def test_fig2_interface_growth(benchmark):
    series = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [(year, classes, methods) for year, classes, methods in series]
    lines = table(["year", "classes (cumulative)", "methods (cumulative)"],
                  rows)
    lines.append("")
    lines.append(f"paper 2016 totals: 28 classes / {TOTAL_METHODS} methods"
                 " (Table 1 categories sum)")
    emit("fig2_interface_growth", lines)
    emit_json("fig2_interface_growth", {
        "series": [list(row) for row in series],
        "total_methods": TOTAL_METHODS,
    })

    # Shape: the series is cumulative (monotone) ...
    for (y0, c0, m0), (y1, c1, m1) in zip(series, series[1:]):
        assert y1 == y0 + 1
        assert c1 >= c0 and m1 >= m0
    # ... accelerating (the figure's headline claim) ...
    assert is_accelerating(series)
    # ... and consistent with Table 1's method total at the endpoint.
    assert series[-1][2] == TOTAL_METHODS
