"""Figure 5: sequencer capability interleaving under three policies.

Paper: two clients share one sequencer inode.  Under the default
best-effort policy the capability ping-pongs ("a high degree of
interleaving ... the system spends a large portion of time
re-distributing the capability, reducing overall throughput");
"delay" lets holders keep the lease longer; "quota" grants the lease
for a fixed number of operations.

We regenerate the per-request traces and summarize them as
consecutive-run lengths (how many positions one client claimed before
the capability moved) — the quantitative core of the dot plot.
"""

import pytest
from bench_util import emit, emit_json, table

from repro.core import MalacologyCluster
from repro.workloads import LeaseContentionWorkload, interleaving_runs

DURATION = 20.0

CONFIGS = [
    ("best-effort", {}),
    ("delay", {"min_hold": 0.10}),
    ("quota", {"quota": 100, "max_hold": 0.25}),
]


def run_experiment():
    results = {}
    for mode, kwargs in CONFIGS:
        cluster = MalacologyCluster.build(osds=3, mdss=1, seed=61)
        workload = LeaseContentionWorkload(cluster, clients=2)
        workload.setup(mode, **kwargs)
        workload.start()
        cluster.run(DURATION)
        workload.stop()
        runs = interleaving_runs(workload.traces())
        results[mode] = {
            "ops": workload.total_ops(),
            "throughput": workload.total_ops() / DURATION,
            "exchanges": len(runs),
            "mean_run": sum(runs) / max(len(runs), 1),
            "per_client": list(workload.ops_done),
            "health": cluster.health(),
        }
    return results


def test_fig5_lease_behavior(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (mode,
         f"{r['throughput']:.0f}",
         r["exchanges"],
         f"{r['mean_run']:.1f}",
         r["per_client"])
        for mode, r in results.items()
    ]
    lines = table(
        ["policy", "ops/sec", "cap exchanges", "mean run length",
         "per-client ops"], rows)
    lines.append("")
    lines.append("paper: best-effort = heavy interleaving & lost time; "
                 "delay = long holds; quota = runs of ~quota ops")
    emit("fig5_lease_behavior", lines)
    emit_json("fig5_lease_behavior", {"configs": results})

    be, dl, qt = (results["best-effort"], results["delay"],
                  results["quota"])
    # Shape: best-effort ping-pongs far more than the managed policies.
    assert be["exchanges"] > 5 * qt["exchanges"]
    assert qt["exchanges"] > 5 * dl["exchanges"]
    assert be["mean_run"] < 0.2 * qt["mean_run"]
    # Quota mode's runs sit at the configured quota.
    assert qt["mean_run"] == pytest.approx(100, rel=0.2)
    # Re-distribution overhead costs best-effort real throughput.
    assert dl["throughput"] > 1.5 * be["throughput"]
    # Both clients made progress in every mode (no starvation).
    for r in results.values():
        assert min(r["per_client"]) > 0
