"""Figure 6: sequencer throughput/latency trade-off vs quota size.

Paper: two clients, a fixed 0.25 s maximum reservation, sweeping the
log-position quota, two minutes per configuration.  "With a small
quota more time is spent exchanging exclusive access, while a large
quota reservation allows clients to experience a much lower latency."
The top end is bounded by what a single client with an exclusive,
cacheable capability achieves.
"""

from bench_util import emit, emit_json, table

from repro.core import MalacologyCluster
from repro.workloads import LeaseContentionWorkload

DURATION = 30.0
QUOTAS = [10, 100, 1000, 10000]


def run_one(quota, clients=2, seed=62):
    cluster = MalacologyCluster.build(osds=3, mdss=1, seed=seed)
    workload = LeaseContentionWorkload(cluster, clients=clients)
    workload.setup("quota", quota=quota, max_hold=0.25)
    workload.start()
    cluster.run(DURATION)
    workload.stop()
    # Everything below is read from the telemetry layer: per-op
    # latency from each client's "seq.next" tracker, capability churn
    # from the MDS perf counters via the cluster-wide dump.
    tracker = [c.perf.latency("seq.next") for c in workload.clients]
    count = sum(t.count for t in tracker)
    mds_counters = cluster.telemetry_dump()["mds0"]["counters"]
    return {
        "throughput": count / DURATION,
        "mean_latency": sum(t.sum for t in tracker) / count,
        "cap_grants": mds_counters.get("cap.grant", 0),
        "cap_revokes": mds_counters.get("cap.revoke", 0),
        "health": cluster.health(),
    }


def run_experiment():
    results = {quota: run_one(quota) for quota in QUOTAS}
    # The paper's reference point: one client, exclusive cacheable cap.
    results["single-client"] = run_one(10**9, clients=1)
    return results


def test_fig6_throughput_latency(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [(q, f"{results[q]['throughput']:.0f}",
             f"{results[q]['mean_latency'] * 1e6:.1f}",
             f"{results[q]['cap_grants']:.0f}",
             f"{results[q]['cap_revokes']:.0f}")
            for q in QUOTAS + ["single-client"]]
    lines = table(["quota", "total ops/sec", "mean latency (us)",
                   "cap grants", "cap revokes"], rows)
    lines.append("")
    lines.append("paper: throughput rises and latency falls as the quota "
                 "grows; exclusive single client is the ceiling")
    emit("fig6_throughput_latency", lines)
    emit_json("fig6_throughput_latency",
              {"configs": {str(q): results[q]
                           for q in QUOTAS + ["single-client"]}})

    thr = [results[q]["throughput"] for q in QUOTAS]
    lat = [results[q]["mean_latency"] for q in QUOTAS]
    # A bigger quota means fewer capability exchanges for the same
    # wall time — visible directly in the MDS telemetry counters.
    revokes = [results[q]["cap_revokes"] for q in QUOTAS]
    assert revokes[-1] < revokes[0]
    # Shape: monotone trade-off across the sweep (strict at the ends).
    assert thr[-1] > 1.5 * thr[0]
    assert lat[-1] < 0.65 * lat[0]
    for a, b in zip(thr, thr[1:]):
        assert b >= a * 0.95  # allow flat steps, never regressions
    # The exclusive single client bounds every shared configuration.
    ceiling = results["single-client"]["throughput"]
    assert all(t <= ceiling * 1.05 for t in thr)
