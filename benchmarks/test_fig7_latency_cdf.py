"""Figure 7: per-client sequencer latency CDF across configurations.

Paper: "At the 99th percentile clients accessed the sequencer in less
than a millisecond.  The CDF is cropped at the 99.999th percentile due
to large outliers ... in instances in which the metadata server is
performing I/O while it is in the process of re-distributing the
capability" — i.e. the mass of operations are local-cache fast, the
tail is capability hand-off.
"""

from bench_util import emit, emit_json, table

from repro.core import MalacologyCluster
from repro.util.stats import Cdf
from repro.workloads import LeaseContentionWorkload

DURATION = 30.0
CONFIGS = [
    ("quota=100", {"mode": "quota", "quota": 100, "max_hold": 0.25}),
    ("quota=1000", {"mode": "quota", "quota": 1000, "max_hold": 0.25}),
    ("delay=0.1", {"mode": "delay", "min_hold": 0.1}),
]


def run_experiment():
    results = {}
    healths = {}
    for label, kwargs in CONFIGS:
        cluster = MalacologyCluster.build(osds=3, mdss=1, seed=63)
        workload = LeaseContentionWorkload(cluster, clients=2)
        workload.setup(**kwargs)
        workload.start()
        cluster.run(DURATION)
        workload.stop()
        # Latency samples come from the telemetry layer: seq_next
        # retains every sample in each client's "seq.next" tracker,
        # so the CDF's extreme tail (p99.999, max) is exact.
        results[label] = Cdf(s for c in workload.clients
                             for s in c.perf.samples("seq.next"))
        healths[label] = cluster.health()
    return results, healths


def test_fig7_latency_cdf(benchmark):
    results, healths = benchmark.pedantic(run_experiment, rounds=1,
                                          iterations=1)
    quantiles = [0.50, 0.90, 0.99, 0.999, 0.99999]
    rows = []
    for label, cdf in results.items():
        rows.append([label] + [f"{cdf.quantile(q) * 1e6:.0f}"
                               for q in quantiles]
                    + [f"{cdf.max * 1e6:.0f}"])
    lines = table(["config", "p50 (us)", "p90", "p99", "p99.9",
                   "p99.999", "max"], rows)
    lines.append("")
    lines.append("paper: p99 < 1 ms for every config; heavy outliers "
                 "beyond p99.999 from capability re-distribution")
    emit("fig7_latency_cdf", lines)
    emit_json("fig7_latency_cdf", {"configs": {
        label: {"quantiles": {str(q): cdf.quantile(q)
                              for q in quantiles},
                "max": cdf.max, "samples": len(cdf),
                "health": healths[label]}
        for label, cdf in results.items()}})

    for label, cdf in results.items():
        # The paper's headline: sub-millisecond access at the 99th pct.
        assert cdf.quantile(0.99) < 1e-3, label
        # The median is the local fast path, far below the p99.
        assert cdf.quantile(0.5) < 2e-4, label
        # The extreme tail (capability hand-off) is orders of magnitude
        # above the median — the reason the paper crops the CDF.
        assert cdf.max > 20 * cdf.quantile(0.5), label
