"""Figure 8: cluster-wide interface-update propagation latency.

Paper: a 120-OSD in-memory cluster; 1000 interface updates; latency is
the elapsed time from the Paxos commit of the update until each OSD
makes the new interface live (client round trip excluded).  Reported:
< 54 ms at the 90th percentile, 194 ms worst case.  Section 6.1.2 also
measures the monitor proposal interval: 1 s accumulation by default,
tuned down to an average of 222 ms on a minimal realistic (3-monitor,
hard-drive) quorum.

Here the updates propagate exactly as in the paper — source embedded
in the OSD map, monitors seed a few OSDs, peer-to-peer gossip plus
epoch piggybacking carries it the rest of the way — and the modelled
interface-install cost (lognormal around 20 ms) dominates, as the
paper's numbers suggest.  We run 150 updates on the 120-OSD cluster
(1000 adds nothing but wall time: every update is independent).
"""

import pytest
from bench_util import emit, emit_json, table

from repro.core import MalacologyCluster
from repro.rados.osd import OSD
from repro.testing import ScriptClient, build_monitor_quorum, run_script, settle_quorum
from repro.util.stats import Cdf

OSD_COUNT = 120
UPDATES = 150

IFACE_SOURCE = """
def ping(ctx, args):
    return {"v": args.get("v")}

METHODS = {"ping": ping}
"""


def run_propagation():
    old_ping = OSD.PING_INTERVAL
    OSD.PING_INTERVAL = 0.2  # anti-entropy rate for straggler pulls
    try:
        cluster = MalacologyCluster.build(osds=OSD_COUNT, mdss=0, seed=81,
                                          proposal_interval=0.05)
        live_times = {}  # version -> {osd: time}

        def make_hook(osd_name):
            def hook(name, version, t):
                live_times.setdefault(version, {})[osd_name] = t
            return hook

        for osd in cluster.osds:
            osd.interface_live_hook = make_hook(osd.name)

        samples = []
        for version in range(1, UPDATES + 1):
            cluster.do(cluster.admin.rados_install_interface(
                "bench_iface", version, IFACE_SOURCE))
            committed = cluster.sim.now
            deadline = committed + 5.0
            while (cluster.sim.now < deadline
                   and len(live_times.get(version, {})) < OSD_COUNT):
                cluster.run(0.05)
            arrived = live_times.get(version, {})
            samples.extend(t - committed for t in arrived.values())
            if len(arrived) < OSD_COUNT:
                raise AssertionError(
                    f"update {version} reached only {len(arrived)}/"
                    f"{OSD_COUNT} OSDs")
        return Cdf(samples), cluster.health()
    finally:
        OSD.PING_INTERVAL = old_ping


def run_proposal_interval(interval, writes=30):
    sim, net, mons = build_monitor_quorum(count=3, seed=82,
                                          proposal_interval=interval,
                                          backing="hdd")
    settle_quorum(sim, mons)
    client = ScriptClient(sim, net, "client", [m.name for m in mons])
    rng = sim.rng("bench-submit")
    latencies = []
    for i in range(writes):
        sim.run(until=sim.now + rng.uniform(0.05, 0.7))
        started = sim.now
        run_script(sim, client, client.mon_kv_put(f"k{i}", i))
        latencies.append(sim.now - started)
    return sum(latencies) / len(latencies)


def run_experiment():
    cdf, health = run_propagation()
    default_commit = run_proposal_interval(1.0)
    tuned_commit = run_proposal_interval(0.35)
    return cdf, default_commit, tuned_commit, health


def test_fig8_propagation(benchmark):
    cdf, default_commit, tuned_commit, health = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1)
    rows = [(f"p{q * 100:g}", f"{cdf.quantile(q) * 1e3:.1f} ms")
            for q in (0.5, 0.9, 0.99, 1.0)]
    lines = table(["quantile", "propagation latency"], rows)
    lines.append(f"samples: {len(cdf)} ({OSD_COUNT} OSDs x {UPDATES} "
                 "updates)")
    lines.append("paper (120 OSD, RAM): p90 < 54 ms, worst 194 ms")
    lines.append("")
    lines.append(f"proposal interval 1.0 s (default): mean commit "
                 f"{default_commit * 1e3:.0f} ms")
    lines.append(f"proposal interval 0.35 s (tuned):  mean commit "
                 f"{tuned_commit * 1e3:.0f} ms (paper: 222 ms)")
    emit("fig8_propagation", lines)
    emit_json("fig8_propagation", {
        "propagation": {"quantiles": {str(q): cdf.quantile(q)
                                      for q in (0.5, 0.9, 0.99, 1.0)},
                        "samples": len(cdf)},
        "commit_latency": {"default_1.0s": default_commit,
                           "tuned_0.35s": tuned_commit},
        "health": health,
    })

    # Shape: overwhelming majority of OSDs go live within tens of ms.
    assert cdf.quantile(0.9) < 0.150
    # The straggler tail (gossip misses resolved by anti-entropy) stays
    # bounded well under a second.
    assert cdf.max < 1.0
    # Proposal batching dominates commit latency; tuning the interval
    # brings the mean to the paper's ~222 ms regime.
    assert tuned_commit < default_commit * 0.6
    assert tuned_commit < 0.35
