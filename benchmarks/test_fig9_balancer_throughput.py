"""Figure 9: throughput over time while balancers migrate sequencers.

Paper: 3 sequencers (4 clients each), clients forced to round-trip per
request, 3 MDS-capable nodes.  "No Balancing" pins every sequencer to
one server; "CephFS" uses the stock hard-coded balancer; "Mantle" uses
a custom sequencer-aware policy.  The increased throughput between 0
and 60 s is the balancers migrating sequencers off the overloaded
server; CephFS decides ~10 s in; Mantle is more conservative ("takes
more time to stabilize ... does a migration right before 50 seconds,
realizes that there is a third underloaded server, and does another
migration") but ends higher and more stable.
"""

from bench_util import emit, emit_json, table

from repro.core import LoadBalancingInterface, MalacologyCluster
from repro.mantle import attach_balancers, builtin
from repro.workloads import SequencerWorkload

DURATION = 120.0
CONFIGS = ["no-balancing", "cephfs", "mantle"]


def run_config(config):
    cluster = MalacologyCluster.build(osds=10, mdss=3, seed=91)
    attach_balancers(cluster)
    if config != "no-balancing":
        source = {"cephfs": builtin.CEPHFS_WORKLOAD,
                  "mantle": builtin.MANTLE_SEQUENCER}[config]
        cluster.do(LoadBalancingInterface(cluster.admin).publish_policy(
            config, source))
    workload = SequencerWorkload(cluster, num_sequencers=3,
                                 clients_per_seq=4)
    workload.setup(lease_mode="round-trip")
    start = cluster.sim.now
    workload.start()
    cluster.run(DURATION)
    workload.stop()
    return {
        "start": start,
        "series": workload.total.series(),
        "early": workload.mean_rate(start, start + 10),
        "mid": workload.mean_rate(start + 20, start + 40),
        "steady": workload.mean_rate(start + DURATION - 30,
                                     start + DURATION),
        "workload": workload,
        "health": cluster.health(),
        "audit": [rec for mds in cluster.mdss
                  for rec in mds.balancer.audit.records()
                  if rec.get("moves")],
    }


def run_experiment():
    return {config: run_config(config) for config in CONFIGS}


def test_fig9_balancer_throughput(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [(config,
             f"{r['early']:.0f}", f"{r['mid']:.0f}", f"{r['steady']:.0f}")
            for config, r in results.items()]
    lines = table(["config", "t=0-10s ops/s", "t=20-40s", "steady (last "
                   "30s)"], rows)
    lines.append("")
    lines.append("throughput over time (ops/s sampled every 10 s):")
    for config, r in results.items():
        t0 = r["start"]
        samples = [f"{r['workload'].mean_rate(t0 + t, t0 + t + 10):.0f}"
                   for t in range(0, int(DURATION), 10)]
        lines.append(f"  {config:13s} {' '.join(samples)}")
    lines.append("")
    lines.append("paper: No Balancing flat; CephFS jumps at the 10 s "
                 "tick; Mantle stabilizes later but higher")
    emit("fig9_balancer_throughput", lines)
    emit_json("fig9_balancer_throughput", {"configs": {
        config: {k: v for k, v in r.items() if k != "workload"}
        for config, r in results.items()}})

    none, cephfs, mantle = (results["no-balancing"], results["cephfs"],
                            results["mantle"])
    # No Balancing stays flat (saturated single server).
    assert abs(none["steady"] - none["mid"]) < 0.1 * none["mid"]
    # Both balancers beat no balancing at steady state.
    assert cephfs["steady"] > 1.05 * none["steady"]
    assert mantle["steady"] > 1.3 * none["steady"]
    # The custom Mantle policy ends above the stock CephFS balancer.
    assert mantle["steady"] > 1.1 * cephfs["steady"]
    # CephFS improves early (first migration at the 10 s tick) while
    # Mantle is still conservative at that point.
    assert cephfs["mid"] > 1.05 * none["mid"]
    assert mantle["steady"] > 1.15 * mantle["mid"]
