"""Kernel throughput baseline: the tracked ``BENCH_kernel.json``.

Not a paper figure — the measurement substrate for ROADMAP item 1
("make the simulator kernel fast enough for million-client runs").
Runs the canonical fig6 configuration (two clients contending on the
sequencer, quota 1000, 30 simulated seconds) under the profiler and
records what the *host* paid for it: kernel events per wall-clock
second, wall time, peak RSS, and the top hot spots across the
heapq + generator trampoline.

The result is written to the repo-root ``BENCH_kernel.json`` (stamped
with schema version and git SHA by ``bench_util.emit_json``) and
regenerated every PR, so the perf trajectory of the kernel speed push
is tracked, not anecdotal.  Asserts are floors loose enough to pass on
any CI host; the numbers themselves are the deliverable.
"""

import os

from bench_util import REPO_ROOT, emit, emit_json, table

from repro.core import MalacologyCluster
from repro.profiling import host_perf_ns, peak_rss_bytes
from repro.workloads import LeaseContentionWorkload

BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_kernel.json")

#: The canonical fig6 point: mid-sweep quota, two contending clients.
DURATION = 30.0
QUOTA = 1000
CLIENTS = 2
SEED = 62


def run_canonical():
    """Boot, run the canonical workload, read the profiler planes."""
    t0 = host_perf_ns()
    cluster = MalacologyCluster.build(osds=3, mdss=1, seed=SEED,
                                      profile=True)
    boot_ns = host_perf_ns() - t0
    workload = LeaseContentionWorkload(cluster, clients=CLIENTS)
    workload.setup("quota", quota=QUOTA, max_hold=0.25)
    t1 = host_perf_ns()
    workload.start()
    cluster.run(DURATION)
    workload.stop()
    run_ns = host_perf_ns() - t1
    profiler = cluster.sim.profiler
    wall = cluster.sim.wall_profiler
    tracker = [c.perf.latency("seq.next") for c in workload.clients]
    ops = sum(t.count for t in tracker)
    return {
        "config": {"figure": "fig6", "quota": QUOTA,
                   "clients": CLIENTS, "duration_sim": DURATION,
                   "seed": SEED, "osds": 3, "mdss": 1},
        "events": profiler.events_dispatched,
        "events_cancelled": profiler.events_cancelled,
        "wall_seconds": run_ns / 1e9,
        "boot_seconds": boot_ns / 1e9,
        "events_per_sec": profiler.events_dispatched / (run_ns / 1e9),
        "sim_seconds": cluster.sim.now,
        "sim_wall_ratio": cluster.sim.now / (run_ns / 1e9),
        "peak_rss_bytes": peak_rss_bytes(),
        "queue_hwm": profiler.queue_hwm,
        "ready_hwm": profiler.ready_hwm,
        "workload_ops": ops,
        "top_hotspots_wall": wall.hotspots(8),
        "top_handlers_sim": profiler.top_handlers(8, by="sim_time"),
        "health": cluster.health(),
    }


def test_kernel_throughput():
    result = run_canonical()
    rows = [
        ("events dispatched", f"{result['events']}"),
        ("events/sec (wall)", f"{result['events_per_sec']:.0f}"),
        ("wall seconds", f"{result['wall_seconds']:.3f}"),
        ("sim/wall speedup", f"{result['sim_wall_ratio']:.1f}x"),
        ("peak RSS (MiB)", f"{result['peak_rss_bytes'] / 2**20:.1f}"),
        ("queue high-water", f"{result['queue_hwm']}"),
        ("ready-batch high-water", f"{result['ready_hwm']}"),
    ]
    lines = table(["metric", "value"], rows)
    lines.append("")
    lines.append("top wall hotspots: " + ", ".join(
        f"{h['kind']}:{h['name']}" for h in
        result["top_hotspots_wall"][:3]))
    emit("kernel_throughput", lines)
    # The tracked baseline at the repo root, plus the usual results/
    # copy so artifact uploads collect it with the other benchmarks.
    emit_json("kernel_throughput", result, path=BENCH_PATH)
    emit_json("kernel_throughput", result)

    # Floors, not targets: the benchmark must have actually measured a
    # real run on any host, however slow.
    assert result["events"] > 10_000
    assert result["events_per_sec"] > 1_000
    assert result["peak_rss_bytes"] > 0
    assert result["workload_ops"] > 0
    assert result["health"]["status"] == "HEALTH_OK"
    # The profiler planes were live and attributed the hot path.
    assert result["top_hotspots_wall"]
    assert result["top_handlers_sim"]
