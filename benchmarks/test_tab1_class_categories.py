"""Table 1: categories of object storage classes in production Ceph.

Paper rows: Logging 11, Metadata/Management 74, Locking 6, Other 4
methods.  We regenerate the table from the transcribed survey and
cross-check that our own bundled class registry (the reproduction's
"production" classes) covers every category with real methods.
"""

from bench_util import emit, table

from repro.data import category_rows
from repro.objclass.bundled import register_all
from repro.objclass.registry import ClassRegistry


def run_experiment():
    registry = ClassRegistry()
    register_all(registry)
    return category_rows(), registry.catalog()


def test_tab1_class_categories(benchmark):
    paper_rows, our_catalog = benchmark.pedantic(run_experiment, rounds=1,
                                                 iterations=1)
    lines = ["Paper's Table 1 (method counts by category):"]
    lines += table(["category", "example", "# methods"], paper_rows)
    lines.append("")
    lines.append("This reproduction's bundled classes:")
    lines += table(["class", "category", "# methods"], our_catalog)
    emit("tab1_class_categories", lines)

    # Paper totals.
    counts = {cat: n for cat, _, n in paper_rows}
    assert counts == {"Logging": 11, "Metadata/Management": 74,
                      "Locking": 6, "Other": 4}
    # Our registry populates every paper category with working methods.
    ours = {}
    for name, category, methods in our_catalog:
        ours.setdefault(category, 0)
        ours[category] += methods
    assert set(ours) == {"logging", "metadata", "locking", "other"}
    assert all(n > 0 for n in ours.values())
