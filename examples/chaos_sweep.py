#!/usr/bin/env python3
"""Chaos-engineering walkthrough: sweep, sabotage, minimize, replay.

Three acts:

1. **A clean sweep** — run three shipped nemesis scenarios over a
   handful of seeds and show every oracle passing: the faults were
   injected, the cluster healed, acked data survived.
2. **A planted bug** — disable the changelog object class's
   ``(producer, pseq)`` dedup guard (the thing that makes a writer's
   retry after a lost ack harmless) and watch the changelog oracle
   catch the duplicate that a real deployment would only notice in an
   audit much later.
3. **Minimize + replay** — delta-debug the failing schedule down to
   the smallest op subset that still reproduces the violation, write
   the stamped repro artifact, and replay it to the same verdict.

Run:  PYTHONPATH=src python examples/chaos_sweep.py
"""

import json
import tempfile

from repro.chaos import (
    NemesisSchedule,
    minimize_case,
    run_case,
    sweep,
    write_repro_artifact,
)
from repro.objclass.bundled import cls_changelog

SWEEP_SCENARIOS = ["rolling-crash", "net-chaos", "torn-store"]
SWEEP_SEEDS = [0, 1, 2]
SABOTAGE_SCENARIO = "changelog-flap"
SABOTAGE_SEED = 2


def act_one_clean_sweep() -> None:
    print("=== Act 1: a clean sweep "
          f"({len(SWEEP_SCENARIOS)} scenarios x {len(SWEEP_SEEDS)} seeds)")
    summary = sweep(scenarios=SWEEP_SCENARIOS, seeds=SWEEP_SEEDS,
                    minimize=False, log=lambda m: print(f"  {m}"))
    print(f"  -> {summary['cases']} cases, "
          f"{summary['failures']} failures\n")
    assert summary["ok"], "the shipped scenarios should pass"


def act_two_planted_bug(original):
    print("=== Act 2: sabotage the changelog dedup guard")

    def no_dedup(ctx, args):
        # Forget every producer's pseq watermark before appending: a
        # retried batch is no longer recognized as already-written.
        ctx.xattr_set("chlog.pseq", {})
        return original(ctx, args)

    cls_changelog.METHODS["append"] = no_dedup
    verdict = run_case(SABOTAGE_SCENARIO, SABOTAGE_SEED)
    print(f"  {SABOTAGE_SCENARIO} seed={SABOTAGE_SEED}: "
          f"{'ok' if verdict.ok else 'FAIL'}")
    for violation in verdict.violations:
        print(f"    {violation.oracle}: {violation.detail}")
    assert not verdict.ok, "the oracle should catch the sabotage"
    return verdict


def act_three_minimize_and_replay(verdict) -> None:
    print("\n=== Act 3: minimize the failing schedule and replay it")
    full = NemesisSchedule.from_dict(verdict.stats["schedule"])
    minimal, final, runs = minimize_case(
        SABOTAGE_SCENARIO, SABOTAGE_SEED, full,
        log=lambda m: print(f"  {m}"))
    with tempfile.NamedTemporaryFile(
            mode="w", suffix=".json", delete=False) as fh:
        path = fh.name
    write_repro_artifact(path, SABOTAGE_SCENARIO, SABOTAGE_SEED,
                         full, minimal, final, runs)
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    print(f"  {len(full.ops)} ops -> {len(minimal.ops)} op(s) "
          f"in {runs} runs")
    for op in minimal.ops:
        print(f"    culprit: {op.kind} at t={op.at:.2f} "
              f"{op.params}")
    print(f"  artifact: {path}")
    print(f"  replay:   {doc['replay']}")

    replayed = run_case(SABOTAGE_SCENARIO, SABOTAGE_SEED,
                        schedule=NemesisSchedule.from_dict(
                            doc["schedule"]))
    print(f"  replay verdict: "
          f"{'ok' if replayed.ok else 'FAIL (reproduced)'}")
    assert not replayed.ok


def act_four_guard_restored() -> None:
    healthy = run_case(SABOTAGE_SCENARIO, SABOTAGE_SEED)
    print(f"  with dedup restored: "
          f"{'ok' if healthy.ok else 'FAIL'}")
    assert healthy.ok


def main() -> None:
    act_one_clean_sweep()
    original = cls_changelog.METHODS["append"]
    try:
        verdict = act_two_planted_bug(original)
        act_three_minimize_and_replay(verdict)
    finally:
        cls_changelog.METHODS["append"] = original
    act_four_guard_restored()
    print("\nAll three acts complete: faults heal, planted bugs are "
          "caught, repros are minimal and replayable.")


if __name__ == "__main__":
    main()
