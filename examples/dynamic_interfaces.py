#!/usr/bin/env python3
"""Data I/O example: install and evolve an object class at runtime.

The section 4.2 life cycle, live:

1. write an object interface class as source;
2. install it through the Data I/O interface — the source embeds in
   the OSD cluster map, the monitors commit it, and peer-to-peer
   gossip carries it to every OSD, which compiles it into a running
   daemon *without a restart*;
3. call it; then publish version 2 and watch behaviour change
   cluster-wide while old state is preserved;
4. push a broken version 3 and observe containment: the bad upgrade is
   rejected per-OSD and version 2 keeps serving.

Run:  python examples/dynamic_interfaces.py
"""

from repro.core import DataIOInterface, MalacologyCluster

V1 = """
def record(ctx, args):
    count = ctx.xattr_get("hits", 0) + 1
    ctx.xattr_set("hits", count)
    ctx.omap_set("last", args.get("value"))
    return {"hits": count, "rule": "v1-plain"}

METHODS = {"record": record}
"""

# v2 adds server-side aggregation: a running maximum, kept
# transactionally consistent with the hit counter.
V2 = """
def record(ctx, args):
    count = ctx.xattr_get("hits", 0) + 1
    ctx.xattr_set("hits", count)
    value = args.get("value")
    ctx.omap_set("last", value)
    best = ctx.xattr_get("max", None)
    if best is None or value > best:
        ctx.xattr_set("max", value)
    return {"hits": count, "max": ctx.xattr_get("max"),
            "rule": "v2-max"}

METHODS = {"record": record}
"""

BROKEN_V3 = "def record(ctx, args:\n    return {}\n"


def main() -> None:
    print("booting cluster...")
    cluster = MalacologyCluster.build(osds=4, mdss=0, seed=37)
    data_io = DataIOInterface(cluster.admin)

    print("installing class 'telemetry' v1 (map embed + gossip)...")
    cluster.do(data_io.install("telemetry", 1, V1, category="metadata"))
    cluster.run(2.0)
    live = [osd.name for osd in cluster.osds
            if osd.registry.version_of("telemetry") == 1]
    print(f"  live on {len(live)}/{len(cluster.osds)} OSDs "
          "without any restart")

    out = cluster.do(data_io.execute("data", "sensor-7", "telemetry",
                                     "record", {"value": 40}))
    print(f"  v1 call: {out}")

    print("upgrading to v2 at runtime...")
    cluster.do(data_io.install("telemetry", 2, V2, category="metadata"))
    cluster.run(2.0)
    out = cluster.do(data_io.execute("data", "sensor-7", "telemetry",
                                     "record", {"value": 55}))
    print(f"  v2 call (old state preserved): {out}")
    assert out["hits"] == 2 and out["rule"] == "v2-max"

    print("pushing a broken v3 (syntax error)...")
    cluster.do(data_io.install("telemetry", 3, BROKEN_V3,
                               category="metadata"))
    cluster.run(2.0)
    versions = {osd.registry.version_of("telemetry")
                for osd in cluster.osds}
    print(f"  OSD-resident versions after bad push: {versions} "
          "(v2 keeps serving)")
    out = cluster.do(data_io.execute("data", "sensor-7", "telemetry",
                                     "record", {"value": 30}))
    assert out["rule"] == "v2-max" and out["max"] == 55
    print(f"  call still served by v2: {out}")
    print("done.")


if __name__ == "__main__":
    main()
