#!/usr/bin/env python3
"""Future-work example (§7): an elastic, transactional table on ZLog.

The paper closes by proposing higher-level services — "an elastic
cloud database" — built from the same interfaces.  This example runs
the shared-log recipe end to end:

* three writer replicas race increments against the same key with
  serializable read-modify-write (optimistic concurrency decided by
  deterministic log replay — no locks, no coordinator);
* a multi-key transfer commits atomically;
* a fresh replica bootstraps the full state purely from the log;
* RADOS watch/notify (the object-level notification primitive)
  broadcasts a "new data" hint so replicas sync eagerly instead of
  polling.

Run:  python examples/elastic_table.py
"""

from repro.core import MalacologyCluster
from repro.zlog import StripeLayout, TransactionalTable, ZLog


def main() -> None:
    print("booting cluster...")
    cluster = MalacologyCluster.build(osds=4, mdss=1, seed=57)

    log = ZLog(cluster.admin, "ledger",
               layout=StripeLayout("ledger", width=4))
    cluster.do(log.create())
    table = TransactionalTable(log)
    cluster.do(table.blind_put("hits", 0))
    cluster.do(table.blind_put("alice", 100))
    cluster.do(table.blind_put("bob", 0))

    # ------------------------------------------------------------------
    # Racing writers: no lost updates.
    # ------------------------------------------------------------------
    writers = [cluster.new_client(f"writer{i}") for i in range(3)]
    tables = []
    for w in writers:
        wlog = ZLog(w, "ledger")
        cluster.sim.run_until_complete(w.do(wlog.open()))
        tables.append(TransactionalTable(wlog))

    def spin(table, rounds):
        for _ in range(rounds):
            yield from table.transact(
                ["hits"], lambda v: {"hits": v["hits"] + 1})
        return table.aborts

    procs = [w.do(spin(t, 10)) for w, t in zip(writers, tables)]
    aborts = [cluster.sim.run_until_complete(p) for p in procs]
    total = cluster.do(table.get("hits"))
    print(f"3 replicas x 10 racing increments -> hits={total} "
          f"(conflicts retried: {sum(aborts)} aborts observed)")
    assert total == 30

    # ------------------------------------------------------------------
    # Atomic multi-key transfer.
    # ------------------------------------------------------------------
    cluster.do(table.transact(
        ["alice", "bob"],
        lambda v: {"alice": v["alice"] - 40, "bob": v["bob"] + 40}))
    snap = cluster.do(table.snapshot())
    print(f"after transfer: alice={snap['alice']} bob={snap['bob']} "
          f"(conserved: {snap['alice'] + snap['bob']})")

    # ------------------------------------------------------------------
    # Elasticity: a brand-new replica materializes from the log alone.
    # ------------------------------------------------------------------
    newcomer = cluster.new_client("late-replica")
    nlog = ZLog(newcomer, "ledger")
    cluster.sim.run_until_complete(newcomer.do(nlog.open()))
    ntable = TransactionalTable(nlog)
    nsnap = cluster.sim.run_until_complete(newcomer.do(ntable.snapshot()))
    print(f"late replica bootstrapped: {nsnap} "
          f"(commits={ntable.commits}, aborts={ntable.aborts})")
    assert nsnap == snap

    # ------------------------------------------------------------------
    # Watch/notify as a sync hint.
    # ------------------------------------------------------------------
    hint_obj = "ledger.hint"
    cluster.do(cluster.admin.rados_write_full("data", hint_obj, b""))
    hints = []
    newcomer.events = hints
    cluster.sim.run_until_complete(newcomer.do(newcomer.rados_watch(
        "data", hint_obj,
        lambda pool, oid, payload, notifier: hints.append(payload))))
    cluster.do(table.blind_put("hits", 999))
    cluster.do(cluster.admin.rados_notify("data", hint_obj,
                                          {"synced_to": "tail"}))
    cluster.run(1.0)
    print(f"watcher received sync hint: {hints}")
    assert hints == [{"synced_to": "tail"}]
    print("done.")


if __name__ == "__main__":
    main()
