#!/usr/bin/env python3
"""Shared Resource example: the latency/throughput dial of section 6.1.

Two clients contend for one sequencer under the three lease policies
the paper evaluates (Figures 5-7).  Prints the capability interleaving
pattern, throughput, and the latency distribution so the trade-off is
visible at a glance:

* best-effort — the cap ping-pongs; time burns on re-distribution;
* delay       — long exclusive holds; best throughput, worst tail;
* quota       — runs of exactly N positions; the tunable middle.

Run:  python examples/lease_tradeoffs.py
"""

from repro.core import MalacologyCluster
from repro.util.stats import percentile
from repro.workloads import LeaseContentionWorkload, interleaving_runs

DURATION = 15.0

CONFIGS = [
    ("best-effort", {}),
    ("delay", {"min_hold": 0.1}),
    ("quota", {"quota": 100, "max_hold": 0.25}),
]


def main() -> None:
    print(f"{'policy':<12} {'ops/s':>8} {'cap moves':>10} "
          f"{'mean run':>9} {'p50 lat':>9} {'p99 lat':>9} {'max lat':>9}")
    for mode, kwargs in CONFIGS:
        cluster = MalacologyCluster.build(osds=3, mdss=1, seed=47)
        workload = LeaseContentionWorkload(cluster, clients=2)
        workload.setup(mode, **kwargs)
        workload.start()
        cluster.run(DURATION)
        workload.stop()

        runs = interleaving_runs(workload.traces())
        latencies = workload.all_latencies()
        print(f"{mode:<12} {workload.total_ops() / DURATION:>8.0f} "
              f"{len(runs):>10} "
              f"{sum(runs) / max(len(runs), 1):>9.1f} "
              f"{percentile(latencies, 50) * 1e6:>7.0f}us "
              f"{percentile(latencies, 99) * 1e6:>7.0f}us "
              f"{max(latencies) * 1e6:>7.0f}us")

    print("\nreading: 'cap moves' is how often the capability changed "
          "hands;\n'mean run' is how many consecutive positions one "
          "client claimed per hold.\nThe administrator dials quota/"
          "delay to trade tail latency against throughput\n(paper "
          "section 6.1.1).")


if __name__ == "__main__":
    main()
