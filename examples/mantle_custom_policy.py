#!/usr/bin/env python3
"""Mantle example: inject a custom load-balancer policy at runtime.

Reproduces the section 5.1 workflow end to end:

1. write a balancing policy as *source code*;
2. publish it through the Load Balancing interface — the source is
   stored durably in RADOS under an object named by the version, and
   the version is committed to the MDS map through the monitors'
   consensus (so every MDS converges on the same policy);
3. drive a hot sequencer workload against one MDS and watch the policy
   migrate sequencers to idle servers;
4. read the balancer's decision trail from the *central* cluster log.

Run:  python examples/mantle_custom_policy.py
"""

from repro.core import (
    LoadBalancingInterface,
    MalacologyCluster,
    SharedResourceInterface,
)
from repro.mantle import attach_balancers
from repro.workloads import SequencerWorkload

# The paper's migration-unit idiom (section 6.2.2): when this server is
# at least twice as loaded as the next rank, ship half its load over.
CUSTOM_POLICY = """
def when():
    if whoami + 1 >= len(mds):
        return False
    if mds[whoami]["load"] < 10.0:
        return False
    return mds[whoami]["load"] > 2.0 * mds[whoami + 1]["load"]

def where():
    targets[whoami + 1] = mds[whoami]["load"] / 2
"""


def main() -> None:
    print("booting cluster (3 MDS ranks)...")
    cluster = MalacologyCluster.build(osds=6, mdss=3, seed=27)
    attach_balancers(cluster)

    lb = LoadBalancingInterface(cluster.admin)
    cluster.do(lb.publish_policy("spill-v1", CUSTOM_POLICY))
    print("published balancer 'spill-v1' "
          "(durable in RADOS, versioned via the MDS map)")

    workload = SequencerWorkload(cluster, num_sequencers=3,
                                 clients_per_seq=4)
    workload.setup(lease_mode="round-trip")
    start = cluster.sim.now
    workload.start()
    print("driving 3 sequencers x 4 clients against rank 0...")
    cluster.run(60.0)
    workload.stop()

    mdsmap = cluster.mons[0].store.mdsmap
    moved = {p: r for p, r in mdsmap.subtrees.items() if p != "/"}
    print(f"subtree authority after balancing: {moved}")
    early = workload.mean_rate(start, start + 10)
    late = workload.mean_rate(start + 40, start + 60)
    print(f"throughput: {early:.0f} ops/s before balancing -> "
          f"{late:.0f} ops/s after ({late / early:.1f}x)")

    print("\ncentral cluster log (mantle entries):")
    leader = cluster.leader_monitor()
    for entry in leader.store.cluster_log:
        if "mantle" in entry.message or "exported" in entry.message:
            print(f"  {entry.format()}")

    assert moved, "policy never migrated anything"
    assert late > early
    print("done.")


if __name__ == "__main__":
    main()
