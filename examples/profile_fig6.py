#!/usr/bin/env python3
"""Profile the canonical fig6 run and export a Perfetto trace.

Boots a cluster with the profiler enabled (the same
``profile=True`` / ``MALACOLOGY_PROFILE=1`` opt-in the benchmarks
use), runs the fig6 sequencer-contention workload plus a couple of
traced appends, then shows all three profiling planes:

* ``profile.status`` — kernel event counts, queue/ready high-water
  marks, per-daemon handler totals (deterministic, simulated time);
* the wall-clock plane — top host-time hotspots across the
  heapq + generator trampoline, and a flamegraph-ready collapsed
  stack dump;
* ``trace.json`` — the causal span trees plus the kernel queue-depth
  tape in Chrome trace-event format.  Open it at
  https://ui.perfetto.dev (or chrome://tracing).

Run:  PYTHONPATH=src python examples/profile_fig6.py [out.json]
"""

import sys

from repro.core import MalacologyCluster
from repro.workloads import LeaseContentionWorkload
from repro.zlog import ZLog


def main() -> None:
    out = sys.argv[1] if len(sys.argv) > 1 else "trace.json"
    print("booting profiled cluster (3 monitors, 3 OSDs, 1 MDS)...")
    cluster = MalacologyCluster.build(osds=3, mdss=1, seed=62,
                                      profile=True)

    # A few traced appends so the exported trace has span trees.
    client = cluster.new_client("app")
    log = ZLog(client, "trades")
    cluster.sim.run_until_complete(client.do(log.create(), name="create"))
    for i in range(3):
        proc = client.do(
            client.traced(log.append({"n": i}), f"append-{i}"),
            name=f"append-{i}")
        cluster.sim.run_until_complete(proc)

    # The canonical fig6 contention point (quota 1000, two clients).
    print("running fig6 contention workload (30 simulated seconds)...")
    workload = LeaseContentionWorkload(cluster, clients=2)
    workload.setup("quota", quota=1000, max_hold=0.25)
    workload.start()
    cluster.run(30.0)
    workload.stop()

    status = cluster.profile_status()
    kernel = status["kernel"]
    print("\n=== profile.status (simulation plane) ===")
    print(f"events dispatched   {kernel['events_dispatched']}")
    print(f"event rate (sim)    {kernel['event_rate_sim']:.0f}/s")
    print(f"queue high-water    {kernel['queue_hwm']}")
    print(f"ready-batch hwm     {kernel['ready_hwm']}")

    full = cluster.profile_dump(collapsed=True)
    print("\n=== busiest handlers (simulated time) ===")
    for h in full["top_sim_time"][:5]:
        print(f"  {h['daemon']:<8} {h['method']:<16} "
              f"count={h['count']:<6} sim_time={h['sim_time']:.3f}s")

    print("\n=== host wall-clock hotspots ===")
    for h in full["wall"]["hotspots"][:5]:
        print(f"  {h['kind']:<9} {h['name']:<24} "
              f"count={h['count']:<6} wall={h['wall_ns'] / 1e6:.1f}ms "
              f"allocs={h['alloc_blocks']}")
    stacks = full["collapsed_stacks"].splitlines()
    print(f"\ncollapsed stacks: {len(stacks)} frames "
          "(feed to flamegraph.pl / speedscope), e.g.")
    for line in stacks[:3]:
        print(f"  {line}")

    path = cluster.write_trace(out)
    print(f"\nwrote {path} — open at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
