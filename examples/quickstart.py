#!/usr/bin/env python3
"""Quickstart: boot a Malacology cluster and touch every interface.

Runs a complete simulated deployment — a Paxos monitor quorum, a
replicated object store, and a metadata server — then walks through
the storage stack bottom-up:

1. object I/O and a server-side object-class call (Data I/O);
2. file-system namespace operations;
3. a sequencer inode (File Type) served both by server round trips
   and by a locally cached capability (Shared Resource);
4. service metadata reads/writes on the monitors (Service Metadata).

Run:  python examples/quickstart.py
"""

from repro.core import (
    MalacologyCluster,
    ServiceMetadataInterface,
    SharedResourceInterface,
)


def main() -> None:
    print("booting cluster (3 monitors, 4 OSDs, 1 MDS)...")
    cluster = MalacologyCluster.build(osds=4, mdss=1, seed=7)
    admin = cluster.admin
    print(f"  up at simulated t={cluster.sim.now:.1f}s")

    # ------------------------------------------------------------------
    # Object store
    # ------------------------------------------------------------------
    cluster.do(admin.rados_write_full("data", "hello", b"hello world"))
    data = cluster.do(admin.rados_read("data", "hello"))
    print(f"object round trip: {data!r}")

    result = cluster.do(admin.rados_exec(
        "data", "stats", "numops", "add", {"key": "visits", "value": 5}))
    print(f"server-side class call (numops.add): {result}")

    # ------------------------------------------------------------------
    # File system namespace
    # ------------------------------------------------------------------
    cluster.do(admin.fs_mkdir("/app"))
    cluster.do(admin.fs_create("/app/config"))
    print(f"namespace: /app contains {cluster.do(admin.fs_readdir('/app'))}")

    # ------------------------------------------------------------------
    # Sequencer inode: round-trip mode vs cached capability
    # ------------------------------------------------------------------
    shared = SharedResourceInterface(admin)
    cluster.do(admin.fs_create("/app/seq", file_type="sequencer"))

    cluster.do(shared.set_lease_policy("round-trip"))
    t0 = cluster.sim.now
    positions = [cluster.do(admin.seq_next("/app/seq")) for _ in range(5)]
    rt_cost = (cluster.sim.now - t0) / 5
    print(f"round-trip sequencer: positions {positions}, "
          f"{rt_cost * 1e6:.0f}us/op")

    cluster.do(shared.set_lease_policy("best-effort"))
    cluster.do(admin.seq_next("/app/seq"))  # acquires the capability
    t0 = cluster.sim.now
    positions = [cluster.do(admin.seq_next("/app/seq")) for _ in range(5)]
    local_cost = (cluster.sim.now - t0) / 5
    print(f"cached-capability sequencer: positions {positions}, "
          f"{local_cost * 1e6:.0f}us/op "
          f"({rt_cost / local_cost:.0f}x faster)")

    # ------------------------------------------------------------------
    # Service metadata
    # ------------------------------------------------------------------
    svc = ServiceMetadataInterface(admin)
    version = cluster.do(svc.put("app/deployed", {"release": "1.0"}))
    entry = cluster.do(svc.get("app/deployed"))
    print(f"service metadata: version={version} value={entry['value']}")

    print("done.")


if __name__ == "__main__":
    main()
