#!/usr/bin/env python3
"""Tail the cluster changelog live through a rename storm.

Boots a cluster with the changelog subsystem enabled, attaches a live
tailing consumer that prints every record as it arrives (woken by
watch/notify on the shard objects, not by polling), then drives a
rename storm: a batch of files created and then renamed around while
another tenant writes data.  Afterwards it prints the audit
pipeline's per-tenant/per-actor summary and the writer's
``changelog.status`` — the same views the mgr aggregates.

Run:  PYTHONPATH=src python examples/tail_changelog.py
"""

from repro.changelog import ChangelogConsumer
from repro.core import MalacologyCluster

FILES = 6
RENAMES = 3


class PrintingTail(ChangelogConsumer):
    """A consumer that narrates the stream as it is delivered."""

    def handle_records(self, shard, records):
        super().handle_records(shard, records)
        for rec in records:
            detail = rec.get("path") or f"{rec.get('pool')}/{rec.get('oid')}"
            extra = f" -> {rec['to']}" if "to" in rec else ""
            print(f"  [{rec['time']:7.3f}s shard {shard}] "
                  f"{rec['kind']:<12} {rec['actor']:<10} "
                  f"{detail}{extra}")


def main() -> None:
    print("booting cluster (3 monitors, 3 OSDs, 1 MDS, changelog)...")
    cluster = MalacologyCluster.build(osds=3, mdss=1, seed=23,
                                      changelog=True)
    writer = cluster.changelog_writer
    tail = PrintingTail(cluster.sim, cluster.net, "tail0",
                        cluster.mon_names, layout=writer.layout,
                        cursor_name="tail")
    cluster.changelog_consumers.append(tail)
    cluster.run(3.0)

    alice = cluster.new_client("alice-app")
    bob = cluster.new_client("bob-app")

    def rename_storm():
        yield from alice.fs_mkdir("/alice")
        for i in range(FILES):
            yield from alice.fs_create(f"/alice/f{i}")
        for round_ in range(RENAMES):
            for i in range(FILES):
                src = f"/alice/f{i}" if round_ == 0 \
                    else f"/alice/r{round_ - 1}.{i}"
                yield from alice.fs_rename(src, f"/alice/r{round_}.{i}")

    def writes():
        yield from bob.fs_mkdir("/bob")
        yield from bob.fs_create("/bob/data")
        yield from bob.fs_write("/bob/data", 0, b"x" * 4096)

    print(f"\n=== live tail: {FILES} creates, "
          f"{RENAMES}x{FILES} renames, one data write ===")
    p1 = alice.do(rename_storm(), name="rename-storm")
    p2 = bob.do(writes(), name="writes")
    cluster.sim.run_until_complete(p1)
    cluster.sim.run_until_complete(p2)
    cluster.run(8.0)  # drain the tail, let trim reclaim

    audit = cluster.audit_pipeline
    summary = audit.summary()
    print(f"\n=== audit.summary ({summary['records']} records) ===")
    for tenant, kinds in summary["by_tenant"].items():
        line = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
        print(f"  tenant {tenant:<8} {line}")
    for actor, kinds in summary["by_actor"].items():
        line = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
        print(f"  actor  {actor:<10} {line}")

    status = writer.status()
    print("\n=== changelog.status ===")
    print(f"  epoch {status['epoch']}  appended {status['appended']:.0f}"
          f"  trimmed {status['trimmed']:.0f}"
          f"  retained {status['retained']}")
    print(f"  consumer lag: {status['lag']}")

    expected = (1 + FILES + RENAMES * FILES) + 4  # alice ops + bob ops
    got = len(tail.received)
    print(f"\ntail saw {got} records (expected {expected})")
    assert got == expected, (got, expected)
    assert status["retained"] == 0, status
    print("ok")


if __name__ == "__main__":
    main()
