#!/usr/bin/env python3
"""Trace one ZLog append end-to-end through the telemetry layer.

Boots a cluster, creates a shared log, and runs two appends under RPC
tracing:

* the FIRST append from a fresh client takes the slow path — the span
  tree shows the client asking the MDS for the sequencer capability
  (Shared Resource interface) and then executing the ``zlog`` object
  class on the primary OSD, which replicates to its peers;
* the SECOND append holds the capability, so the sequencer hop is a
  local memory increment and only the OSD hop remains.

Afterwards it queries ``telemetry.dump`` on one daemon of each role —
the same counters the benchmarks read.

Run:  PYTHONPATH=src python examples/trace_zlog_append.py
"""

from repro.core import MalacologyCluster
from repro.zlog import ZLog


def traced_append(cluster, client, log, label):
    proc = client.do(client.traced(log.append({"msg": label}), label),
                     name=label)
    pos = cluster.sim.run_until_complete(proc)
    collector = cluster.sim.trace_collector
    trace_id = collector.trace_ids()[-1]
    print(f"\n=== {label} -> position {pos} (trace {trace_id}) ===")
    print(cluster.telemetry_trace(trace_id, render=True))
    path = collector.critical_path(trace_id)
    hops = " -> ".join(f"{s['daemon']}:{s['name']}" for s in path)
    print(f"critical path: {hops}")
    return trace_id


def main() -> None:
    print("booting cluster (3 monitors, 3 OSDs, 1 MDS)...")
    cluster = MalacologyCluster.build(osds=3, mdss=1, seed=11)
    client = cluster.new_client("app")
    log = ZLog(client, "trades")
    cluster.sim.run_until_complete(
        client.do(log.create(), name="create"))

    traced_append(cluster, client, log, "append-cold")
    traced_append(cluster, client, log, "append-warm")

    print("\n=== telemetry.dump (one daemon per role) ===")
    dump = cluster.telemetry_dump()
    for name in ("mon0", "osd0", "mds0"):
        counters = dump[name]["counters"]
        top = sorted(counters.items(), key=lambda kv: -kv[1])[:6]
        print(f"{name}:")
        for key, value in top:
            print(f"  {key:<28} {value:.0f}")
    client_perf = client.perf.dump()
    lat = client_perf["latency"]["zlog.append"]
    print("app (client):")
    print(f"  zlog.append count={lat['count']} "
          f"mean={lat['mean'] * 1e6:.0f}us max={lat['max'] * 1e6:.0f}us")


if __name__ == "__main__":
    main()
