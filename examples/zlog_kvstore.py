#!/usr/bin/env python3
"""Shared-log example: ZLog append/read, sealing, and a replicated map.

Demonstrates the ZLog service of section 5.2 end to end:

* appends obtain positions from the sequencer inode and land on
  epoch-fenced, write-once stripe objects;
* a stale client (fenced by a seal) recovers transparently;
* seal-based sequencer recovery recomputes the tail from storage;
* a Tango-style replicated dictionary materializes the same state on
  two independent clients by replaying the log.

Run:  python examples/zlog_kvstore.py
"""

from repro.core import MalacologyCluster
from repro.zlog import LogBackedDict, StripeLayout, ZLog, recover_log


def main() -> None:
    print("booting cluster...")
    cluster = MalacologyCluster.build(osds=4, mdss=1, seed=17)

    # ------------------------------------------------------------------
    # Create a log and append from two clients.
    # ------------------------------------------------------------------
    log = ZLog(cluster.admin, "events", layout=StripeLayout("events",
                                                            width=4))
    cluster.do(log.create())

    other_client = cluster.new_client("appender-2")
    other_log = ZLog(other_client, "events")
    cluster.sim.run_until_complete(other_client.do(other_log.open()))

    p0 = cluster.do(log.append({"user": "alice", "action": "login"}))
    proc = other_client.do(other_log.append({"user": "bob",
                                             "action": "login"}))
    p1 = cluster.sim.run_until_complete(proc)
    print(f"appends landed at positions {p0} and {p1} "
          f"(epoch {log.epoch})")
    print(f"read(0) -> {cluster.do(log.read(0))['data']}")

    # ------------------------------------------------------------------
    # Seal-based recovery: fence, recompute tail, resume.
    # ------------------------------------------------------------------
    epoch, tail = cluster.do(recover_log(log))
    print(f"recovery: new epoch {epoch}, sequencer resumes at {tail}")
    p2 = cluster.do(log.append({"user": "carol", "action": "login"}))
    print(f"post-recovery append at position {p2}")

    # The other client still holds the old epoch; its next append gets
    # fenced (ESTALE), refreshes, and lands anyway.
    proc = other_client.do(other_log.append({"user": "bob",
                                             "action": "logout"}))
    p3 = cluster.sim.run_until_complete(proc)
    print(f"stale client transparently recovered; append at {p3}")

    # ------------------------------------------------------------------
    # A replicated dictionary over the log (Tango-style).
    # ------------------------------------------------------------------
    kv_log = ZLog(cluster.admin, "kv", layout=StripeLayout("kv", width=4))
    cluster.do(kv_log.create())
    writer = LogBackedDict(kv_log)
    cluster.do(writer.put("threshold", 10))
    cluster.do(writer.put("mode", "steady"))
    cluster.do(writer.delete("threshold"))

    reader_client = cluster.new_client("kv-reader")
    reader_log = ZLog(reader_client, "kv")
    cluster.sim.run_until_complete(reader_client.do(reader_log.open()))
    reader = LogBackedDict(reader_log)
    snapshot = cluster.sim.run_until_complete(
        reader_client.do(reader.snapshot()))
    print(f"replica materialized from the log: {snapshot}")
    assert snapshot == {"mode": "steady"}
    print("done.")


if __name__ == "__main__":
    main()
