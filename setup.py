"""Legacy setup shim.

Kept alongside pyproject.toml so ``pip install -e .`` works in offline
environments whose setuptools lacks the PEP 660 editable-wheel path
(older toolchains need the ``wheel`` package for that; the legacy
``setup.py develop`` route needs only setuptools).  All metadata lives
in pyproject.toml.
"""

from setuptools import setup

setup()
