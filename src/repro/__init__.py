"""Malacology: a programmable storage system (EuroSys '17) — reproduction.

The package rebuilds the paper's full stack on a deterministic
discrete-event simulator:

* :mod:`repro.sim` / :mod:`repro.msg` — simulation kernel and daemons;
* :mod:`repro.monitor` — Paxos quorum, cluster maps, Service Metadata;
* :mod:`repro.rados` — replicated object store with dynamic object
  classes (:mod:`repro.objclass`);
* :mod:`repro.mds` — metadata service: File Types, capabilities,
  subtree migration;
* :mod:`repro.mantle` — the programmable load balancer;
* :mod:`repro.zlog` — the CORFU shared log and services built on it;
* :mod:`repro.core` — the cluster builder and the five Malacology
  interfaces.

Quick start::

    from repro import MalacologyCluster

    cluster = MalacologyCluster.build(osds=4, mdss=1, seed=7)
    cluster.do(cluster.admin.rados_write_full("data", "obj", b"hi"))

See README.md for the tour, DESIGN.md for architecture, and
EXPERIMENTS.md for the paper-vs-measured evaluation.
"""

from repro.core import MalacologyClient, MalacologyCluster
from repro.sim import Simulator

__version__ = "0.1.0"

__all__ = ["MalacologyCluster", "MalacologyClient", "Simulator",
           "__version__"]
