"""Correctness tooling for the Malacology reproduction.

Two layers guard the repo's foundational contracts:

* a **static AST linter** (:mod:`repro.analysis.linter`,
  :mod:`repro.analysis.rules`) that enforces the determinism contract
  of :mod:`repro.sim.kernel` at review time — run it with
  ``python -m repro.analysis lint src tests benchmarks``;
* **runtime protocol sanitizers** (:mod:`repro.analysis.sanitizers`)
  that watch Paxos agreement, capability exclusivity, ZLog epoch
  fencing, and subtree-migration ownership while a simulation runs —
  opt in with ``MalacologyCluster.build(sanitize=True)`` or
  ``MALACOLOGY_SANITIZE=1``.
"""

from repro.analysis.linter import Finding, Linter, Rule
from repro.analysis.rules import default_rules
from repro.analysis.sanitizers import (
    ProtocolViolation,
    SanitizerRegistry,
    install_sanitizers,
    sanitizers_of,
)

__all__ = [
    "Finding",
    "Linter",
    "Rule",
    "default_rules",
    "ProtocolViolation",
    "SanitizerRegistry",
    "install_sanitizers",
    "sanitizers_of",
]
