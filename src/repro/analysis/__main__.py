"""Command line front end for the analysis tooling.

``python -m repro.analysis lint [paths] [--jobs N] [--json]``
    File-local MAL001-008 rules.

``python -m repro.analysis flow [paths] [--json] [--emit DIR]
                                 [--check DIR] [--docs FILE]``
    Whole-program message-flow analysis (MAL010-017), RPC-graph
    artifact emission, and the architecture-drift gate.

``python -m repro.analysis check [paths] [--jobs N] [--json]``
    Both passes over one shared parse of the tree.

Exit status 0 means no findings; 1 means findings or drift (usage
errors exit 2).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Set

from repro.analysis.astcache import DEFAULT_CACHE
from repro.analysis.linter import (
    FileSuppressions,
    Finding,
    Linter,
    render_human,
    render_json,
)
from repro.analysis.rules import default_rules


def _flow_pass(paths: List[str]) -> List[Finding]:
    """Run the flow analyzer and reconcile waivers.

    The unused-waiver sweep runs over *every* analyzed file, scoped to
    the flow codes — the lint pass owns comment hygiene and the lint
    codes, so a combined ``check`` run reports each problem once.
    """
    from repro.analysis import flow

    ex = flow.build(paths)
    design = flow.emit.repo_root() / "DESIGN.md"
    design_text = design.read_text() if design.is_file() else None
    raw = flow.flow_findings(ex, design_text=design_text)
    by_path: dict = {}
    for f in raw:
        by_path.setdefault(f.path, []).append(f)
    active: Set[str] = set(flow.FLOW_CODES)
    kept: List[Finding] = []
    for sf in ex.files:
        sups = FileSuppressions(sf.path, sf.lines,
                                report_hygiene=False)
        kept.extend(sups.filter(sf.path,
                                by_path.pop(str(sf.path), []),
                                active_codes=active))
        kept.extend(sups.hygiene)
    for leftovers in by_path.values():
        kept.extend(leftovers)    # findings on files outside the scan
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return kept


def _report(findings: List[Finding], as_json: bool) -> int:
    if as_json:
        print(render_json(findings))
    elif findings:
        print(render_human(findings))
    else:
        print("clean: no findings")
    return 1 if findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Malacology correctness tooling")
    sub = parser.add_subparsers(dest="command")

    lint = sub.add_parser(
        "lint", help="run the MAL determinism/protocol lint rules")
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories (default: src)")
    lint.add_argument("--json", action="store_true",
                      help="emit findings as JSON")
    lint.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="lint files on N worker processes")

    flow_p = sub.add_parser(
        "flow", help="whole-program message-flow analysis "
        "(MAL010-017) and RPC-graph artifacts")
    flow_p.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories "
                        "(default: src/repro)")
    flow_p.add_argument("--json", action="store_true",
                        help="emit findings as JSON")
    flow_p.add_argument("--graph", action="store_true",
                        help="print the stamped RPC-graph JSON "
                        "instead of findings")
    flow_p.add_argument("--emit", metavar="DIR",
                        help="write rpc-graph.json/.dot into DIR")
    flow_p.add_argument("--check", metavar="DIR",
                        help="drift gate: fail unless the artifacts "
                        "in DIR match a fresh extraction")
    flow_p.add_argument("--docs", metavar="FILE",
                        help="re-render the admin-command inventory "
                        "between the markers in FILE (DESIGN.md)")

    check = sub.add_parser(
        "check", help="lint + flow over one shared parse")
    check.add_argument("paths", nargs="*", default=["src/repro"],
                       help="files or directories "
                       "(default: src/repro)")
    check.add_argument("--json", action="store_true",
                       help="emit findings as JSON")
    check.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="lint files on N worker processes")

    args = parser.parse_args(argv)
    if args.command == "lint":
        linter = Linter(default_rules())
        findings = linter.lint_paths(args.paths or ["src"],
                                     jobs=args.jobs)
        return _report(findings, args.json)

    if args.command == "flow":
        from repro.analysis import flow

        paths = args.paths or ["src/repro"]
        status = 0
        ex = flow.build(paths)
        if args.emit:
            written = flow.emit.emit_artifacts(ex, Path(args.emit))
            for path in written:
                print(f"wrote {path}", file=sys.stderr)
        if args.docs:
            changed = flow.emit.inject_inventory(Path(args.docs), ex)
            print(f"{'updated' if changed else 'unchanged'} "
                  f"{args.docs}", file=sys.stderr)
        if args.check:
            errors = flow.emit.check_drift(ex, Path(args.check))
            for err in errors:
                print(f"drift: {err}", file=sys.stderr)
            if errors:
                status = 1
        if args.graph:
            print(flow.emit.render_json(flow.emit.graph_doc(ex)),
                  end="")
            return status
        # Findings run last so --docs updates (the MAL016 inventory)
        # are already in place for this same invocation.
        return max(status, _report(_flow_pass(paths), args.json))

    if args.command == "check":
        paths = args.paths or ["src/repro"]
        linter = Linter(default_rules())
        findings = linter.lint_paths(paths, jobs=args.jobs)
        findings.extend(_flow_pass(paths))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
        return _report(findings, args.json)

    parser.print_help()
    return 2


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not our error.
        sys.exit(1)
