"""Command line front end: ``python -m repro.analysis lint [paths]``.

Exit status 0 means no findings; 1 means findings (or usage error 2).
``--json`` emits a machine-readable findings array for CI annotation.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.linter import Linter, render_human, render_json
from repro.analysis.rules import default_rules


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Malacology correctness tooling")
    sub = parser.add_subparsers(dest="command")
    lint = sub.add_parser(
        "lint", help="run the MAL determinism/protocol lint rules")
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories (default: src)")
    lint.add_argument("--json", action="store_true",
                      help="emit findings as JSON")
    args = parser.parse_args(argv)
    if args.command != "lint":
        parser.print_help()
        return 2
    linter = Linter(default_rules())
    findings = linter.lint_paths(args.paths or ["src"])
    if args.json:
        print(render_json(findings))
    elif findings:
        print(render_human(findings))
    else:
        print("clean: no findings")
    return 1 if findings else 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not our error.
        sys.exit(1)
