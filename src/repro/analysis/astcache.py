"""Shared parse plane for the analysis tooling.

The tree linter and the message-flow analyzer both need every source
file parsed to an AST.  Parsing dominates their wall-clock, so this
module parses each file exactly once per process and hands the same
:class:`SourceFile` objects to every consumer — ``lint`` and ``flow``
in one ``check`` invocation share a single pass over the tree.

The cache is keyed by ``(path, mtime, size)``: editing a file between
two analyses inside one process (tests do this) transparently
re-parses it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class SourceFile:
    """One parsed source file (or its read/parse failure)."""

    path: Path
    source: str = ""
    tree: Optional[ast.Module] = None
    #: OSError/UnicodeDecodeError text when the file was unreadable.
    read_error: Optional[str] = None
    #: (message, lineno) when the file failed to parse.
    syntax_error: Optional[Tuple[str, int]] = None
    lines: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.tree is not None


def parse_file(path: Path) -> SourceFile:
    """Read and parse one file, capturing failures as data."""
    try:
        source = path.read_text()
    except (OSError, UnicodeDecodeError) as exc:
        return SourceFile(path=path, read_error=str(exc))
    sf = SourceFile(path=path, source=source,
                    lines=source.splitlines())
    try:
        sf.tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        sf.syntax_error = (exc.msg or "invalid syntax", exc.lineno or 1)
    return sf


def expand_paths(paths: Sequence[str]) -> List[Path]:
    """Files named by ``paths``: directories recurse, sorted for
    deterministic analysis order."""
    files: List[Path] = []
    for p in paths:
        path = Path(p)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


class ASTCache:
    """Parse-once cache shared by the lint and flow passes."""

    def __init__(self) -> None:
        self._by_path: Dict[Path, Tuple[Tuple[float, int], SourceFile]] = {}

    def get(self, path: Path) -> SourceFile:
        try:
            st = path.stat()
            stamp = (st.st_mtime, st.st_size)
        except OSError as exc:
            return SourceFile(path=path, read_error=str(exc))
        hit = self._by_path.get(path)
        if hit is not None and hit[0] == stamp:
            return hit[1]
        sf = parse_file(path)
        self._by_path[path] = (stamp, sf)
        return sf

    def files(self, paths: Sequence[str]) -> List[SourceFile]:
        return [self.get(p) for p in expand_paths(paths)]


#: Process-wide default cache: one ``python -m repro.analysis check``
#: run parses the tree once for both subanalyses.
DEFAULT_CACHE = ASTCache()
