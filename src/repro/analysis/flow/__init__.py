"""Whole-program message-flow analyzer (``repro.analysis.flow``).

Builds the cross-daemon RPC graph — every daemon kind's handler table
joined with every resolved ``call``/``cast`` site — then checks the
MAL010-017 reply/future-discipline and architecture rules over it and
emits the committed ``docs/rpc-graph.{json,dot}`` artifacts.

Public surface::

    from repro.analysis.flow import build, flow_findings, FLOW_CODES

    ex = build(["src/repro"])          # Extraction (graph + mutations)
    findings = flow_findings(ex, design_text=Path("DESIGN.md").read_text())
"""

from __future__ import annotations

from typing import List, Sequence

from repro.analysis.astcache import DEFAULT_CACHE
from repro.analysis.flow.extract import Extraction, Extractor, extract
from repro.analysis.flow.model import (
    ANY_KIND,
    CallSite,
    FlowGraph,
    Handler,
)
from repro.analysis.flow.rules import FLOW_CODES, flow_findings
from repro.analysis.flow import emit

__all__ = [
    "ANY_KIND",
    "CallSite",
    "Extraction",
    "Extractor",
    "FLOW_CODES",
    "FlowGraph",
    "Handler",
    "build",
    "emit",
    "extract",
    "flow_findings",
]


def build(paths: Sequence[str]) -> Extraction:
    """Parse ``paths`` (via the shared AST cache) and extract the
    message-flow graph."""
    return extract(DEFAULT_CACHE.files(paths))
