"""Artifact emission for the message-flow analyzer.

Two artifacts are committed under ``docs/`` and gated against drift:

* ``rpc-graph.json`` — the full graph (kinds, handler tables, edges,
  per-method registry) stamped with ``schema_version`` + ``git_sha``
  per the bench_util conventions;
* ``rpc-graph.dot`` — the Graphviz rendering (one node per daemon
  kind, dashed edges for cast traffic).

Both are byte-deterministic: every collection is sorted and all file
paths are rewritten relative to the repo root, so regeneration from
any working directory produces identical bytes.  ``check_drift``
re-extracts the graph and compares against the committed artifacts,
overriding the fresh ``git_sha`` with the committed one so the gate
only fires on *content* drift, not on the commit hash advancing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.analysis.flow.extract import Extraction
from repro.analysis.provenance import stamp

JSON_NAME = "rpc-graph.json"
DOT_NAME = "rpc-graph.dot"

#: Markers delimiting the auto-rendered admin-command inventory inside
#: DESIGN.md; everything between them is regenerated.
INVENTORY_BEGIN = "<!-- admin-inventory:begin (generated) -->"
INVENTORY_END = "<!-- admin-inventory:end -->"


def repo_root(start: Optional[Path] = None) -> Path:
    """Walk up to the checkout root (the dir holding pyproject.toml)."""
    here = (start or Path(__file__)).resolve()
    for parent in [here, *here.parents]:
        if (parent / "pyproject.toml").is_file():
            return parent
    return Path.cwd()


def _rel(path_str: str, root: Path) -> str:
    try:
        return Path(path_str).resolve().relative_to(root).as_posix()
    except ValueError:
        return Path(path_str).as_posix()


def _relativize(obj: Any, root: Path) -> Any:
    """Rewrite every ``"path"`` value repo-root-relative, in place."""
    if isinstance(obj, dict):
        for key, value in obj.items():
            if key == "path" and isinstance(value, str):
                obj[key] = _rel(value, root)
            else:
                _relativize(value, root)
    elif isinstance(obj, list):
        for item in obj:
            _relativize(item, root)
    return obj


def graph_doc(ex: Extraction) -> Dict[str, Any]:
    """The stamped, repo-root-relative JSON document."""
    root = repo_root()
    doc = stamp({
        "tool": "repro.analysis.flow",
        "graph": _relativize(ex.graph.to_payload(), root),
        "dynamic_sites": [
            {"path": _rel(p, root), "line": line, "method": method}
            for p, line, method in ex.dynamic_sites],
    })
    return doc


def render_json(doc: Dict[str, Any]) -> str:
    return json.dumps(doc, indent=1, sort_keys=True) + "\n"


def emit_artifacts(ex: Extraction, outdir: Path) -> List[Path]:
    """Write both artifacts; returns the written paths."""
    outdir.mkdir(parents=True, exist_ok=True)
    json_path = outdir / JSON_NAME
    dot_path = outdir / DOT_NAME
    json_path.write_text(render_json(graph_doc(ex)))
    dot_path.write_text(ex.graph.to_dot())
    return [json_path, dot_path]


def check_drift(ex: Extraction, outdir: Path) -> List[str]:
    """Compare a fresh extraction against the committed artifacts.

    Returns human-readable error strings (empty = no drift).
    """
    errors: List[str] = []
    json_path = outdir / JSON_NAME
    dot_path = outdir / DOT_NAME
    if not json_path.is_file():
        errors.append(f"{json_path}: missing (run `python -m "
                      "repro.analysis flow --emit`)")
    else:
        committed_text = json_path.read_text()
        try:
            committed = json.loads(committed_text)
        except json.JSONDecodeError as exc:
            committed = None
            errors.append(f"{json_path}: unparseable JSON ({exc})")
        if committed is not None:
            fresh = graph_doc(ex)
            # Content drift only: the committed artifact legitimately
            # carries the sha of the commit that generated it.
            fresh["git_sha"] = committed.get("git_sha", "unknown")
            if render_json(fresh) != committed_text:
                errors.append(
                    f"{json_path}: stale — the committed RPC graph "
                    "no longer matches the source tree; regenerate "
                    "with `python -m repro.analysis flow src/repro "
                    "--emit docs` and commit the result")
    if not dot_path.is_file():
        errors.append(f"{dot_path}: missing (run `python -m "
                      "repro.analysis flow --emit`)")
    elif dot_path.read_text() != ex.graph.to_dot():
        errors.append(
            f"{dot_path}: stale — regenerate with `python -m "
            "repro.analysis flow src/repro --emit docs` and commit")
    return errors


# ----------------------------------------------------------------------
# Rendered admin-command inventory (DESIGN.md)
# ----------------------------------------------------------------------
def render_admin_inventory(ex: Extraction) -> str:
    """Markdown table of every admin command per daemon kind."""
    root = repo_root()
    lines = [
        INVENTORY_BEGIN,
        "",
        "| Kind | Command | Registered at |",
        "|------|---------|---------------|",
    ]
    for kind, commands in ex.graph.admin_inventory().items():
        for command in commands:
            handler = ex.graph.kinds[kind].handlers.get(command)
            where = "-"
            if handler is not None:
                where = f"`{_rel(handler.path, root)}:{handler.line}`"
            lines.append(f"| {kind} | `{command}` | {where} |")
    lines.extend(["", INVENTORY_END])
    return "\n".join(lines)


def inject_inventory(design_path: Path, ex: Extraction) -> bool:
    """Replace the marker block in DESIGN.md; returns True if the
    file changed."""
    text = design_path.read_text()
    begin = text.find(INVENTORY_BEGIN)
    end = text.find(INVENTORY_END)
    if begin < 0 or end < 0:
        raise SystemExit(
            f"{design_path}: admin-inventory markers not found "
            f"(expected '{INVENTORY_BEGIN}' ... '{INVENTORY_END}')")
    rendered = render_admin_inventory(ex)
    updated = text[:begin] + rendered + text[end + len(INVENTORY_END):]
    if updated != text:
        design_path.write_text(updated)
        return True
    return False
