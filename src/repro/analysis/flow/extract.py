"""Whole-program extraction: classes, handler tables, call/cast sites.

This is the interprocedural half of the analyzer.  It indexes every
class in the analyzed tree, resolves which concrete daemon *kind* each
one serves (``Monitor`` -> ``mon``, mixins -> every kind that inherits
them, helpers -> the kinds they are attached to), then walks every
function for:

* ``register_handler`` / ``register_admin_command`` calls — including
  the ``rh = self.register_handler`` aliasing idiom and registrations
  performed by helper functions on a daemon-typed parameter (Mantle's
  ``mds.register_admin_command``, ``install_telemetry_commands``);
* every ``call``/``cast`` site, with the destination expression
  resolved to a daemon kind via (in order) string-constant prefixes,
  local dataflow on the ``dst`` expression, identifier naming
  conventions, the ``peer`` same-kind idiom, and finally the handler
  registry (a method registered by exactly one kind pins its
  destination);
* dynamic-method RPC wrappers (``mon_request(method, ...)``): callers
  that pass a string constant become effective call sites at the
  caller's location;
* payload shapes — dict-literal keys at call sites vs. subscript /
  ``.get`` keys in handlers — and reply discipline (is the returned
  Future consumed? does the handler have a silent fall-through?).

Everything here is pure AST analysis: no imports of the analyzed
code, deterministic output (sorted everywhere), no hash-order
dependence.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.astcache import SourceFile
from repro.analysis.flow.model import (
    ANY_KIND,
    CallSite,
    FlowGraph,
    Handler,
)

# ----------------------------------------------------------------------
# Naming conventions
# ----------------------------------------------------------------------

#: Ordered class-name patterns -> daemon kind.  First match wins;
#: checked on the lowercased class name, then up the base-class chain.
CLASS_KIND_PATTERNS: Tuple[Tuple[str, str], ...] = (
    ("changelog", "changelog"),
    ("auditpipeline", "changelog"),
    ("mgr", "mgr"),
    ("monitor", "mon"),
    ("mds", "mds"),
    ("osd", "osd"),
    ("client", "client"),
    ("admin", "client"),
)

#: String-constant daemon-name prefixes -> kind (``"mon2"`` -> mon).
NAME_PREFIXES: Tuple[Tuple[str, str], ...] = (
    ("changelog", "changelog"),
    ("mgr", "mgr"),
    ("mon", "mon"),
    ("mds", "mds"),
    ("osd", "osd"),
    ("client", "client"),
    ("admin", "client"),
)

#: Identifier tokens -> kind, for dst expressions and their
#: assignments (``acting[0]`` -> osd, ``self.leader`` -> mon, ...).
DST_NAME_HINTS: Tuple[Tuple[str, str], ...] = (
    ("changelog", "changelog"),
    ("writer", "changelog"),
    ("mgr", "mgr"),
    ("mon", "mon"),
    ("mons", "mon"),
    ("leader", "mon"),
    ("mds", "mds"),
    ("mdss", "mds"),
    ("rank_holder", "mds"),
    ("osd", "osd"),
    ("osds", "osd"),
    ("acting", "osd"),
    ("primary", "osd"),
    ("replica", "osd"),
    ("replicas", "osd"),
    ("client", "client"),
    ("clients", "client"),
)

#: Sanitizer planes and the hook-name prefixes that identify a call
#: into them (``san.caps.on_grant``, ``san.zlog.observe_ops``).
SANITIZER_PLANES = ("paxos", "caps", "zlog", "migration")

#: Directories whose files are the message/simulation machinery
#: itself: their generic ``self.call(dst, method)`` plumbing is not a
#: protocol site.
_MACHINERY_PARTS = ("msg", "sim")


# ----------------------------------------------------------------------
# Small AST helpers
# ----------------------------------------------------------------------
def dotted_text(node: ast.AST) -> str:
    """Compact source text for an expression (best effort)."""
    try:
        return ast.unparse(node)
    except (ValueError, AttributeError):  # pragma: no cover
        return "<expr>"


def _tokens(text: str) -> List[str]:
    out: List[str] = []
    word = []
    for ch in text.lower():
        if ch.isalnum() or ch == "_":
            word.append(ch)
        else:
            if word:
                out.extend("".join(word).split("_"))
                word = []
    if word:
        out.extend("".join(word).split("_"))
    return [t.rstrip("0123456789") or t for t in out if t]


def _hint_kind(text: str) -> Optional[str]:
    toks = set(_tokens(text)) - {"self"}
    for token, kind in DST_NAME_HINTS:
        if token in toks:
            return kind
    return None


def _const_prefix_kind(value: str) -> Optional[str]:
    low = value.lower()
    for prefix, kind in NAME_PREFIXES:
        if low.startswith(prefix):
            return kind
    return None


def _str_head(node: ast.AST) -> Optional[str]:
    """Leading literal text of a str constant / f-string / .format."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        first = node.values[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "format"):
        return _str_head(node.func.value)
    return None


def _walk_shallow(node: ast.AST) -> Iterable[ast.AST]:
    """Walk without descending into nested function/class defs."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(child))


# ----------------------------------------------------------------------
# Control-flow: does a body terminate (return/raise) on every path?
# ----------------------------------------------------------------------
def _has_break(loop: ast.AST) -> bool:
    for node in ast.walk(loop):
        if isinstance(node, ast.Break):
            return True
    return False


def body_terminates(body: Sequence[ast.stmt]) -> bool:
    return any(_stmt_terminates(s) for s in body)


def _stmt_terminates(stmt: ast.stmt) -> bool:
    if isinstance(stmt, (ast.Return, ast.Raise)):
        return True
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        fn = stmt.value.func
        if isinstance(fn, ast.Attribute) and fn.attr == "exit":
            return True
    if isinstance(stmt, ast.If):
        return bool(stmt.orelse) and body_terminates(stmt.body) \
            and body_terminates(stmt.orelse)
    if isinstance(stmt, ast.Try):
        if stmt.finalbody and body_terminates(stmt.finalbody):
            return True
        main = body_terminates(stmt.orelse) if stmt.orelse \
            else body_terminates(stmt.body)
        return main and all(body_terminates(h.body)
                            for h in stmt.handlers)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return body_terminates(stmt.body)
    if isinstance(stmt, ast.While):
        return (isinstance(stmt.test, ast.Constant)
                and bool(stmt.test.value) and not _has_break(stmt))
    return False


# ----------------------------------------------------------------------
# Class index
# ----------------------------------------------------------------------
@dataclass
class ClassInfo:
    name: str
    path: Path
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, ast.AST] = field(default_factory=dict)

    @property
    def in_machinery(self) -> bool:
        return any(p in self.path.parts for p in _MACHINERY_PARTS)


@dataclass
class Mutation:
    """One mutation of a protected attribute inside one function."""

    cls: str
    kinds: Tuple[str, ...]
    func: str
    attr_root: str              # e.g. "chosen" in self.chosen.learn(...)
    member: str                 # "learn", or "=" for attribute assigns
    path: str
    line: int
    #: Sanitizer planes this function calls into anywhere in its body.
    planes_in_func: Tuple[str, ...] = ()


@dataclass
class _Wrapper:
    """A method that forwards a ``method`` parameter into self.call."""

    cls: Optional[str]
    func: str
    method_param: str
    param_index: int            # positional index among non-self args
    payload_param: Optional[str]
    payload_index: Optional[int]
    inner_mode: str             # call | cast
    dst_kind: str
    dst_text: str
    resolution: str
    payload_keys: Tuple[str, ...]
    payload_exhaustive: Optional[bool]
    consumes_reply: bool
    has_timeout: bool


@dataclass
class Extraction:
    """Everything the rules and emitters need."""

    graph: FlowGraph
    files: List[SourceFile]
    mutations: List[Mutation] = field(default_factory=list)
    #: (path, line) of every dynamic-method call site that no wrapper
    #: caller resolved (excluded from MAL010, reported in the graph
    #: payload for auditability).
    dynamic_sites: List[Tuple[str, int, str]] = field(default_factory=list)


# ----------------------------------------------------------------------
# The extractor
# ----------------------------------------------------------------------
class Extractor:
    def __init__(self, files: Sequence[SourceFile]):
        self.files = [f for f in files if f.ok]
        self.classes: Dict[str, ClassInfo] = {}
        self.module_funcs: Dict[str, Tuple[ast.AST, Path]] = {}
        self.graph = FlowGraph()
        self.mutations: List[Mutation] = []
        self.dynamic_sites: List[Tuple[str, int, str]] = []
        self._wrappers: Dict[str, _Wrapper] = {}
        self._kinds_cache: Dict[str, Tuple[str, ...]] = {}
        #: Raw registrations deferred until kinds are known:
        #: (cls_name|None, fn, receiver_root, reg_kind, method, handler_expr,
        #:  path, line)
        self._registrations: List[Tuple] = []
        self._sites_raw: List[CallSite] = []

    # ------------------------------------------------------------------
    def run(self) -> Extraction:
        self._index()
        self._extract_all()
        self._resolve_registrations()
        self._resolve_wrapper_callers()
        self._finish_sites()
        self.graph.finish()
        return Extraction(graph=self.graph, files=self.files,
                          mutations=sorted(
                              self.mutations,
                              key=lambda m: (m.path, m.line)),
                          dynamic_sites=sorted(self.dynamic_sites))

    # ------------------------------------------------------------------
    # Pass 1: index classes and module functions
    # ------------------------------------------------------------------
    def _index(self) -> None:
        for sf in self.files:
            for node in sf.tree.body:
                if isinstance(node, ast.ClassDef):
                    info = ClassInfo(
                        name=node.name, path=sf.path, node=node,
                        bases=[dotted_text(b).split(".")[-1]
                               for b in node.bases])
                    for item in node.body:
                        if isinstance(item, (ast.FunctionDef,
                                             ast.AsyncFunctionDef)):
                            info.methods[item.name] = item
                    # First definition wins on name collision; class
                    # names are unique in this tree.
                    self.classes.setdefault(node.name, info)
                elif isinstance(node, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    self.module_funcs.setdefault(
                        node.name, (node, sf.path))

    def _ancestors(self, name: str) -> List[str]:
        out: List[str] = []
        seen: Set[str] = set()
        stack = [name]
        while stack:
            cur = stack.pop(0)
            info = self.classes.get(cur)
            if info is None:
                continue
            for base in info.bases:
                if base not in seen:
                    seen.add(base)
                    out.append(base)
                    stack.append(base)
        return out

    def _is_daemon(self, name: str) -> bool:
        return "Daemon" == name or "Daemon" in self._ancestors(name)

    def _kind_of_class(self, name: str) -> Optional[str]:
        """Kind of a concrete daemon class (by name, then bases)."""
        for candidate in [name, *self._ancestors(name)]:
            low = candidate.lower()
            for pattern, kind in CLASS_KIND_PATTERNS:
                if pattern in low:
                    return kind
        return None

    def kinds_of_class(self, name: Optional[str]) -> Tuple[str, ...]:
        """The daemon kinds a class's code runs as.

        Concrete daemon subclasses map to their own kind; mixins map to
        every kind whose daemon class inherits them; anything else
        (helper shims like ChangelogProducer) is ``*``.
        """
        if name is None:
            return (ANY_KIND,)
        cached = self._kinds_cache.get(name)
        if cached is not None:
            return cached
        kinds: Set[str] = set()
        if self._is_daemon(name) and name != "Daemon":
            kind = self._kind_of_class(name)
            if kind:
                kinds.add(kind)
        else:
            for cls_name in self.classes:
                if cls_name == name or not self._is_daemon(cls_name) \
                        or cls_name == "Daemon":
                    continue
                if name in self._ancestors(cls_name):
                    kind = self._kind_of_class(cls_name)
                    if kind:
                        kinds.add(kind)
        result = tuple(sorted(kinds)) or (ANY_KIND,)
        self._kinds_cache[name] = result
        return result

    def all_kinds(self) -> List[str]:
        kinds: Set[str] = set()
        for cls_name in self.classes:
            if self._is_daemon(cls_name) and cls_name != "Daemon":
                kind = self._kind_of_class(cls_name)
                if kind:
                    kinds.add(kind)
        return sorted(kinds)

    # ------------------------------------------------------------------
    # Pass 2: walk every function
    # ------------------------------------------------------------------
    def _extract_all(self) -> None:
        for sf in sorted(self.files, key=lambda f: str(f.path)):
            machinery = any(p in sf.path.parts
                            for p in _MACHINERY_PARTS)
            for node in sf.tree.body:
                if isinstance(node, ast.ClassDef):
                    info = self.classes[node.name]
                    for fn in info.methods.values():
                        self._extract_fn(fn, info.name, sf.path,
                                         machinery)
                elif isinstance(node, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    self._extract_fn(node, None, sf.path, machinery)

    # -- registration + site extraction for one function ---------------
    def _extract_fn(self, fn: ast.AST, cls: Optional[str], path: Path,
                    machinery: bool) -> None:
        params = [a.arg for a in fn.args.args]
        # Aliases: name -> (receiver_root, "register_handler"/"..cmd")
        aliases: Dict[str, Tuple[str, str]] = {}
        for node in _walk_shallow(fn):
            if isinstance(node, ast.Assign) \
                    and isinstance(node.value, ast.Attribute) \
                    and node.value.attr in ("register_handler",
                                            "register_admin_command") \
                    and isinstance(node.value.value, ast.Name):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        aliases[tgt.id] = (node.value.value.id,
                                           node.value.attr)
        planes = self._planes_in(fn)
        parents = self._parent_map(fn)
        loads = self._name_loads(fn)
        for node in _walk_shallow(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # Registrations -------------------------------------------
            reg: Optional[Tuple[str, str]] = None
            if isinstance(func, ast.Attribute) \
                    and func.attr in ("register_handler",
                                      "register_admin_command") \
                    and isinstance(func.value, ast.Name):
                reg = (func.value.id, func.attr)
            elif isinstance(func, ast.Name) and func.id in aliases:
                reg = aliases[func.id]
            if reg is not None and not machinery:
                receiver, reg_kind = reg
                if node.args and isinstance(node.args[0], ast.Constant) \
                        and isinstance(node.args[0].value, str):
                    handler_expr = node.args[1] \
                        if len(node.args) > 1 else None
                    self._registrations.append(
                        (cls, fn, receiver, reg_kind,
                         node.args[0].value, handler_expr, path,
                         node.lineno, params))
                continue
            # Call/cast sites -----------------------------------------
            if isinstance(func, ast.Attribute) \
                    and func.attr in ("call", "cast") \
                    and self._self_rooted(func.value):
                if machinery:
                    continue
                self._extract_site(node, fn, cls, path, params,
                                   parents, loads)
        # Protected-state mutations (MAL017) ----------------------------
        if cls is not None:
            self._extract_mutations(fn, cls, path, planes)

    @staticmethod
    def _self_rooted(expr: ast.AST) -> bool:
        """self.call / self.daemon.call style receivers."""
        while isinstance(expr, ast.Attribute):
            expr = expr.value
        return isinstance(expr, ast.Name) and expr.id == "self"

    # -- one call/cast site --------------------------------------------
    def _extract_site(self, node: ast.Call, fn: ast.AST,
                      cls: Optional[str], path: Path,
                      params: List[str], parents: Dict[int, ast.AST],
                      loads: Dict[str, int]) -> None:
        mode = node.func.attr
        args = node.args
        if len(args) < 2:
            return
        dst_expr, method_expr = args[0], args[1]
        payload_expr = args[2] if len(args) > 2 else None
        for kw in node.keywords:
            if kw.arg == "payload":
                payload_expr = kw.value
        has_timeout = len(args) > 3 or any(
            kw.arg == "timeout" for kw in node.keywords)
        consumes = self._consumes_reply(node, parents, loads) \
            if mode == "call" else False
        payload_keys, exhaustive = self._payload_shape(payload_expr, fn)
        fname = getattr(fn, "name", "<module>")
        if isinstance(method_expr, ast.Constant) \
                and isinstance(method_expr.value, str):
            dst_kind, resolution = self._resolve_dst(
                dst_expr, fn, cls)
            self._sites_raw.append(CallSite(
                src_kinds=(), src_cls=cls or "<module>", mode=mode,
                method=method_expr.value,
                dst_text=dotted_text(dst_expr), dst_kind=dst_kind,
                resolution=resolution, path=str(path),
                line=node.lineno, via="direct",
                payload_keys=payload_keys,
                payload_exhaustive=exhaustive,
                consumes_reply=consumes, has_timeout=has_timeout))
        elif isinstance(method_expr, ast.Name) \
                and method_expr.id in params:
            # Dynamic method forwarded from a parameter: this function
            # is an RPC wrapper; its constant-method callers become the
            # effective sites.
            non_self = [p for p in params if p != "self"]
            payload_param = None
            payload_index = None
            if isinstance(payload_expr, ast.Name) \
                    and payload_expr.id in non_self:
                payload_param = payload_expr.id
                payload_index = non_self.index(payload_expr.id)
            dst_kind, resolution = self._resolve_dst(dst_expr, fn, cls)
            self._wrappers[fname] = _Wrapper(
                cls=cls, func=fname, method_param=method_expr.id,
                param_index=non_self.index(method_expr.id),
                payload_param=payload_param,
                payload_index=payload_index,
                inner_mode=mode, dst_kind=dst_kind,
                dst_text=dotted_text(dst_expr), resolution=resolution,
                payload_keys=payload_keys,
                payload_exhaustive=exhaustive,
                consumes_reply=consumes, has_timeout=has_timeout)
        else:
            self.dynamic_sites.append(
                (str(path), node.lineno, dotted_text(method_expr)))

    # -- reply consumption ---------------------------------------------
    @staticmethod
    def _parent_map(fn: ast.AST) -> Dict[int, ast.AST]:
        parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(fn):
            for child in ast.iter_child_nodes(parent):
                parents[id(child)] = parent
        return parents

    @staticmethod
    def _name_loads(fn: ast.AST) -> Dict[str, int]:
        loads: Dict[str, int] = {}
        for node in _walk_shallow(fn):
            if isinstance(node, ast.Name) \
                    and isinstance(node.ctx, ast.Load):
                loads[node.id] = loads.get(node.id, 0) + 1
        return loads

    def _consumes_reply(self, call: ast.Call,
                        parents: Dict[int, ast.AST],
                        loads: Dict[str, int]) -> bool:
        parent = parents.get(id(call))
        if isinstance(parent, ast.Expr):
            return False          # bare statement: Future discarded
        if isinstance(parent, ast.Assign):
            targets = parent.targets
            if len(targets) == 1 and isinstance(targets[0], ast.Name):
                # Consumed iff the bound name is ever read again.
                return loads.get(targets[0].id, 0) > 0
            return True
        return True               # yielded / returned / nested expr

    # -- payload shapes ------------------------------------------------
    def _payload_shape(self, expr: Optional[ast.AST], fn: ast.AST,
                       ) -> Tuple[Tuple[str, ...], Optional[bool]]:
        if expr is None or (isinstance(expr, ast.Constant)
                            and expr.value is None):
            return (), True
        if isinstance(expr, ast.Dict):
            return self._dict_keys(expr)
        if isinstance(expr, ast.Name):
            assigns = [n for n in _walk_shallow(fn)
                       if isinstance(n, ast.Assign)
                       and any(isinstance(t, ast.Name)
                               and t.id == expr.id
                               for t in n.targets)]
            if len(assigns) == 1 and isinstance(assigns[0].value,
                                                ast.Dict):
                keys, exhaustive = self._dict_keys(assigns[0].value)
                # A later name.update(...) / name[var] = ... opens the
                # key set back up.
                for n in _walk_shallow(fn):
                    if isinstance(n, ast.Call) \
                            and isinstance(n.func, ast.Attribute) \
                            and n.func.attr == "update" \
                            and isinstance(n.func.value, ast.Name) \
                            and n.func.value.id == expr.id:
                        exhaustive = False
                    if isinstance(n, ast.Subscript) \
                            and isinstance(n.value, ast.Name) \
                            and n.value.id == expr.id \
                            and isinstance(n.ctx, ast.Store):
                        exhaustive = False
                        if isinstance(n.slice, ast.Constant) \
                                and isinstance(n.slice.value, str):
                            keys = tuple(sorted({*keys,
                                                 n.slice.value}))
                return keys, exhaustive
        return (), None

    @staticmethod
    def _dict_keys(node: ast.Dict,
                   ) -> Tuple[Tuple[str, ...], Optional[bool]]:
        keys: List[str] = []
        exhaustive = True
        for key in node.keys:
            if isinstance(key, ast.Constant) \
                    and isinstance(key.value, str):
                keys.append(key.value)
            else:
                exhaustive = False  # **spread or computed key
        return tuple(sorted(keys)), exhaustive

    # -- destination resolution ----------------------------------------
    def _resolve_dst(self, dst: ast.AST, fn: ast.AST,
                     cls: Optional[str]) -> Tuple[str, str]:
        head = _str_head(dst)
        if head is not None:
            kind = _const_prefix_kind(head)
            if kind:
                return kind, "const"
        text = dotted_text(dst)
        # Local dataflow: one assignment to the dst name in this fn.
        if isinstance(dst, ast.Name):
            rhs_texts: List[str] = []
            for node in _walk_shallow(fn):
                if isinstance(node, ast.Assign) and any(
                        isinstance(t, ast.Name) and t.id == dst.id
                        for t in node.targets):
                    rhs_texts.append(dotted_text(node.value))
                    rhs_head = _str_head(node.value)
                    if rhs_head is not None:
                        kind = _const_prefix_kind(rhs_head)
                        if kind:
                            return kind, "dataflow"
                elif isinstance(node, (ast.For, ast.comprehension)) \
                        and isinstance(getattr(node, "target", None),
                                       ast.Name) \
                        and node.target.id == dst.id:
                    rhs_texts.append(dotted_text(node.iter))
            for rhs in rhs_texts:
                kind = _hint_kind(rhs)
                if kind:
                    return kind, "dataflow"
        # Identifier naming conventions on the expression itself.
        kind = _hint_kind(text)
        if kind:
            return kind, "name-hint"
        # ``peer`` means same-kind traffic.
        if "peer" in _tokens(text) and cls is not None:
            kinds = self.kinds_of_class(cls)
            if len(kinds) == 1 and kinds[0] != ANY_KIND:
                return kinds[0], "peer"
        return ANY_KIND, "unresolved"

    # ------------------------------------------------------------------
    # Pass 3: registrations -> handler tables
    # ------------------------------------------------------------------
    def _resolve_registrations(self) -> None:
        all_kinds = self.all_kinds()
        for (cls, fn, receiver, reg_kind, method, handler_expr, path,
             line, params) in self._registrations:
            helper = False
            if receiver == "self" and cls is not None:
                kinds = self.kinds_of_class(cls)
            elif receiver in params:
                kinds = self._kinds_of_param(fn, receiver, all_kinds)
                helper = True
            else:
                kinds = (ANY_KIND,)
            if kinds == (ANY_KIND,):
                kinds = tuple(all_kinds)
            analysis = self._analyze_handler(handler_expr, cls)
            via = "admin" if reg_kind == "register_admin_command" \
                else "handler"
            if helper:
                via += "+helper"
            for kind in kinds:
                node = self.graph.kind(kind)
                if cls is not None:
                    node.classes.append(cls)
                if reg_kind == "register_admin_command":
                    node.admin_commands.append(method)
                if method not in node.handlers:
                    node.handlers[method] = Handler(
                        kind=kind, method=method,
                        cls=cls or "<module>",
                        func=analysis["func"], path=str(path),
                        line=line, via=via,
                        returns_value=analysis["returns_value"],
                        falls_through=analysis["falls_through"],
                        is_generator=analysis["is_generator"],
                        payload_keys=analysis["payload_keys"],
                        payload_optional_keys=analysis["optional_keys"],
                        payload_wholesale=analysis["wholesale"])
        # Every concrete daemon class contributes its name to its kind
        # node even if all its handlers came from mixins.
        for cls_name in sorted(self.classes):
            if self._is_daemon(cls_name) and cls_name != "Daemon" \
                    and not self.classes[cls_name].in_machinery:
                kind = self._kind_of_class(cls_name)
                if kind and kind in self.graph.kinds:
                    self.graph.kinds[kind].classes.append(cls_name)

    def _kinds_of_param(self, fn: ast.AST, param: str,
                        all_kinds: List[str]) -> Tuple[str, ...]:
        """Kinds a helper's daemon-parameter can be at runtime."""
        for arg in fn.args.args:
            if arg.arg == param and arg.annotation is not None:
                ann = dotted_text(arg.annotation).split(".")[-1]
                if ann in self.classes:
                    kinds = self.kinds_of_class(ann)
                    if kinds != (ANY_KIND,):
                        return kinds
                if ann == "Daemon":
                    return tuple(all_kinds)
        hinted = _hint_kind(param)
        if hinted:
            return (hinted,)
        return (ANY_KIND,)        # "daemon"/unknown -> every kind

    # -- handler body analysis -----------------------------------------
    def _analyze_handler(self, expr: Optional[ast.AST],
                         cls: Optional[str]) -> Dict:
        out = {"func": "<unknown>", "returns_value": False,
               "falls_through": False, "is_generator": False,
               "payload_keys": (), "optional_keys": (),
               "wholesale": False}
        fn = self._handler_fn(expr, cls)
        if fn is None:
            if isinstance(expr, ast.Lambda):
                out["func"] = "<lambda>"
                body = expr.body
                out["returns_value"] = not (
                    isinstance(body, ast.Constant)
                    and body.value is None)
                payload = expr.args.args[-1].arg \
                    if expr.args.args else None
                if payload:
                    req, opt, wholesale = self._payload_reads(
                        expr, payload)
                    out["payload_keys"] = req
                    out["optional_keys"] = opt
                    out["wholesale"] = wholesale
            return out
        out["func"] = fn.name
        out["is_generator"] = any(
            isinstance(n, (ast.Yield, ast.YieldFrom))
            for n in _walk_shallow(fn))
        returns_value = False
        for node in _walk_shallow(fn):
            if isinstance(node, ast.Return) and node.value is not None \
                    and not (isinstance(node.value, ast.Constant)
                             and node.value.value is None):
                returns_value = True
        out["returns_value"] = returns_value
        out["falls_through"] = not body_terminates(fn.body)
        args = fn.args.args
        if args:
            payload = args[-1].arg
            req, opt, wholesale = self._payload_reads(fn, payload)
            out["payload_keys"] = req
            out["optional_keys"] = opt
            out["wholesale"] = wholesale
        return out

    def _handler_fn(self, expr: Optional[ast.AST],
                    cls: Optional[str]) -> Optional[ast.AST]:
        if expr is None:
            return None
        if isinstance(expr, ast.Attribute) \
                and isinstance(expr.value, ast.Name) \
                and expr.value.id == "self" and cls is not None:
            for candidate in [cls, *self._ancestors(cls)]:
                info = self.classes.get(candidate)
                if info and expr.attr in info.methods:
                    return info.methods[expr.attr]
        if isinstance(expr, ast.Name):
            hit = self.module_funcs.get(expr.id)
            if hit:
                return hit[0]
        return None

    @staticmethod
    def _payload_reads(fn: ast.AST, param: str,
                       ) -> Tuple[Tuple[str, ...], Tuple[str, ...], bool]:
        """(required keys, optional keys, escapes wholesale?).

        ``payload["k"]`` is a hard requirement on call sites;
        ``payload.get("k")`` merely marks the key as read.  A payload
        that escapes whole (passed on, iterated, returned) has an
        open-ended key set.
        """
        required: Set[str] = set()
        optional: Set[str] = set()

        def is_base(expr: ast.AST) -> bool:
            # ``payload`` or the ``(payload or {})`` defaulting idiom.
            if isinstance(expr, ast.Name) and expr.id == param:
                return True
            return isinstance(expr, ast.BoolOp) and any(
                isinstance(v, ast.Name) and v.id == param
                for v in expr.values)

        for node in _walk_shallow(fn):
            if isinstance(node, ast.Subscript) \
                    and is_base(node.value) \
                    and isinstance(node.slice, ast.Constant) \
                    and isinstance(node.slice.value, str):
                required.add(node.slice.value)
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "get" \
                    and is_base(node.func.value) \
                    and node.args \
                    and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                optional.add(node.args[0].value)
        wholesale = Extractor._escapes_whole(fn, param)
        return tuple(sorted(required)), tuple(sorted(optional)), wholesale

    @staticmethod
    def _escapes_whole(fn: ast.AST, param: str) -> bool:
        for node in _walk_shallow(fn):
            if isinstance(node, ast.Call):
                for arg in node.args:
                    if isinstance(arg, ast.Name) and arg.id == param:
                        return True
                for kw in node.keywords:
                    if isinstance(kw.value, ast.Name) \
                            and kw.value.id == param:
                        return True
            elif isinstance(node, (ast.For,)) \
                    and isinstance(node.iter, ast.Name) \
                    and node.iter.id == param:
                return True
            elif isinstance(node, ast.Assign) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == param:
                return True
            elif isinstance(node, ast.Return) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == param:
                return True
        return False

    # ------------------------------------------------------------------
    # Pass 4: wrapper callers -> effective sites
    # ------------------------------------------------------------------
    def _resolve_wrapper_callers(self) -> None:
        if not self._wrappers:
            return
        for sf in sorted(self.files, key=lambda f: str(f.path)):
            if any(p in sf.path.parts for p in _MACHINERY_PARTS):
                continue
            for node in sf.tree.body:
                if isinstance(node, ast.ClassDef):
                    for fn in self.classes[node.name].methods.values():
                        self._wrapper_sites_in(fn, node.name, sf.path)
                elif isinstance(node, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    self._wrapper_sites_in(fn=node, cls=None,
                                           path=sf.path)

    def _wrapper_sites_in(self, fn: ast.AST, cls: Optional[str],
                          path: Path) -> None:
        for node in _walk_shallow(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and self._self_rooted(func.value)
                    and func.attr in self._wrappers):
                continue
            w = self._wrappers[func.attr]
            if w.param_index >= len(node.args):
                continue
            method_arg = node.args[w.param_index]
            if not (isinstance(method_arg, ast.Constant)
                    and isinstance(method_arg.value, str)):
                self.dynamic_sites.append(
                    (str(path), node.lineno,
                     f"{func.attr}({dotted_text(method_arg)})"))
                continue
            payload_keys, exhaustive = w.payload_keys, \
                w.payload_exhaustive
            if w.payload_index is not None \
                    and w.payload_index < len(node.args):
                payload_keys, exhaustive = self._payload_shape(
                    node.args[w.payload_index], fn)
            self._sites_raw.append(CallSite(
                src_kinds=(), src_cls=cls or "<module>",
                mode=w.inner_mode, method=method_arg.value,
                dst_text=w.dst_text, dst_kind=w.dst_kind,
                resolution=w.resolution, path=str(path),
                line=node.lineno, via=f"wrapper:{w.func}",
                payload_keys=payload_keys,
                payload_exhaustive=exhaustive,
                consumes_reply=w.consumes_reply,
                has_timeout=w.has_timeout))

    # ------------------------------------------------------------------
    # Pass 5: finish sites (src kinds + registry fallback)
    # ------------------------------------------------------------------
    def _finish_sites(self) -> None:
        for site in self._sites_raw:
            src_kinds = self.kinds_of_class(
                site.src_cls if site.src_cls != "<module>" else None)
            dst_kind, resolution = site.dst_kind, site.resolution
            if dst_kind == ANY_KIND:
                registered = self.graph.registered_kinds(site.method)
                if len(registered) == 1:
                    dst_kind, resolution = registered[0], "registry"
            self.graph.sites.append(CallSite(
                src_kinds=src_kinds, src_cls=site.src_cls,
                mode=site.mode, method=site.method,
                dst_text=site.dst_text, dst_kind=dst_kind,
                resolution=resolution, path=site.path, line=site.line,
                via=site.via, payload_keys=site.payload_keys,
                payload_exhaustive=site.payload_exhaustive,
                consumes_reply=site.consumes_reply,
                has_timeout=site.has_timeout))

    # ------------------------------------------------------------------
    # MAL017 support: sanitizer planes and protected mutations
    # ------------------------------------------------------------------
    @staticmethod
    def _planes_in(fn: ast.AST) -> Tuple[str, ...]:
        planes: Set[str] = set()
        for node in _walk_shallow(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            hook = func.attr
            if not (hook.startswith("on_")
                    or hook.startswith("observe")):
                continue
            base = func.value
            if isinstance(base, ast.Attribute) \
                    and base.attr in SANITIZER_PLANES:
                planes.add(base.attr)
        return tuple(sorted(planes))

    def _extract_mutations(self, fn: ast.AST, cls: str, path: Path,
                           planes: Tuple[str, ...]) -> None:
        kinds = self.kinds_of_class(cls)
        fname = getattr(fn, "name", "<module>")
        for node in _walk_shallow(fn):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and isinstance(node.func.value, ast.Attribute) \
                    and isinstance(node.func.value.value, ast.Name) \
                    and node.func.value.value.id == "self":
                self.mutations.append(Mutation(
                    cls=cls, kinds=kinds, func=fname,
                    attr_root=node.func.value.attr,
                    member=node.func.attr, path=str(path),
                    line=node.lineno, planes_in_func=planes))
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets \
                    if isinstance(node, ast.Assign) else [node.target]
                for tgt in targets:
                    root = tgt
                    while isinstance(root, (ast.Attribute,
                                            ast.Subscript)):
                        root = root.value
                    if isinstance(tgt, (ast.Attribute, ast.Subscript)) \
                            and isinstance(tgt.value, ast.Attribute) \
                            and isinstance(tgt.value.value, ast.Name) \
                            and tgt.value.value.id == "self":
                        self.mutations.append(Mutation(
                            cls=cls, kinds=kinds, func=fname,
                            attr_root=tgt.value.attr, member="=",
                            path=str(path), line=node.lineno,
                            planes_in_func=planes))


def extract(files: Sequence[SourceFile]) -> Extraction:
    """Run the whole-program extraction over parsed files."""
    return Extractor(files).run()
