"""Message-flow graph model: daemon kinds, handlers, call/cast edges.

The graph is the analyzer's single product: nodes are *daemon kinds*
(``mon``/``mds``/``osd``/``mgr``/``client``/``changelog``), each
carrying its merged handler table (direct registrations, admin-command
mirrors, mixin and helper contributions), and edges are every resolved
``call``/``cast`` site with its destination kind and payload-shape
summary.  All collections are stored and emitted sorted so the JSON
and Graphviz artifacts are byte-stable across runs and hash seeds —
the drift gate depends on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Destination marker for sites whose target kind could not be pinned
#: down (e.g. the mgr scraping ``self.targets``): matches any kind.
ANY_KIND = "*"


@dataclass(frozen=True)
class Handler:
    """One registered RPC method on one daemon kind."""

    kind: str
    method: str
    cls: str
    func: str                      # handler callable ("<lambda>" ok)
    path: str
    line: int
    #: "handler" (register_handler), "admin" (register_admin_command's
    #: in-band mirror), with a "+helper" suffix when a helper function
    #: or non-daemon class performed the registration.
    via: str = "handler"
    returns_value: bool = False
    falls_through: bool = False
    is_generator: bool = False
    #: Keys the handler reads with ``payload["k"]`` — these are hard
    #: requirements on every call site (MAL014 direction 1).
    payload_keys: Tuple[str, ...] = ()
    #: Keys read with ``payload.get("k")`` — optional, but still count
    #: as "read" when checking call-site keys (MAL014 direction 2).
    payload_optional_keys: Tuple[str, ...] = ()
    #: Handler consumes the payload wholesale (bare name / ** / loop),
    #: so its key set is open-ended.
    payload_wholesale: bool = False

    @property
    def is_admin(self) -> bool:
        return self.via.startswith("admin")

    def sort_key(self) -> Tuple[str, str]:
        return (self.kind, self.method)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "class": self.cls, "func": self.func,
            "path": self.path, "line": self.line, "via": self.via,
            "returns_value": self.returns_value,
            "falls_through": self.falls_through,
            "generator": self.is_generator,
            "payload_keys": list(self.payload_keys),
            "payload_optional_keys": list(self.payload_optional_keys),
            "payload_wholesale": self.payload_wholesale,
        }


@dataclass(frozen=True)
class CallSite:
    """One resolved ``call``/``cast`` site (direct or via a wrapper)."""

    src_kinds: Tuple[str, ...]     # kinds the defining class serves
    src_cls: str
    mode: str                      # "call" | "cast"
    method: str
    dst_text: str                  # source text of the dst expression
    dst_kind: str                  # resolved kind or ANY_KIND
    resolution: str                # const|dataflow|name-hint|peer|registry|unresolved
    path: str
    line: int
    #: "direct", or "wrapper:<func>" for sites reconstructed from a
    #: constant-method caller of a dynamic-method RPC wrapper.
    via: str = "direct"
    payload_keys: Tuple[str, ...] = ()
    #: True when the payload is a closed dict literal (every key seen);
    #: False when literal-plus-updates; None when not a dict literal.
    payload_exhaustive: Optional[bool] = None
    consumes_reply: bool = False
    has_timeout: bool = False

    def sort_key(self) -> Tuple[str, int, str, str]:
        return (self.path, self.line, self.method, self.dst_kind)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "src_kinds": list(self.src_kinds), "src_class": self.src_cls,
            "mode": self.mode, "method": self.method,
            "dst": self.dst_text, "dst_kind": self.dst_kind,
            "resolution": self.resolution,
            "path": self.path, "line": self.line, "via": self.via,
            "payload_keys": list(self.payload_keys),
            "payload_exhaustive": self.payload_exhaustive,
            "consumes_reply": self.consumes_reply,
            "has_timeout": self.has_timeout,
        }


@dataclass
class KindNode:
    """One daemon kind: its classes and merged handler table."""

    kind: str
    classes: List[str] = field(default_factory=list)
    handlers: Dict[str, Handler] = field(default_factory=dict)
    admin_commands: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "classes": sorted(self.classes),
            "handlers": {m: h.to_dict()
                         for m, h in sorted(self.handlers.items())},
            "admin_commands": sorted(self.admin_commands),
        }


@dataclass
class FlowGraph:
    """The whole-program message-flow graph."""

    kinds: Dict[str, KindNode] = field(default_factory=dict)
    sites: List[CallSite] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Build helpers
    # ------------------------------------------------------------------
    def kind(self, name: str) -> KindNode:
        node = self.kinds.get(name)
        if node is None:
            node = self.kinds[name] = KindNode(kind=name)
        return node

    def finish(self) -> "FlowGraph":
        """Sort every collection; call once after extraction."""
        self.sites.sort(key=CallSite.sort_key)
        self.kinds = dict(sorted(self.kinds.items()))
        for node in self.kinds.values():
            node.classes = sorted(set(node.classes))
            node.admin_commands = sorted(set(node.admin_commands))
            node.handlers = dict(sorted(node.handlers.items()))
        return self

    # ------------------------------------------------------------------
    # Query helpers (the rules build on these)
    # ------------------------------------------------------------------
    def registered_kinds(self, method: str) -> List[str]:
        """Kinds that register ``method`` (sorted)."""
        return [k for k, node in self.kinds.items()
                if method in node.handlers]

    def handlers_of(self, method: str) -> List[Handler]:
        return [node.handlers[method] for node in self.kinds.values()
                if method in node.handlers]

    def sites_of(self, method: str) -> List[CallSite]:
        return [s for s in self.sites if s.method == method]

    def all_methods(self) -> List[str]:
        seen = {m for node in self.kinds.values() for m in node.handlers}
        seen.update(s.method for s in self.sites)
        return sorted(seen)

    def admin_inventory(self) -> Dict[str, List[str]]:
        """kind -> sorted admin command names."""
        return {k: list(node.admin_commands)
                for k, node in sorted(self.kinds.items())
                if node.admin_commands}

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe dict, fully sorted (the ``graph`` key of the
        emitted artifact)."""
        methods: Dict[str, Any] = {}
        for m in self.all_methods():
            methods[m] = {
                "registered_by": self.registered_kinds(m),
                "site_count": len(self.sites_of(m)),
            }
        return {
            "kinds": {k: node.to_dict()
                      for k, node in self.kinds.items()},
            "edges": [s.to_dict() for s in self.sites],
            "methods": methods,
        }

    def to_dot(self) -> str:
        """Graphviz rendering: one node per kind, one edge per
        distinct (src kind, dst kind, method, mode)."""
        lines = [
            "// Generated by `python -m repro.analysis flow --emit`;",
            "// do not edit by hand (the drift gate compares bytes).",
            "digraph rpc {",
            '  rankdir=LR;',
            '  node [shape=box, fontname="Helvetica"];',
            '  edge [fontsize=9, fontname="Helvetica"];',
        ]
        for kind, node in self.kinds.items():
            classes = ", ".join(sorted(node.classes)) or "-"
            n_handlers = len(node.handlers)
            lines.append(
                f'  "{kind}" [label="{kind}\\n{classes}\\n'
                f'{n_handlers} handlers"];')
        lines.append(f'  "{ANY_KIND}" [shape=ellipse, '
                     'label="any daemon"];')
        edges = sorted({
            (src, s.dst_kind, s.method, s.mode)
            for s in self.sites for src in s.src_kinds})
        for src, dst, method, mode in edges:
            style = ', style=dashed' if mode == "cast" else ""
            lines.append(
                f'  "{src}" -> "{dst}" [label="{method}"{style}];')
        lines.append("}")
        return "\n".join(lines) + "\n"
