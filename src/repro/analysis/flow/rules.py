"""Whole-program message-flow rules (MAL010-MAL017).

Unlike the file-local MAL001-007 lint rules, these run over the
:class:`~repro.analysis.flow.extract.Extraction` — the cross-daemon
RPC graph — so a single finding can relate a handler in one daemon to
a call site in another.  Findings reuse the lint :class:`Finding`
shape and flow through the same ``# mal: disable=`` waiver machinery,
scoped so a lint-only run never judges flow waivers and vice versa.

Catalogue
---------
MAL010  unknown-method       call/cast targets a method no daemon (or
                             not the resolved destination) registers
MAL011  dead-handler         registered handler no site ever targets
                             (admin commands are exempt: the admin
                             surface reaches them out of band)
MAL012  silent-none-reply    call-mode handler has a path that neither
                             returns a value nor raises
MAL013  dropped-future       call() Future discarded without yield /
                             callback / timeout
MAL014  payload-mismatch     handler requires a payload key absent
                             from every call site, or a site passes a
                             key no handler reads
MAL015  cast-consumed-reply  cast to a method whose reply other sites
                             consume (cast replies are discarded)
MAL016  undocumented-admin   admin command missing from DESIGN.md
MAL017  unsanitized-mutation protocol-critical daemon state mutated
                             without the declared sanitizer hook
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.flow.extract import Extraction
from repro.analysis.flow.model import ANY_KIND, CallSite, Handler
from repro.analysis.linter import Finding

#: Codes this pass owns — the waiver sweep is scoped to these.
FLOW_CODES: Tuple[str, ...] = (
    "MAL010", "MAL011", "MAL012", "MAL013", "MAL014", "MAL015",
    "MAL016", "MAL017",
)

#: MAL017's contract: per daemon kind, the attribute roots that hold
#: protocol-critical state, which member calls mutate them (``"="``
#: covers direct attribute/subscript assignment under the root), and
#: the sanitizer plane whose hook must appear in the same function.
#: The osd replica apply path is deliberately absent: MAL-3 scenarios
#: assert on *primary-side* zlog observation only.
PROTECTED_SURFACES: Dict[str, Dict] = {
    "mon": {
        "plane": "paxos",
        "roots": {
            "chosen": {"learn", "take_ready", "="},
            "store": {"apply_batch", "restore"},
        },
    },
    "mds": {
        "plane": "caps",
        "roots": {
            "locker": {"try_grant", "release", "drop_ino",
                       "mark_revoking"},
        },
    },
}


def _finding(code: str, name: str, message: str, path: str,
             line: int) -> Finding:
    return Finding(code=code, name=name, message=message, path=path,
                   line=line)


# ----------------------------------------------------------------------
# Individual rules (each takes the extraction, returns raw findings)
# ----------------------------------------------------------------------
def _mal010_unknown_method(ex: Extraction) -> List[Finding]:
    out: List[Finding] = []
    graph = ex.graph
    for site in graph.sites:
        registered = graph.registered_kinds(site.method)
        if not registered:
            out.append(_finding(
                "MAL010", "unknown-method",
                f"{site.mode} targets '{site.method}' but no daemon "
                "kind registers that handler", site.path, site.line))
        elif site.dst_kind != ANY_KIND \
                and site.dst_kind not in registered:
            out.append(_finding(
                "MAL010", "unknown-method",
                f"{site.mode} sends '{site.method}' to kind "
                f"'{site.dst_kind}' (dst `{site.dst_text}`, resolved "
                f"via {site.resolution}) but only "
                f"{registered} register it", site.path, site.line))
    return out


def _mal011_dead_handler(ex: Extraction) -> List[Finding]:
    out: List[Finding] = []
    graph = ex.graph
    seen: Set[Tuple[str, int]] = set()
    for node in graph.kinds.values():
        for method, handler in node.handlers.items():
            if handler.is_admin:
                continue          # reachable through the admin surface
            if graph.sites_of(method):
                continue
            key = (handler.path, handler.line)
            if key in seen:
                continue          # mixin-registered: one report
            seen.add(key)
            out.append(_finding(
                "MAL011", "dead-handler",
                f"handler '{method}' ({handler.cls}.{handler.func}) "
                "is registered but no call/cast site targets it",
                handler.path, handler.line))
    return out


def _mal012_silent_none(ex: Extraction) -> List[Finding]:
    out: List[Finding] = []
    graph = ex.graph
    seen: Set[Tuple[str, int]] = set()
    for node in graph.kinds.values():
        for method, handler in node.handlers.items():
            if not any(s.mode == "call" for s in graph.sites_of(method)):
                continue          # never awaited: reply shape moot
            if handler.func in ("<lambda>", "<unknown>"):
                continue
            if handler.returns_value and handler.falls_through:
                key = (handler.path, handler.line)
                if key in seen:
                    continue
                seen.add(key)
                out.append(_finding(
                    "MAL012", "silent-none-reply",
                    f"call-mode handler '{method}' "
                    f"({handler.cls}.{handler.func}) has a path that "
                    "neither returns a value nor raises — callers "
                    "get a silent None reply", handler.path,
                    handler.line))
    return out


def _mal013_dropped_future(ex: Extraction) -> List[Finding]:
    out: List[Finding] = []
    for site in ex.graph.sites:
        if site.mode != "call":
            continue
        if site.consumes_reply or site.has_timeout:
            continue
        out.append(_finding(
            "MAL013", "dropped-future",
            f"Future from call('{site.method}') is dropped: not "
            "yielded, no done-callback, no timeout — failures "
            "vanish silently (use cast() for fire-and-forget)",
            site.path, site.line))
    return out


def _candidate_handlers(ex: Extraction,
                        site: CallSite) -> List[Handler]:
    graph = ex.graph
    if site.dst_kind != ANY_KIND:
        node = graph.kinds.get(site.dst_kind)
        if node and site.method in node.handlers:
            return [node.handlers[site.method]]
        return []
    return graph.handlers_of(site.method)


def _mal014_payload_mismatch(ex: Extraction) -> List[Finding]:
    out: List[Finding] = []
    graph = ex.graph
    # Direction 1: handler requires a key no site ever passes.  Only
    # judged when every site has a fully-known payload literal.
    seen: Set[Tuple[str, int, str]] = set()
    for node in graph.kinds.values():
        for method, handler in node.handlers.items():
            sites = graph.sites_of(method)
            if not sites or not handler.payload_keys:
                continue
            if any(s.payload_exhaustive is not True for s in sites):
                continue
            passed = {k for s in sites for k in s.payload_keys}
            for key in handler.payload_keys:
                if key in passed:
                    continue
                fkey = (handler.path, handler.line, key)
                if fkey in seen:
                    continue
                seen.add(fkey)
                out.append(_finding(
                    "MAL014", "payload-mismatch",
                    f"handler '{method}' ({handler.cls}."
                    f"{handler.func}) reads payload['{key}'] but no "
                    "call site passes that key", handler.path,
                    handler.line))
    # Direction 2: site passes a key no candidate handler reads.
    for site in graph.sites:
        if site.payload_exhaustive is not True or not site.payload_keys:
            continue
        handlers = _candidate_handlers(ex, site)
        if not handlers or any(h.payload_wholesale or
                               h.func == "<unknown>" for h in handlers):
            continue
        read = {k for h in handlers
                for k in (*h.payload_keys, *h.payload_optional_keys)}
        dead = sorted(set(site.payload_keys) - read)
        if dead:
            out.append(_finding(
                "MAL014", "payload-mismatch",
                f"{site.mode}('{site.method}') passes payload "
                f"key(s) {dead} that no handler for the method ever "
                "reads", site.path, site.line))
    return out


def _mal015_cast_consumed(ex: Extraction) -> List[Finding]:
    out: List[Finding] = []
    graph = ex.graph
    consumed = {s.method for s in graph.sites
                if s.mode == "call" and s.consumes_reply}
    for site in graph.sites:
        if site.mode == "cast" and site.method in consumed:
            out.append(_finding(
                "MAL015", "cast-consumed-reply",
                f"cast('{site.method}') discards the reply, but "
                "other sites call() this method and consume its "
                "return value — mixed call/cast traffic to a "
                "reply-bearing handler", site.path, site.line))
    return out


def _mal016_undocumented_admin(ex: Extraction,
                               design_text: Optional[str],
                               ) -> List[Finding]:
    if design_text is None:
        return []
    out: List[Finding] = []
    graph = ex.graph
    reported: Set[str] = set()
    for node in graph.kinds.values():
        for command in node.admin_commands:
            if command in reported or command in design_text:
                continue
            reported.add(command)
            handler = node.handlers.get(command)
            path = handler.path if handler else "<unknown>"
            line = handler.line if handler else 1
            out.append(_finding(
                "MAL016", "undocumented-admin",
                f"admin command '{command}' is registered but not "
                "documented in DESIGN.md (regenerate the inventory "
                "with `python -m repro.analysis flow --docs`)",
                path, line))
    return out


def _mal017_unsanitized_mutation(ex: Extraction) -> List[Finding]:
    out: List[Finding] = []
    for mut in ex.mutations:
        if mut.func == "__init__":
            continue              # construction, not protocol activity
        for kind in mut.kinds:
            surface = PROTECTED_SURFACES.get(kind)
            if surface is None:
                continue
            members = surface["roots"].get(mut.attr_root)
            if members is None or mut.member not in members:
                continue
            plane = surface["plane"]
            if plane in mut.planes_in_func:
                continue
            op = f"{mut.attr_root}.{mut.member}()" \
                if mut.member != "=" else f"{mut.attr_root}.<attr> ="
            out.append(_finding(
                "MAL017", "unsanitized-mutation",
                f"{mut.cls}.{mut.func} mutates protocol-critical "
                f"state ({op}) without a '{plane}' sanitizer "
                "observation in the same function — the runtime "
                f"{plane} checker cannot see this transition",
                mut.path, mut.line))
            break                 # one finding per mutation site
    return out


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def flow_findings(ex: Extraction,
                  design_text: Optional[str] = None) -> List[Finding]:
    """All raw MAL010-017 findings (pre-waiver), sorted."""
    findings: List[Finding] = []
    findings.extend(_mal010_unknown_method(ex))
    findings.extend(_mal011_dead_handler(ex))
    findings.extend(_mal012_silent_none(ex))
    findings.extend(_mal013_dropped_future(ex))
    findings.extend(_mal014_payload_mismatch(ex))
    findings.extend(_mal015_cast_consumed(ex))
    findings.extend(_mal016_undocumented_admin(ex, design_text))
    findings.extend(_mal017_unsanitized_mutation(ex))
    findings.sort(key=lambda f: (f.path, f.line, f.code, f.message))
    return findings
