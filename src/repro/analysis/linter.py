"""Static linter framework: findings, suppressions, rule driver.

The linter parses each file once, hands the AST to every registered
rule, then reconciles the raw findings against inline suppressions::

    risky_call()  # mal: disable=MAL001 -- replaying a recorded clock

A suppression comment on its own line covers the next source line.
Suppression hygiene is itself linted (MAL008): malformed comments,
unknown codes, and suppressions that no longer match a finding are all
reported, so waivers cannot rot silently.  MAL008 cannot be
suppressed.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Stable rule-code shape; codes outside this shape are malformed.
CODE_RE = re.compile(r"MAL\d{3}$")

#: Directive comments look like ``mal: disable=MAL001 -- reason``
#: (after the hash sign that makes them a comment).
_MAL_COMMENT = re.compile(r"#\s*mal:(?P<rest>.*)$")
_DISABLE = re.compile(
    r"^\s*disable=(?P<codes>[A-Za-z0-9,\s]+?)\s*(?:--\s*(?P<reason>.*))?$")

HYGIENE_CODE = "MAL008"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    name: str
    message: str
    path: str
    line: int
    col: int = 0

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.code} {self.message}")

    def to_dict(self) -> Dict[str, object]:
        return {"code": self.code, "name": self.name,
                "message": self.message, "path": self.path,
                "line": self.line, "col": self.col}


class FileContext:
    """Everything a rule may need about one parsed source file."""

    def __init__(self, path: Path, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        parts = path.parts
        #: Inside the shipped package (vs tests/benchmarks/examples)?
        self.in_src = "src" in parts
        #: The simulation kernel is the one place allowed to touch the
        #: host ``random`` module: it derives the seeded streams.
        self.in_kernel = path.name == "kernel.py" and "sim" in parts
        #: The message layer itself constructs Envelopes and delivers
        #: them; rules about bypassing it do not apply to it.
        self.in_msg_layer = ("msg" in parts) or ("sim" in parts)

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(code=rule.code, name=rule.name, message=message,
                       path=str(self.path),
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0))


class Rule:
    """Base class for lint rules.

    Subclasses set ``code``/``name``/``description`` and implement
    :meth:`check`.  ``scope`` limits where the rule runs: ``"all"``
    (default) or ``"src"`` for rules that only make sense inside the
    shipped package (tests legitimately reach into daemon internals).
    """

    code = "MAL000"
    name = "abstract"
    description = ""
    scope = "all"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError

    def applies(self, ctx: FileContext) -> bool:
        return self.scope == "all" or ctx.in_src


@dataclass
class _Suppression:
    codes: Tuple[str, ...]
    comment_line: int      # where the comment physically sits
    target_line: int       # the line whose findings it waives
    used: Set[str]


def _comments(source: str) -> List[Tuple[int, str, bool]]:
    """All comment tokens: (line, text, standalone?).

    Tokenizing (rather than regex over raw lines) keeps mal-comment
    examples inside string literals from being parsed as directives.
    """
    out: List[Tuple[int, str, bool]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                standalone = tok.start[1] == 0 or \
                    tok.line[:tok.start[1]].strip() == ""
                out.append((tok.start[0], tok.string, standalone))
    except (tokenize.TokenError, IndentationError):
        pass  # the ast parse already reported the file as broken
    return out


class _FileSuppressions:
    """Parsed ``# mal:`` comments for one file, plus hygiene findings."""

    def __init__(self, path: Path, lines: Sequence[str]):
        self.hygiene: List[Finding] = []
        self.by_line: Dict[int, List[_Suppression]] = {}
        for idx, text, standalone in _comments("\n".join(lines)):
            m = _MAL_COMMENT.search(text)
            if not m:
                continue
            d = _DISABLE.match(m.group("rest"))
            if not d:
                self._bad(path, idx, "malformed mal comment "
                          "(expected '# mal: disable=MALnnn -- reason')")
                continue
            codes = tuple(c.strip() for c in d.group("codes").split(",")
                          if c.strip())
            bad = [c for c in codes if not CODE_RE.match(c)]
            if bad or not codes:
                self._bad(path, idx,
                          f"unknown lint code(s) {bad or ['<none>']} "
                          "in suppression")
                continue
            if HYGIENE_CODE in codes:
                self._bad(path, idx,
                          f"{HYGIENE_CODE} (suppression hygiene) "
                          "cannot be suppressed")
                codes = tuple(c for c in codes if c != HYGIENE_CODE)
                if not codes:
                    continue
            # A trailing comment waives its own line; a standalone
            # comment waives the next code line (skipping the rest of
            # its own comment block).
            target = idx
            if standalone:
                target = idx + 1
                while target <= len(lines) and (
                        not lines[target - 1].strip()
                        or lines[target - 1].lstrip().startswith("#")):
                    target += 1
            sup = _Suppression(codes=codes, comment_line=idx,
                               target_line=target, used=set())
            self.by_line.setdefault(target, []).append(sup)

    def _bad(self, path: Path, line: int, message: str) -> None:
        self.hygiene.append(Finding(
            code=HYGIENE_CODE, name="suppression-hygiene",
            message=message, path=str(path), line=line))

    def filter(self, path: Path,
               findings: Iterable[Finding]) -> List[Finding]:
        kept: List[Finding] = []
        for f in findings:
            sups = self.by_line.get(f.line, [])
            waived = False
            for sup in sups:
                if f.code in sup.codes:
                    sup.used.add(f.code)
                    waived = True
            if not waived:
                kept.append(f)
        for sups in self.by_line.values():
            for sup in sups:
                for code in sup.codes:
                    if code not in sup.used:
                        self._bad(path, sup.comment_line,
                                  f"unused suppression of {code} "
                                  "(no such finding on the target line)")
        return kept


class Linter:
    """Drive a rule set over files and directories."""

    def __init__(self, rules: Sequence[Rule]):
        self.rules = list(rules)
        codes = [r.code for r in self.rules]
        assert len(set(codes)) == len(codes), "duplicate rule codes"

    # ------------------------------------------------------------------
    def lint_source(self, source: str,
                    path: str = "<string>") -> List[Finding]:
        """Lint one in-memory source blob (test fixtures use this)."""
        return self._lint_one(Path(path), source)

    def lint_paths(self, paths: Sequence[str]) -> List[Finding]:
        findings: List[Finding] = []
        for fp in self._expand(paths):
            try:
                source = fp.read_text()
            except (OSError, UnicodeDecodeError) as exc:
                findings.append(Finding(
                    code=HYGIENE_CODE, name="unreadable",
                    message=f"cannot read file: {exc}",
                    path=str(fp), line=1))
                continue
            findings.extend(self._lint_one(fp, source))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
        return findings

    # ------------------------------------------------------------------
    def _expand(self, paths: Sequence[str]) -> List[Path]:
        files: List[Path] = []
        for p in paths:
            path = Path(p)
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            elif path.suffix == ".py":
                files.append(path)
        return files

    def _lint_one(self, path: Path, source: str) -> List[Finding]:
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            return [Finding(code=HYGIENE_CODE, name="syntax-error",
                            message=f"cannot parse: {exc.msg}",
                            path=str(path), line=exc.lineno or 1)]
        ctx = FileContext(path, source, tree)
        raw: List[Finding] = []
        for rule in self.rules:
            if rule.applies(ctx):
                raw.extend(rule.check(ctx))
        sups = _FileSuppressions(path, ctx.lines)
        kept = sups.filter(path, raw)
        kept.extend(sups.hygiene)
        return kept


def render_human(findings: Sequence[Finding]) -> str:
    lines = [f.render() for f in findings]
    lines.append(f"{len(findings)} finding(s)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    return json.dumps([f.to_dict() for f in findings], indent=1,
                      sort_keys=True)
