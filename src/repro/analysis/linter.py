"""Static linter framework: findings, suppressions, rule driver.

The linter parses each file once (through the shared
:mod:`repro.analysis.astcache` plane, so a combined ``check`` run
shares the parse with the flow analyzer), hands the AST to every
registered rule, then reconciles the raw findings against inline
suppressions::

    risky_call()  # mal: disable=MAL001 -- replaying a recorded clock

A suppression comment on its own line covers the next source line.
Suppression hygiene is itself linted (MAL008): malformed comments,
unknown codes, and suppressions that no longer match a finding are all
reported, so waivers cannot rot silently.  MAL008 cannot be
suppressed.

The unused-waiver sweep runs unconditionally over every analyzed file
— not just files that produced findings — but is *scoped to the codes
the current pass actually checks*: a ``lint`` run never flags a waiver
of a flow code (MAL010+) as unused, and a ``flow`` run never flags a
lint waiver; a combined ``check`` run sweeps both.  Codes outside the
catalogue entirely are always malformed.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.astcache import DEFAULT_CACHE, SourceFile, expand_paths

#: Stable rule-code shape; codes outside this shape are malformed.
CODE_RE = re.compile(r"MAL\d{3}$")

#: The full MAL catalogue.  Codes are never reused; a suppression of a
#: code outside this tuple is malformed no matter which pass runs.
#: MAL001-008 are the file-local lint rules (plus framework hygiene),
#: MAL010-017 the whole-program message-flow rules.
KNOWN_CODES: Tuple[str, ...] = (
    "MAL001", "MAL002", "MAL003", "MAL004", "MAL005", "MAL006",
    "MAL007", "MAL008",
    "MAL010", "MAL011", "MAL012", "MAL013", "MAL014", "MAL015",
    "MAL016", "MAL017",
)

#: Directive comments look like ``mal: disable=MAL001 -- reason``
#: (after the hash sign that makes them a comment).
_MAL_COMMENT = re.compile(r"#\s*mal:(?P<rest>.*)$")
_DISABLE = re.compile(
    r"^\s*disable=(?P<codes>[A-Za-z0-9,\s]+?)\s*(?:--\s*(?P<reason>.*))?$")

HYGIENE_CODE = "MAL008"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    name: str
    message: str
    path: str
    line: int
    col: int = 0

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.code} {self.message}")

    def to_dict(self) -> Dict[str, object]:
        return {"code": self.code, "name": self.name,
                "message": self.message, "path": self.path,
                "line": self.line, "col": self.col}


class FileContext:
    """Everything a rule may need about one parsed source file."""

    def __init__(self, path: Path, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        parts = path.parts
        #: Inside the shipped package (vs tests/benchmarks/examples)?
        self.in_src = "src" in parts
        #: The simulation kernel is the one place allowed to touch the
        #: host ``random`` module: it derives the seeded streams.
        self.in_kernel = path.name == "kernel.py" and "sim" in parts
        #: The message layer itself constructs Envelopes and delivers
        #: them; rules about bypassing it do not apply to it.
        self.in_msg_layer = ("msg" in parts) or ("sim" in parts)

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(code=rule.code, name=rule.name, message=message,
                       path=str(self.path),
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0))


class Rule:
    """Base class for lint rules.

    Subclasses set ``code``/``name``/``description`` and implement
    :meth:`check`.  ``scope`` limits where the rule runs: ``"all"``
    (default) or ``"src"`` for rules that only make sense inside the
    shipped package (tests legitimately reach into daemon internals).
    """

    code = "MAL000"
    name = "abstract"
    description = ""
    scope = "all"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError

    def applies(self, ctx: FileContext) -> bool:
        return self.scope == "all" or ctx.in_src


@dataclass
class _Suppression:
    codes: Tuple[str, ...]
    comment_line: int      # where the comment physically sits
    target_line: int       # the line whose findings it waives
    used: Set[str]


def _comments(source: str) -> List[Tuple[int, str, bool]]:
    """All comment tokens: (line, text, standalone?).

    Tokenizing (rather than regex over raw lines) keeps mal-comment
    examples inside string literals from being parsed as directives.
    """
    out: List[Tuple[int, str, bool]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                standalone = tok.start[1] == 0 or \
                    tok.line[:tok.start[1]].strip() == ""
                out.append((tok.start[0], tok.string, standalone))
    except (tokenize.TokenError, IndentationError):
        pass  # the ast parse already reported the file as broken
    return out


class FileSuppressions:
    """Parsed ``# mal:`` comments for one file, plus hygiene findings.

    ``report_hygiene=False`` parses the waivers without re-reporting
    comment hygiene (malformed/unknown/non-suppressible): the flow
    pass filters its findings through the same waivers, but comment
    hygiene belongs to the lint pass so a combined run never reports
    it twice.
    """

    def __init__(self, path: Path, lines: Sequence[str],
                 report_hygiene: bool = True):
        self.hygiene: List[Finding] = []
        self.report_hygiene = report_hygiene
        self.by_line: Dict[int, List[_Suppression]] = {}
        for idx, text, standalone in _comments("\n".join(lines)):
            m = _MAL_COMMENT.search(text)
            if not m:
                continue
            d = _DISABLE.match(m.group("rest"))
            if not d:
                self._bad(path, idx, "malformed mal comment "
                          "(expected '# mal: disable=MALnnn -- reason')")
                continue
            codes = tuple(c.strip() for c in d.group("codes").split(",")
                          if c.strip())
            bad = [c for c in codes
                   if not CODE_RE.match(c) or c not in KNOWN_CODES]
            if bad or not codes:
                self._bad(path, idx,
                          f"unknown lint code(s) {bad or ['<none>']} "
                          "in suppression")
                codes = tuple(c for c in codes if c not in bad)
                if not codes:
                    continue
            if HYGIENE_CODE in codes:
                self._bad(path, idx,
                          f"{HYGIENE_CODE} (suppression hygiene) "
                          "cannot be suppressed")
                codes = tuple(c for c in codes if c != HYGIENE_CODE)
                if not codes:
                    continue
            # A trailing comment waives its own line; a standalone
            # comment waives the next code line (skipping the rest of
            # its own comment block).
            target = idx
            if standalone:
                target = idx + 1
                while target <= len(lines) and (
                        not lines[target - 1].strip()
                        or lines[target - 1].lstrip().startswith("#")):
                    target += 1
            sup = _Suppression(codes=codes, comment_line=idx,
                               target_line=target, used=set())
            self.by_line.setdefault(target, []).append(sup)

    def _bad(self, path: Path, line: int, message: str) -> None:
        if not self.report_hygiene:
            return
        self.hygiene.append(Finding(
            code=HYGIENE_CODE, name="suppression-hygiene",
            message=message, path=str(path), line=line))

    def filter(self, path: Path, findings: Iterable[Finding],
               active_codes: Optional[Set[str]] = None) -> List[Finding]:
        """Drop waived findings; flag unused waivers of active codes.

        ``active_codes`` names the codes the current pass actually
        checked on this file; a waiver of a code outside that set is
        simply not judged (another pass owns it).  ``None`` means all
        known codes are active (legacy single-pass behavior).
        """
        kept: List[Finding] = []
        for f in findings:
            sups = self.by_line.get(f.line, [])
            waived = False
            for sup in sups:
                if f.code in sup.codes:
                    sup.used.add(f.code)
                    waived = True
            if not waived:
                kept.append(f)
        for sups in self.by_line.values():
            for sup in sups:
                for code in sup.codes:
                    if code in sup.used:
                        continue
                    if active_codes is not None \
                            and code not in active_codes:
                        continue
                    self.hygiene.append(Finding(
                        code=HYGIENE_CODE, name="suppression-hygiene",
                        message=f"unused suppression of {code} "
                        "(no such finding on the target line)",
                        path=str(path), line=sup.comment_line))
        return kept


#: Backwards-compatible alias (pre-flow name).
_FileSuppressions = FileSuppressions


class Linter:
    """Drive a rule set over files and directories."""

    def __init__(self, rules: Sequence[Rule]):
        self.rules = list(rules)
        codes = [r.code for r in self.rules]
        assert len(set(codes)) == len(codes), "duplicate rule codes"
        unknown = [c for c in codes if c not in KNOWN_CODES]
        assert not unknown, f"rules outside the catalogue: {unknown}"

    # ------------------------------------------------------------------
    def lint_source(self, source: str,
                    path: str = "<string>") -> List[Finding]:
        """Lint one in-memory source blob (test fixtures use this)."""
        sf = SourceFile(path=Path(path), source=source,
                        lines=source.splitlines())
        try:
            sf.tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            sf.syntax_error = (exc.msg or "invalid syntax",
                               exc.lineno or 1)
        return self.lint_file(sf)

    def lint_paths(self, paths: Sequence[str],
                   jobs: int = 1) -> List[Finding]:
        if jobs > 1:
            findings = _lint_parallel(paths, jobs)
        else:
            findings = []
            for sf in DEFAULT_CACHE.files(paths):
                findings.extend(self.lint_file(sf))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
        return findings

    # ------------------------------------------------------------------
    def lint_file(self, sf: SourceFile) -> List[Finding]:
        if sf.read_error is not None:
            return [Finding(code=HYGIENE_CODE, name="unreadable",
                            message=f"cannot read file: {sf.read_error}",
                            path=str(sf.path), line=1)]
        if sf.syntax_error is not None:
            msg, line = sf.syntax_error
            return [Finding(code=HYGIENE_CODE, name="syntax-error",
                            message=f"cannot parse: {msg}",
                            path=str(sf.path), line=line)]
        ctx = FileContext(sf.path, sf.source, sf.tree)
        raw: List[Finding] = []
        active: Set[str] = {HYGIENE_CODE}
        for rule in self.rules:
            if rule.applies(ctx):
                active.add(rule.code)
                raw.extend(rule.check(ctx))
        sups = FileSuppressions(sf.path, ctx.lines)
        kept = sups.filter(sf.path, raw, active_codes=active)
        kept.extend(sups.hygiene)
        return kept


# ----------------------------------------------------------------------
# Parallel driver (``--jobs N``)
# ----------------------------------------------------------------------
_WORKER_LINTER: Optional[Linter] = None


def _init_worker(rules_factory: Callable[[], Sequence[Rule]]) -> None:
    global _WORKER_LINTER
    _WORKER_LINTER = Linter(rules_factory())


def _lint_one_path(path_str: str) -> List[Finding]:
    assert _WORKER_LINTER is not None
    from repro.analysis.astcache import parse_file

    return _WORKER_LINTER.lint_file(parse_file(Path(path_str)))


def _lint_parallel(paths: Sequence[str], jobs: int) -> List[Finding]:
    """Fan the per-file lint out over a process pool.

    Each worker parses and lints whole files, so the split is at file
    granularity and the merged result is byte-identical to a serial
    run after the final sort.  The workers rebuild the rule set from
    ``default_rules`` — per-file lint state never crosses files, so
    this is safe for any stateless rule catalogue.
    """
    import multiprocessing

    from repro.analysis.rules import default_rules

    files = [str(p) for p in expand_paths(paths)]
    if not files:
        return []
    findings: List[Finding] = []
    ctx = multiprocessing.get_context("fork") \
        if "fork" in multiprocessing.get_all_start_methods() \
        else multiprocessing.get_context()
    with ctx.Pool(processes=min(jobs, len(files)),
                  initializer=_init_worker,
                  initargs=(default_rules,)) as pool:
        for chunk in pool.map(_lint_one_path, files,
                              chunksize=max(1, len(files) // (jobs * 4))):
            findings.extend(chunk)
    return findings


def render_human(findings: Sequence[Finding]) -> str:
    lines = [f.render() for f in findings]
    lines.append(f"{len(findings)} finding(s)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    from repro.analysis.provenance import stamp

    doc = stamp({"findings": [f.to_dict() for f in findings]})
    return json.dumps(doc, indent=1, sort_keys=True)
