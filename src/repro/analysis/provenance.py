"""Provenance stamping for analysis artifacts.

Mirrors the ``benchmarks/bench_util.emit_json`` conventions (PR 6):
every machine-readable document the analysis tooling writes carries a
``schema_version`` and the ``git_sha`` it was produced at, so lint
reports and RPC-graph artifacts are comparable across PRs exactly like
benchmark baselines.  The code lives here (not in ``benchmarks/``)
because ``src/repro`` must stay importable without the benchmark tree
on ``sys.path``.
"""

from __future__ import annotations

import os
import subprocess
from typing import Any, Dict

#: Version of the analysis-JSON envelope (lint ``--json`` and the flow
#: graph emitters).  Bump when the meaning or layout of the stamped
#: fields changes, so the drift gate can refuse to compare
#: incomparable documents.
ANALYSIS_SCHEMA_VERSION = 1

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))))


def git_sha(cwd: str = _REPO_ROOT) -> str:
    """The repo HEAD commit, or ``"unknown"`` outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True,
            text=True, cwd=cwd, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


def stamp(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Return ``doc`` with the provenance fields stamped in front.

    The stamped fields sort first under ``sort_keys`` emission order is
    irrelevant; what matters is that every document carries them.
    """
    return {"schema_version": ANALYSIS_SCHEMA_VERSION,
            "git_sha": git_sha(), **doc}
