"""The MAL rule catalogue: determinism and protocol-shape lint rules.

Every rule guards one clause of the contracts in
``src/repro/sim/kernel.py`` (determinism) and ``src/repro/msg``
(message-passing isolation).  Codes are stable: tooling, suppressions,
and CHANGELOG entries refer to them, so codes are never reused.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.linter import FileContext, Finding, Rule

# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _walk_calls(root: ast.AST) -> Iterable[ast.Call]:
    for node in ast.walk(root):
        if isinstance(node, ast.Call):
            yield node


# ----------------------------------------------------------------------
# MAL001 — wall-clock use outside the kernel
# ----------------------------------------------------------------------
class WallClockRule(Rule):
    code = "MAL001"
    name = "wall-clock"
    description = ("Host wall-clock reads (time.*, datetime.now) outside "
                   "the simulation kernel break seeded replay; use "
                   "``sim.now``.")

    CLOCK_CALLS = {
        "time.time", "time.monotonic", "time.perf_counter",
        "time.process_time", "time.time_ns", "time.monotonic_ns",
        "time.perf_counter_ns", "time.process_time_ns",
        "datetime.now", "datetime.utcnow", "datetime.today",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "date.today", "datetime.date.today",
    }

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.in_kernel:
            return
        for call in _walk_calls(ctx.tree):
            dn = dotted_name(call.func)
            if dn in self.CLOCK_CALLS:
                yield ctx.finding(
                    self, call,
                    f"wall-clock call {dn}() breaks deterministic "
                    "replay; use the simulated clock (sim.now)")


# ----------------------------------------------------------------------
# MAL002 — host RNG use outside the kernel
# ----------------------------------------------------------------------
class HostRandomRule(Rule):
    code = "MAL002"
    name = "host-random"
    description = ("Calls into the host ``random``/``numpy.random`` "
                   "modules bypass the seeded per-stream RNGs; use "
                   "``Simulator.rng(stream)``.")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.in_kernel:
            return
        for call in _walk_calls(ctx.tree):
            dn = dotted_name(call.func)
            if dn is None:
                continue
            head = dn.split(".")
            if head[0] == "random" and len(head) > 1:
                yield ctx.finding(
                    self, call,
                    f"host RNG call {dn}() is not derived from the "
                    "simulation seed; route through "
                    "Simulator.rng(stream)")
            elif (head[0] in ("numpy", "np") and len(head) > 2
                    and head[1] == "random"):
                yield ctx.finding(
                    self, call,
                    f"numpy RNG call {dn}() is not derived from the "
                    "simulation seed; seed an explicit Generator from "
                    "Simulator.rng(stream)")


# ----------------------------------------------------------------------
# MAL003 — bypassing the message layer
# ----------------------------------------------------------------------
class MessageLayerBypassRule(Rule):
    code = "MAL003"
    name = "message-layer-bypass"
    description = ("Daemons communicate only via call/cast envelopes; "
                   "direct ``.deliver()`` or reaching into another "
                   "daemon's dispatch internals bypasses latency, "
                   "tracing, and failure injection.")
    scope = "src"

    PRIVATE_INTERNALS = {"_handlers", "_pending", "_admin_commands",
                         "_trace_ctx"}

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.in_msg_layer:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                if (isinstance(node.func, ast.Attribute)
                        and node.func.attr == "deliver"):
                    yield ctx.finding(
                        self, node,
                        "direct .deliver() bypasses the network's "
                        "latency model; send via call/cast")
            elif isinstance(node, ast.Attribute):
                if (node.attr in self.PRIVATE_INTERNALS
                        and not (isinstance(node.value, ast.Name)
                                 and node.value.id == "self")):
                    yield ctx.finding(
                        self, node,
                        f"access to another daemon's {node.attr} "
                        "bypasses the message layer")


# ----------------------------------------------------------------------
# MAL004 — overbroad exception handlers
# ----------------------------------------------------------------------
class BroadExceptRule(Rule):
    code = "MAL004"
    name = "broad-except"
    description = ("``except Exception`` (or bare ``except``) swallows "
                   "typed repro.errors failures; catch the specific "
                   "MalacologyError subclasses, or use "
                   "errors.sandbox_guard at sandbox boundaries.")

    BROAD = {"Exception", "BaseException"}

    def _broad_name(self, node: Optional[ast.expr]) -> Optional[str]:
        if node is None:
            return "<bare>"
        if isinstance(node, ast.Name) and node.id in self.BROAD:
            return node.id
        if isinstance(node, ast.Tuple):
            for elt in node.elts:
                hit = self._broad_name(elt)
                if hit and hit != "<bare>":
                    return hit
        return None

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            hit = self._broad_name(node.type)
            if hit == "<bare>":
                yield ctx.finding(
                    self, node,
                    "bare except swallows repro.errors types; catch "
                    "specific exceptions")
            elif hit:
                yield ctx.finding(
                    self, node,
                    f"except {hit} swallows repro.errors types; catch "
                    "specific MalacologyError subclasses")


# ----------------------------------------------------------------------
# MAL005 — unordered set iteration feeding scheduling decisions
# ----------------------------------------------------------------------
class UnorderedIterationRule(Rule):
    code = "MAL005"
    name = "unordered-iteration"
    description = ("Iterating a set while sending messages or "
                   "scheduling work makes the event order depend on "
                   "hash seeds; wrap the set in sorted().")

    SET_ANNOTATIONS = {"Set", "FrozenSet", "AbstractSet", "MutableSet",
                       "set", "frozenset"}
    SET_METHODS = {"intersection", "union", "difference",
                   "symmetric_difference"}
    EFFECTS = {"cast", "call", "broadcast", "spawn", "schedule", "send",
               "choice", "sample", "shuffle", "uniform", "randint"}

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(ctx, node)

    def _check_scope(self, ctx: FileContext,
                     fn: ast.AST) -> Iterable[Finding]:
        set_names = self._collect_set_names(fn)
        for node in ast.walk(fn):
            if not isinstance(node, ast.For):
                continue
            if not self._is_setlike(node.iter, set_names):
                continue
            if self._has_effects(node.body):
                yield ctx.finding(
                    self, node.iter,
                    "iteration over an unordered set drives "
                    "messages/scheduling; the event order then depends "
                    "on the hash seed — wrap in sorted()")

    # -- helpers -------------------------------------------------------
    def _collect_set_names(self, fn: ast.AST) -> Set[str]:
        names: Set[str] = set()
        args = getattr(fn, "args", None)
        if args is not None:
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                if self._is_set_annotation(arg.annotation):
                    names.add(arg.arg)
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                if self._is_setlike(node.value, names):
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Name):
                            names.add(tgt.id)
            elif isinstance(node, ast.AnnAssign):
                if (isinstance(node.target, ast.Name)
                        and self._is_set_annotation(node.annotation)):
                    names.add(node.target.id)
        return names

    def _is_set_annotation(self, ann: Optional[ast.expr]) -> bool:
        if ann is None:
            return False
        if isinstance(ann, ast.Subscript):
            ann = ann.value
        if isinstance(ann, ast.Attribute):
            return ann.attr in self.SET_ANNOTATIONS
        return (isinstance(ann, ast.Name)
                and ann.id in self.SET_ANNOTATIONS)

    def _is_setlike(self, node: ast.expr, names: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in names
        if isinstance(node, ast.Call):
            if (isinstance(node.func, ast.Name)
                    and node.func.id in ("set", "frozenset")):
                return True
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in self.SET_METHODS
                    and self._is_setlike(node.func.value, names)):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitAnd, ast.BitOr, ast.BitXor)):
            return (self._is_setlike(node.left, names)
                    or self._is_setlike(node.right, names))
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub):
            # ``a - b`` is set difference only if a side is provably
            # a set; plain numeric subtraction must not flag.
            return (self._is_setlike(node.left, names)
                    or self._is_setlike(node.right, names))
        return False

    def _has_effects(self, body: List[ast.stmt]) -> bool:
        for stmt in body:
            for call in _walk_calls(stmt):
                func = call.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in self.EFFECTS):
                    return True
        return False


# ----------------------------------------------------------------------
# MAL006 — mutable default arguments
# ----------------------------------------------------------------------
class MutableDefaultRule(Rule):
    code = "MAL006"
    name = "mutable-default"
    description = ("A mutable default argument is shared across every "
                   "call — daemon state leaks between instances; "
                   "default to None.")

    MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict",
                     "Counter", "deque"}

    def _is_mutable(self, node: Optional[ast.expr]) -> bool:
        if node is None:
            return False
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, ast.Call):
            dn = dotted_name(node.func)
            return bool(dn) and dn.split(".")[-1] in self.MUTABLE_CALLS
        return False

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            defaults = [*node.args.defaults, *node.args.kw_defaults]
            for default in defaults:
                if self._is_mutable(default):
                    yield ctx.finding(
                        self, default,
                        f"mutable default argument in {node.name}() is "
                        "shared across calls; use None and build "
                        "inside the body")


# ----------------------------------------------------------------------
# MAL007 — Envelope built without trace propagation
# ----------------------------------------------------------------------
class EnvelopeTraceRule(Rule):
    code = "MAL007"
    name = "envelope-trace"
    description = ("Envelopes constructed outside repro.msg must carry "
                   "trace= so causality survives the hop; prefer "
                   "Daemon.call/cast which stamp it automatically.")
    scope = "src"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.in_msg_layer:
            return
        for call in _walk_calls(ctx.tree):
            dn = dotted_name(call.func)
            if dn is None or dn.split(".")[-1] != "Envelope":
                continue
            if not any(kw.arg == "trace" for kw in call.keywords):
                yield ctx.finding(
                    self, call,
                    "Envelope constructed without trace=; the RPC "
                    "trace breaks at this hop — use Daemon.call/cast "
                    "or pass trace= explicitly")


def default_rules() -> List[Rule]:
    """The full MAL catalogue (MAL008 lives in the framework)."""
    return [
        WallClockRule(),
        HostRandomRule(),
        MessageLayerBypassRule(),
        BroadExceptRule(),
        UnorderedIterationRule(),
        MutableDefaultRule(),
        EnvelopeTraceRule(),
    ]
