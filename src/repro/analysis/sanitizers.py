"""Runtime protocol sanitizers (TSan-style, opt-in).

Passive observers of the protocol invariants the paper takes for
granted: Paxos agreement (§4.1), exclusive capability leases (§4.3.1),
ZLog epoch fencing (§4.4), and single-owner subtree migration.  The
daemons call tiny hook methods at the same places their telemetry
counters already tick; each hook only reads state and appends to
plain lists/dicts — no RNG draws, no scheduling, no messages — so a
sanitized run's event schedule is byte-identical to an unsanitized
one.

Enable per cluster with ``MalacologyCluster.build(sanitize=True)`` or
globally with the ``MALACOLOGY_SANITIZE=1`` environment variable
(checked by :class:`repro.sim.kernel.Simulator`).

A violated invariant raises :class:`ProtocolViolation` — deliberately
an ``AssertionError`` subclass, *not* a ``MalacologyError``: the RPC
layer converts ``MalacologyError`` into polite error replies, but a
protocol violation is a bug in the storage system itself and must
crash the run loudly, carrying the causal RPC trace of the offending
message.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Optional, Tuple

#: Registries installed this process, newest last.  The pytest
#: sanitizer fixture snapshots this to assert zero violations for
#: every cluster a test built.
ACTIVE: List["SanitizerRegistry"] = []


class ProtocolViolation(AssertionError):
    """A protocol invariant was broken; carries the causal trace."""

    def __init__(self, sanitizer: str, invariant: str, message: str,
                 time: float, trace_id: Optional[int] = None,
                 trace: Optional[str] = None):
        self.sanitizer = sanitizer
        self.invariant = invariant
        self.message = message
        self.time = time
        self.trace_id = trace_id
        self.trace = trace
        text = (f"[{sanitizer}] {invariant} violated at t={time:.6f}: "
                f"{message}")
        if trace:
            text += f"\ncausal trace (id={trace_id}):\n{trace}"
        super().__init__(text)

    def to_dict(self) -> Dict[str, Any]:
        return {"sanitizer": self.sanitizer, "invariant": self.invariant,
                "message": self.message, "time": self.time,
                "trace_id": self.trace_id, "trace": self.trace}


class SanitizerRegistry:
    """All four sanitizers plus shared violation reporting."""

    def __init__(self, sim: Any, raise_on_violation: bool = True):
        self.sim = sim
        self.raise_on_violation = raise_on_violation
        self.violations: List[ProtocolViolation] = []
        self.paxos = PaxosSanitizer(self)
        self.caps = CapabilitySanitizer(self)
        self.zlog = ZLogEpochSanitizer(self)
        self.migration = MigrationSanitizer(self)

    # ------------------------------------------------------------------
    def report(self, sanitizer: str, invariant: str, message: str,
               daemon: Any = None) -> None:
        trace_id: Optional[int] = None
        rendered: Optional[str] = None
        ctx = getattr(daemon, "trace_context", None)
        if ctx is not None:
            trace_id = ctx.trace_id
            collector = getattr(self.sim, "trace_collector", None)
            if collector is not None:
                rendered = collector.render(trace_id)
        violation = ProtocolViolation(
            sanitizer=sanitizer, invariant=invariant, message=message,
            time=self.sim.now, trace_id=trace_id, trace=rendered)
        self.violations.append(violation)
        if self.raise_on_violation:
            raise violation

    def on_daemon_reset(self, daemon_name: str) -> None:
        """A daemon crashed: its volatile protocol state is gone."""
        self.paxos.on_daemon_reset(daemon_name)
        self.caps.on_daemon_reset(daemon_name)

    def finish(self) -> List[ProtocolViolation]:
        """End-of-run liveness checks; returns all violations."""
        self.caps.check_deadlines(final=True)
        return self.violations

    def to_dict(self) -> List[Dict[str, Any]]:
        return [v.to_dict() for v in self.violations]


class PaxosSanitizer:
    """§4.1: one value chosen per instance; map epochs never regress."""

    def __init__(self, registry: SanitizerRegistry):
        self.registry = registry
        #: instance -> (value, first monitor that learned it)
        self._chosen: Dict[int, Tuple[Any, str]] = {}
        #: (monitor, map kind) -> highest epoch applied
        self._epochs: Dict[Tuple[str, str], int] = {}

    def on_learn(self, mon: str, instance: int, value: Any,
                 daemon: Any = None) -> None:
        prior = self._chosen.get(instance)
        if prior is None:
            # Snapshot: the store mutates applied batches in place
            # (e.g. vetting guards stamp txns), so holding a live
            # reference would later compare a *mutated* value.
            self._chosen[instance] = (copy.deepcopy(value), mon)
        elif prior[0] != value:
            self.registry.report(
                "paxos", "one-value-per-instance",
                f"instance {instance}: {mon} is learning a value that "
                f"differs from the one {prior[1]} already chose "
                f"(chosen={prior[0]!r}, learning={value!r})",
                daemon=daemon)

    def on_epoch(self, mon: str, kind: str, epoch: int,
                 daemon: Any = None) -> None:
        key = (mon, kind)
        last = self._epochs.get(key)
        if last is not None and epoch < last:
            self.registry.report(
                "paxos", "monotone-epochs",
                f"{mon} applied {kind} map epoch {epoch} after "
                f"already serving epoch {last}", daemon=daemon)
        if last is None or epoch > last:
            self._epochs[key] = epoch

    def on_daemon_reset(self, daemon_name: str) -> None:
        # A restarted monitor resyncs from its peers; its per-daemon
        # epoch watermark starts over (global agreement state stays).
        for key in [k for k in self._epochs if k[0] == daemon_name]:
            del self._epochs[key]


class CapabilitySanitizer:
    """§4.3.1: exclusive caps never overlap; revokes complete."""

    #: A revoke outstanding this long is stuck: the MDS force-releases
    #: at CAP_REVOKE_TIMEOUT (2 s), so 10 s means that path broke.
    REVOKE_DEADLINE = 10.0

    def __init__(self, registry: SanitizerRegistry):
        self.registry = registry
        #: ino -> (mds, client, seq) of the recorded exclusive holder
        self._holders: Dict[int, Tuple[str, str, int]] = {}
        #: ino -> (revoke start time, mds)
        self._revokes: Dict[int, Tuple[float, str]] = {}

    def on_grant(self, mds: str, ino: int, client: str, seq: int,
                 daemon: Any = None) -> None:
        self.check_deadlines(daemon=daemon)
        held = self._holders.get(ino)
        if held is not None and held[1] != client:
            self.registry.report(
                "caps", "exclusive-holder",
                f"{mds} granted an exclusive cap on ino {ino} to "
                f"{client} while {held[1]} still holds seq {held[2]} "
                f"(granted by {held[0]})", daemon=daemon)
            return
        self._holders[ino] = (mds, client, seq)

    def on_release(self, mds: str, ino: int, client: str,
                   daemon: Any = None) -> None:
        held = self._holders.get(ino)
        if held is not None and held[1] == client:
            del self._holders[ino]
        self._revokes.pop(ino, None)

    def on_revoke_start(self, mds: str, ino: int,
                        daemon: Any = None) -> None:
        self._revokes.setdefault(ino, (self.registry.sim.now, mds))

    def on_drop(self, ino: int, daemon: Any = None) -> None:
        self._holders.pop(ino, None)
        self._revokes.pop(ino, None)

    def on_daemon_reset(self, daemon_name: str) -> None:
        # A crashed MDS loses its Locker: every lease it issued died
        # with it (clients re-acquire after failover).
        for ino in [i for i, h in self._holders.items()
                    if h[0] == daemon_name]:
            del self._holders[ino]
        for ino in [i for i, r in self._revokes.items()
                    if r[1] == daemon_name]:
            del self._revokes[ino]

    def check_deadlines(self, daemon: Any = None,
                        final: bool = False) -> None:
        now = self.registry.sim.now
        for ino, (start, mds) in list(self._revokes.items()):
            if now - start > self.REVOKE_DEADLINE:
                del self._revokes[ino]
                self.registry.report(
                    "caps", "revoke-completes",
                    f"revoke of ino {ino} on {mds} started at "
                    f"t={start:.6f} never completed "
                    f"({now - start:.1f}s > {self.REVOKE_DEADLINE}s)",
                    daemon=daemon)


class ZLogEpochSanitizer:
    """§4.4: no append/fill/trim accepted below a newer-epoch seal."""

    def __init__(self, registry: SanitizerRegistry):
        self.registry = registry
        #: (pool, oid) -> highest sealed epoch
        self._sealed: Dict[Tuple[str, str], int] = {}

    def observe_ops(self, pool: str, oid: str, ops: List[Dict[str, Any]],
                    daemon: Any = None) -> None:
        """Called by the primary OSD after a transaction *succeeded*.

        Only accepted ops are observed, so a correctly rejected stale
        write (StaleEpoch raised by cls_zlog) never reaches us — a
        violation means the epoch guard itself failed.
        """
        for op in ops:
            if op.get("op") != "exec" or op.get("cls") != "zlog":
                continue
            method = op.get("method")
            epoch = (op.get("args") or {}).get("epoch")
            if epoch is None:
                continue
            key = (pool, oid)
            sealed = self._sealed.get(key)
            if method == "seal":
                if sealed is None or epoch > sealed:
                    self._sealed[key] = epoch
            elif method in ("write", "fill", "trim"):
                if sealed is not None and epoch < sealed:
                    self.registry.report(
                        "zlog", "epoch-fencing",
                        f"{daemon.name if daemon else 'osd'} accepted "
                        f"zlog.{method} on {pool}/{oid} with stale "
                        f"epoch {epoch} after seal at epoch {sealed}",
                        daemon=daemon)


class MigrationSanitizer:
    """One MDS owns a subtree at a time, even mid-migration."""

    def __init__(self, registry: SanitizerRegistry):
        self.registry = registry
        #: frozen subtree path -> (source rank, target rank)
        self._active: Dict[str, Tuple[int, int]] = {}

    @staticmethod
    def _overlaps(a: str, b: str) -> bool:
        return a == b or a.startswith(b.rstrip("/") + "/") \
            or b.startswith(a.rstrip("/") + "/")

    def on_export_begin(self, path: str, src_rank: int, dst_rank: int,
                        daemon: Any = None) -> None:
        for other, (o_src, o_dst) in self._active.items():
            if self._overlaps(path, other):
                self.registry.report(
                    "migration", "single-owner",
                    f"export of {path} (rank {src_rank} -> {dst_rank}) "
                    f"overlaps in-flight migration of {other} "
                    f"(rank {o_src} -> {o_dst})", daemon=daemon)
                return
        self._active[path] = (src_rank, dst_rank)

    def on_import(self, path: str, rank: int, daemon: Any = None) -> None:
        active = self._active.get(path)
        if active is None:
            self.registry.report(
                "migration", "single-owner",
                f"rank {rank} imported subtree {path} with no active "
                "export — two MDSs would own it", daemon=daemon)
        elif active[1] != rank:
            self.registry.report(
                "migration", "single-owner",
                f"subtree {path} was being exported to rank "
                f"{active[1]} but rank {rank} imported it",
                daemon=daemon)

    def on_export_end(self, path: str, daemon: Any = None) -> None:
        self._active.pop(path, None)


# ----------------------------------------------------------------------
# Installation
# ----------------------------------------------------------------------
def install_sanitizers(sim: Any) -> SanitizerRegistry:
    """Attach a registry to ``sim`` (idempotent)."""
    existing = getattr(sim, "sanitizers", None)
    if existing is not None:
        return existing
    registry = SanitizerRegistry(sim)
    sim.sanitizers = registry
    ACTIVE.append(registry)
    return registry


def sanitizers_of(sim: Any) -> Optional[SanitizerRegistry]:
    """The registry attached to ``sim``, or None when not sanitizing."""
    return getattr(sim, "sanitizers", None)
