"""Distributed changelog & audit subsystem (ROADMAP item 4).

Built Malacology-style from the paper's reusable interfaces: shard
objects programmed by the bundled ``cls_changelog`` object class
(Data I/O), consumers woken by watch/notify with polling fallback
(Service Metadata-style pub/sub), durable cursors in shard omaps, and
mgr health/metrics on top.  See DESIGN.md for the full contract.
"""

from repro.changelog.audit import AuditPipeline
from repro.changelog.consumer import ChangelogConsumer
from repro.changelog.cursor import DurableCursor
from repro.changelog.records import KINDS, ChangelogProducer, tenant_of
from repro.changelog.shards import CHANGELOG_POOL, ChangelogLayout
from repro.changelog.writer import ChangelogWriter

__all__ = [
    "AuditPipeline",
    "ChangelogConsumer",
    "ChangelogLayout",
    "ChangelogProducer",
    "ChangelogWriter",
    "CHANGELOG_POOL",
    "DurableCursor",
    "KINDS",
    "tenant_of",
]
