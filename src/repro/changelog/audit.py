"""Audit pipeline: a changelog consumer that materializes audit views.

The Lustre auditing papers' pattern: the raw changelog is the durable
record; an audit consumer folds it into per-actor and per-tenant
activity summaries that administration tooling (here: the mgr) reads.
The fold state is volatile — on crash the pipeline resumes from its
durable cursor, which by at-least-once delivery replays only the
unacked tail; the authoritative history stays in the shards until
every cursor (including this one) has acked past it.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.changelog.consumer import ChangelogConsumer


class AuditPipeline(ChangelogConsumer):
    """Folds changelog records into per-actor / per-tenant summaries."""

    CURSOR_NAME = "audit"

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.total = 0
        #: actor -> kind -> count.
        self.by_actor: Dict[str, Dict[str, int]] = {}
        #: tenant (first path component) -> kind -> count.
        self.by_tenant: Dict[str, Dict[str, int]] = {}
        self.perf.gauge_fn("audit.records", lambda: float(self.total))
        self.register_admin_command("audit.summary",
                                    lambda args: self.summary())

    def handle_records(self, shard: int,
                       entries: List[Dict[str, Any]]) -> None:
        super().handle_records(shard, entries)
        for rec in entries:
            self.total += 1
            kind = rec["kind"]
            actor = rec.get("actor") or "unknown"
            self.by_actor.setdefault(actor, {})
            self.by_actor[actor][kind] = \
                self.by_actor[actor].get(kind, 0) + 1
            tenant = rec.get("tenant")
            if tenant is not None:
                self.by_tenant.setdefault(tenant, {})
                self.by_tenant[tenant][kind] = \
                    self.by_tenant[tenant].get(kind, 0) + 1

    def summary(self) -> Dict[str, Any]:
        return {
            "time": self.sim.now,
            "cursor": self.cursor_name,
            "records": self.total,
            "by_actor": {a: dict(sorted(k.items()))
                         for a, k in sorted(self.by_actor.items())},
            "by_tenant": {t: dict(sorted(k.items()))
                          for t, k in sorted(self.by_tenant.items())},
        }

    def on_crash(self) -> None:
        super().on_crash()
        # Aggregates are derived state: rebuilt from the unacked tail
        # on restart (acked history is gone once trimmed — the audit
        # *summaries* are a view, the changelog itself is the record).
        self.total = 0
        self.by_actor = {}
        self.by_tenant = {}
