"""Tailing consumer: watch/notify wakeups with a polling fallback.

A consumer registers a durable named cursor on every shard (so trim
waits for it), watches each shard object, and tails new records on
notify.  A slow poll ticker covers lost wakeups — after an OSD
failover drops a notify, the next poll tick catches the consumer up
and the auto-re-watch guard in :class:`~repro.rados.client.RadosClient`
restores push delivery.

Delivery is **at-least-once**: the cursor advances *after*
``handle_records`` runs, so a consumer that crashes mid-batch re-reads
that batch from its durable cursor on restart.  Subclasses override
``handle_records``; aggregation state is volatile (see ``audit.py``).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from repro.changelog.cursor import DurableCursor
from repro.changelog.shards import ChangelogLayout
from repro.errors import MalacologyError
from repro.msg import Daemon
from repro.rados.client import RadosClient
from repro.sim.event import Timeout
from repro.sim.kernel import Simulator
from repro.sim.network import FixedLatency, Network


class ChangelogConsumer(Daemon, RadosClient):
    """Tails the changelog from a durable named cursor."""

    CHANGELOG_LATENCY = 100e-6
    POLL_INTERVAL = 1.0
    BATCH = 100
    #: Override in subclasses (or pass cursor_name) for a stable
    #: durable identity.
    CURSOR_NAME = "tail"

    def __init__(self, sim: Simulator, network: Network, name: str,
                 mon_names: List[str],
                 layout: Optional[ChangelogLayout] = None,
                 cursor_name: Optional[str] = None):
        super().__init__(sim, network, name)
        network.set_latency_override(
            name, FixedLatency(self.CHANGELOG_LATENCY))
        self.init_mon_client(mon_names)
        self.init_watch_client()
        self.layout = layout or ChangelogLayout()
        self.cursor_name = cursor_name or self.CURSOR_NAME
        self.cursor = DurableCursor(self.cursor_name, self.layout)
        self.booted = False
        self.paused = False
        #: shards with a tail process in flight (dedups wakeups).
        self._tailing: set = set()
        #: records seen by the default handler, in consumption order.
        self.received: List[Dict[str, Any]] = []
        self.register_admin_command(
            "changelog.position",
            lambda args: {"cursor": self.cursor_name,
                          "positions": self.cursor.to_dict()})
        self.spawn(self._boot(), name=f"{self.name}:boot")

    # ------------------------------------------------------------------
    # Boot
    # ------------------------------------------------------------------
    def _boot(self) -> Generator:
        yield from self.mon_subscribe(["osd"])
        osdmap = yield from self.mon_get_map("osd")
        while self.layout.pool not in osdmap.pools:
            # The writer (or cluster bringup) creates the pool; wait.
            yield Timeout(0.25)
            osdmap = yield from self.mon_get_map("osd")
        yield from self.cursor.load(self)
        for shard in range(self.layout.width):
            yield from self.rados_watch(
                self.layout.pool, self.layout.object_of(shard),
                self._on_notify)
        self.every(self.POLL_INTERVAL, self._poll_tick,
                   name=f"{self.name}:poll")
        self.booted = True
        for shard in range(self.layout.width):
            self._kick(shard)

    # ------------------------------------------------------------------
    # Wakeups
    # ------------------------------------------------------------------
    def _on_notify(self, pool: str, oid: str, payload: Any,
                   notifier: str) -> None:
        if isinstance(payload, dict) and "shard" in payload:
            self._kick(payload["shard"])

    def _poll_tick(self) -> None:
        # Fallback sweep: catches notifies lost to failover races.
        for shard in range(self.layout.width):
            self._kick(shard)

    def _kick(self, shard: int) -> None:
        if not self.booted or self.paused or shard in self._tailing:
            return
        self._tailing.add(shard)
        self.spawn(self._tail(shard),
                   name=f"{self.name}:tail{shard}")

    # ------------------------------------------------------------------
    # Tail loop
    # ------------------------------------------------------------------
    def _tail(self, shard: int) -> Generator:
        try:
            while not self.paused:
                try:
                    out = yield from self.rados_exec(
                        self.layout.pool, self.layout.object_of(shard),
                        "changelog", "list",
                        {"from_seq": self.cursor.get(shard),
                         "max": self.BATCH})
                except MalacologyError:
                    # Shard unreachable right now; the poll ticker
                    # retries after the client re-routes.
                    self.perf.incr("changelog.tail.error")
                    return
                entries = out["entries"]
                if not entries:
                    return
                self.handle_records(shard, entries)
                # Ack after handling: at-least-once delivery.
                yield from self.cursor.ack(self, shard,
                                           entries[-1]["seq"])
        finally:
            self._tailing.discard(shard)

    def handle_records(self, shard: int,
                       entries: List[Dict[str, Any]]) -> None:
        """Default handler: collect and measure visibility latency."""
        for rec in entries:
            self.received.append(rec)
            self.perf.incr("changelog.consumed")
            self.perf.time("changelog.visibility",
                           self.sim.now - rec["time"], retain=True)

    # ------------------------------------------------------------------
    # Test hooks: a paused consumer stops acking and builds lag
    # ------------------------------------------------------------------
    def pause(self) -> None:
        self.paused = True

    def resume(self) -> None:
        self.paused = False
        for shard in range(self.layout.width):
            self._kick(shard)

    # ------------------------------------------------------------------
    # Crash / restart
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        super().on_crash()
        self.booted = False
        self.paused = False
        self._tailing = set()
        self.received = []
        # Watch sessions and their guard ticker died with the daemon.
        self.init_watch_client()
        # In-memory positions die with the daemon; the durable cursor
        # in the shard omaps is the recovery point.
        self.cursor = DurableCursor(self.cursor_name, self.layout)

    def on_restart(self) -> None:
        self.spawn(self._boot(), name=f"{self.name}:reboot")
