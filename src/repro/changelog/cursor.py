"""Durable named cursors: a consumer's acknowledged position per shard.

The authoritative state lives in each shard object's omap (written via
``cls_changelog.cursor_set``); this module is the thin client-side
view a consumer keeps in memory while tailing.  Positions are "last
sequence number acknowledged" — ``-1`` means registered but nothing
consumed yet, which still pins ``trim`` (registration is what makes
history wait for you).
"""

from __future__ import annotations

from typing import Any, Dict, Generator

from repro.changelog.shards import ChangelogLayout


class DurableCursor:
    """Client-side mirror of one named cursor across all shards."""

    def __init__(self, name: str, layout: ChangelogLayout):
        self.name = name
        self.layout = layout
        #: shard index -> last acked seq (-1 = registered, none acked).
        self.positions: Dict[int, int] = {}

    def load(self, client: Any) -> Generator:
        """Fetch (and register, if absent) the cursor on every shard.

        Registering at -1 on first contact makes ``trim`` wait for this
        consumer from the very first record.
        """
        for shard in range(self.layout.width):
            obj = self.layout.object_of(shard)
            out = yield from client.rados_exec(
                self.layout.pool, obj, "changelog", "cursor_get",
                {"name": self.name})
            if out["seq"] < 0:
                out = yield from client.rados_exec(
                    self.layout.pool, obj, "changelog", "cursor_set",
                    {"name": self.name, "seq": -1})
            self.positions[shard] = out["seq"]

    def get(self, shard: int) -> int:
        return self.positions.get(shard, -1)

    def ack(self, client: Any, shard: int, seq: int) -> Generator:
        """Persist consumption through ``seq`` on one shard."""
        out = yield from client.rados_exec(
            self.layout.pool, self.layout.object_of(shard),
            "changelog", "cursor_set",
            {"name": self.name, "seq": seq})
        self.positions[shard] = out["seq"]

    def to_dict(self) -> Dict[str, int]:
        return {str(s): q for s, q in sorted(self.positions.items())}
