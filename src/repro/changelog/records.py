"""Typed changelog records and the in-daemon producer shim.

A record is a plain dict so it can cross the message layer and the
object store unchanged::

    {"kind": "rename", "actor": "client3", "path": "/a/x",
     "tenant": "a", "time": 12.5, "producer": "mds0#1", "pseq": 7,
     ...kind-specific details...}

``producer`` identifies one *incarnation* of one emitting daemon and
``pseq`` is its private monotone counter; together they let
``cls_changelog.append`` deduplicate writer retries exactly (the shard
class stamps the authoritative ``seq``).  The incarnation suffix bumps
on daemon restart so a reborn producer's counter restarting from zero
is never mistaken for duplicates of its past life.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

#: The record kinds the subsystem emits (Lustre changelog-style verbs).
KINDS = ("mkdir", "create", "rename", "setattr", "unlink", "migrate",
         "object_write")


def tenant_of(path: Optional[str]) -> Optional[str]:
    """Tenant = first path component ("/alice/x" -> "alice")."""
    if not path:
        return None
    parts = [p for p in path.split("/") if p]
    return parts[0] if parts else None


class ChangelogProducer:
    """Per-daemon emission shim: stamps records and casts them out.

    Attached to an MDS or OSD by ``cluster.enable_changelog``; absent
    (``daemon.changelog is None``) in a plain cluster, so the producing
    daemons take the exact same code path either way apart from one
    attribute test.  ``emit`` is fire-and-forget (``cast``): producers
    never wait on the changelog, so enabling it cannot stall or reorder
    the producing daemon's own schedule.
    """

    def __init__(self, daemon: Any, writer: str):
        self.daemon = daemon
        self.writer = writer
        self.incarnation = 1
        self.pseq = 0

    @property
    def producer_id(self) -> str:
        return f"{self.daemon.name}#{self.incarnation}"

    def emit(self, kind: str, actor: str, path: Optional[str] = None,
             **details: Any) -> Optional[Dict[str, Any]]:
        if kind not in KINDS:
            raise ValueError(f"unknown changelog kind {kind!r}")
        if not self.daemon.alive:
            return None
        self.pseq += 1
        record: Dict[str, Any] = {
            "kind": kind,
            "actor": actor,
            "path": path,
            "tenant": tenant_of(path),
            "time": self.daemon.sim.now,
            "producer": self.producer_id,
            "pseq": self.pseq,
        }
        record.update(details)
        self.daemon.perf.incr("changelog.emit")
        self.daemon.cast(self.writer, "changelog_event", record)
        return record

    def on_daemon_restart(self) -> None:
        """New incarnation: fresh producer identity, counter reset."""
        self.incarnation += 1
        self.pseq = 0
