"""Shard layout: striping a changelog stream over shard objects.

Same idea as :class:`repro.zlog.striping.StripeLayout`: the stream is
divided over ``width`` objects in a dedicated pool so appends spread
across OSDs.  Placement is a pure function of the record's
``(producer, pseq)`` stamp — a writer retry lands on the *same* shard,
which is what lets the shard class deduplicate it.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.errors import InvalidArgument
from repro.rados.placement import stable_hash

#: The dedicated changelog pool (size-1: observer traffic must not
#: generate replication messages in the shared schedule).
CHANGELOG_POOL = "changelog"


class ChangelogLayout:
    """Maps records to shard objects ``changelog.<name>.shard.<i>``."""

    def __init__(self, name: str = "changelog", width: int = 4,
                 pool: str = CHANGELOG_POOL):
        if not name:
            raise InvalidArgument("layout needs a stream name")
        if width < 1:
            raise InvalidArgument(f"shard width must be >= 1, got {width}")
        self.name = name
        self.width = width
        self.pool = pool

    def object_of(self, shard: int) -> str:
        if not 0 <= shard < self.width:
            raise InvalidArgument(f"shard {shard} out of range "
                                  f"[0, {self.width})")
        return f"changelog.{self.name}.shard.{shard}"

    def shard_of(self, producer: str, pseq: int) -> int:
        """Shard for one record: producer-keyed, round-robin by pseq."""
        return (stable_hash(producer) + pseq) % self.width

    def all_objects(self) -> List[str]:
        return [self.object_of(i) for i in range(self.width)]

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "width": self.width,
                "pool": self.pool}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChangelogLayout":
        return cls(name=data["name"], width=int(data["width"]),
                   pool=data.get("pool", CHANGELOG_POOL))
