"""The changelog writer: buffers producer events, appends to shards.

Producers ``cast`` records at the writer and move on; the writer
batches them per shard on a fixed flush period and appends each batch
through ``cls_changelog.append`` under its fencing epoch.  After every
successful append it notifies the shard object so tailing consumers
wake immediately instead of waiting for their polling fallback.

Failure model
-------------
* A flush that *times out* may or may not have applied; the buffer is
  retained and retried, and the class's ``(producer, pseq)`` dedup
  absorbs the replay — no gaps, no duplicates.
* A :class:`~repro.errors.StaleEpoch` rejection means a newer writer
  sealed the shards; this writer stops appending (fenced) and drops
  further events, exactly like a fenced zlog client.
* A shard that is *not sealed at the writer's epoch* rejects the write
  (retryable).  That is the seal-before-write invariant: if the sole
  OSD of a size-1 shard PG flaps, the map may briefly hand the PG to a
  peer that fabricates an empty shard object — appends there would
  fork the history and be discarded when the map flips back.  The
  unsealed impostor refuses, the batch stays buffered, and the replay
  lands on the real shard once it is reachable again.
* On restart the writer re-seals every shard at a higher epoch,
  fencing any zombie of its previous incarnation.

Determinism contract (same as the mgr)
--------------------------------------
The writer is an observer bolted onto the side of the cluster: it
installs a fixed-latency network override for its own endpoint, ticks
with zero jitter, and never writes to the monitors after boot — so a
changelog-enabled run leaves the non-changelog daemons' schedule
byte-identical (pinned by an integration test).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from repro.changelog.shards import CHANGELOG_POOL, ChangelogLayout
from repro.errors import MalacologyError, StaleEpoch
from repro.msg import Daemon
from repro.rados.client import RadosClient
from repro.sim.kernel import Simulator
from repro.sim.network import FixedLatency, Network


class ChangelogWriter(Daemon, RadosClient):
    """Buffers changelog records and appends them under an epoch."""

    #: Fixed one-way delay for all changelog traffic (see module doc).
    CHANGELOG_LATENCY = 100e-6
    FLUSH_INTERVAL = 0.05
    TRIM_INTERVAL = 5.0
    POOL_SIZE = 1
    POOL_PG_NUM = 8

    def __init__(self, sim: Simulator, network: Network, name: str,
                 mon_names: List[str],
                 layout: Optional[ChangelogLayout] = None):
        super().__init__(sim, network, name)
        network.set_latency_override(
            name, FixedLatency(self.CHANGELOG_LATENCY))
        self.init_mon_client(mon_names)
        self.layout = layout or ChangelogLayout()
        self.booted = False
        self.fenced = False
        self.epoch = 0
        #: shard index -> pending records, in arrival order.
        self.buffers: Dict[int, List[Dict[str, Any]]] = {}
        #: shard index -> last seq this writer appended.
        self._shard_last: Dict[int, int] = {}
        #: shard index -> last get_state reply (trim tick refreshes).
        self._shard_state: Dict[int, Dict[str, Any]] = {}
        #: cursor name -> total lag (records behind, summed over shards).
        self._cursor_lag: Dict[str, int] = {}
        self._lag_gauges: set = set()

        self.perf.gauge_fn("changelog.buffered",
                           lambda: float(sum(len(b) for b in
                                             self.buffers.values())))
        self.perf.gauge_fn("changelog.retained",
                           lambda: float(sum(
                               s.get("entries", 0)
                               for s in self._shard_state.values())))
        for i in range(self.layout.width):
            self.perf.gauge_fn(
                f"changelog.shard.{i}.entries",
                lambda i=i: float(
                    self._shard_state.get(i, {}).get("entries", 0)))
        self.register_handler("changelog_event", self._h_event)
        self.register_admin_command("changelog.status",
                                    lambda args: self.status())
        self.spawn(self._boot(), name=f"{self.name}:boot")

    # ------------------------------------------------------------------
    # Boot: pool, fencing epoch, tickers
    # ------------------------------------------------------------------
    def _boot(self) -> Generator:
        yield from self.mon_subscribe(["osd"])
        osdmap = yield from self.mon_get_map("osd")
        if self.layout.pool not in osdmap.pools:
            # cluster.build normally pre-creates the pool; this is the
            # standalone-bringup fallback.
            yield from self.rados_create_pool(
                self.layout.pool, size=self.POOL_SIZE,
                pg_num=self.POOL_PG_NUM)
        yield from self._fence()
        self.every(self.FLUSH_INTERVAL, self._flush_tick,
                   name=f"{self.name}:flush")
        self.every(self.TRIM_INTERVAL, self._trim_tick,
                   name=f"{self.name}:trim")
        self.booted = True

    def _fence(self) -> Generator:
        """Install a fresh epoch on every shard, fencing predecessors."""
        sealed = 0
        for shard in range(self.layout.width):
            state = yield from self._exec(shard, "get_state", {})
            sealed = max(sealed, state["epoch"])
            self._shard_state[shard] = state
            self._shard_last[shard] = state["last_seq"]
        self.epoch = sealed + 1
        for shard in range(self.layout.width):
            yield from self._exec(shard, "seal", {"epoch": self.epoch})
        self.fenced = False

    def _exec(self, shard: int, method: str,
              args: Dict[str, Any]) -> Generator:
        out = yield from self.rados_exec(
            self.layout.pool, self.layout.object_of(shard),
            "changelog", method, args)
        return out

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def _h_event(self, src: str, record: Dict[str, Any]) -> None:
        if self.fenced:
            self.perf.incr("changelog.dropped.fenced")
            return
        shard = self.layout.shard_of(record["producer"], record["pseq"])
        self.buffers.setdefault(shard, []).append(record)
        self.perf.incr("changelog.received")

    # ------------------------------------------------------------------
    # Flush
    # ------------------------------------------------------------------
    def _flush_tick(self) -> Generator:
        return self._flush()

    def _flush(self) -> Generator:
        if self.fenced:
            return
        for shard in sorted(self.buffers):
            buf = self.buffers[shard]
            if not buf:
                continue
            # Snapshot the batch length: events cast while this append
            # is in flight land behind it and flush next tick.
            batch = list(buf)
            try:
                out = yield from self._exec(
                    shard, "append",
                    {"epoch": self.epoch, "records": batch})
            except StaleEpoch:
                # A successor writer sealed past us; stop appending.
                self.fenced = True
                self.perf.incr("changelog.fenced")
                return
            except MalacologyError:
                # Ambiguous failure: keep the batch, replay next tick.
                # The class dedups by (producer, pseq) if it did apply.
                self.perf.incr("changelog.flush.retry")
                continue
            del buf[:len(batch)]
            self._shard_last[shard] = out["last_seq"]
            if out["appended"]:
                self.perf.incr("changelog.appended", out["appended"])
            if out["skipped"]:
                self.perf.incr("changelog.dedup_skipped", out["skipped"])
            try:
                yield from self.rados_notify(
                    self.layout.pool, self.layout.object_of(shard),
                    {"shard": shard, "last_seq": out["last_seq"]})
            except MalacologyError:
                # Wakeup lost; consumers fall back to polling.
                self.perf.incr("changelog.notify.failed")

    # ------------------------------------------------------------------
    # Trim + lag accounting
    # ------------------------------------------------------------------
    def _trim_tick(self) -> Generator:
        return self._trim()

    def _trim(self) -> Generator:
        if self.fenced:
            return
        lag: Dict[str, int] = {}
        for shard in range(self.layout.width):
            try:
                state = yield from self._exec(shard, "get_state", {})
            except MalacologyError:
                self.perf.incr("changelog.trim.retry")
                continue
            self._shard_state[shard] = state
            last = state["last_seq"]
            cursors = state["cursors"]
            for cname, cseq in cursors.items():
                lag[cname] = lag.get(cname, 0) + max(0, last - cseq)
            if not cursors:
                continue
            floor = min(cursors.values())
            first = state.get("first_seq")
            if first is None or floor < first:
                continue
            try:
                out = yield from self._exec(
                    shard, "trim",
                    {"epoch": self.epoch, "to_seq": floor})
            except StaleEpoch:
                self.fenced = True
                self.perf.incr("changelog.fenced")
                return
            except MalacologyError:
                self.perf.incr("changelog.trim.retry")
                continue
            if out["trimmed"]:
                self.perf.incr("changelog.trimmed", out["trimmed"])
                state["entries"] -= out["trimmed"]
        self._cursor_lag = lag
        for cname in lag:
            if cname not in self._lag_gauges:
                # gauge_fn bindings survive perf.reset(), so a lazily
                # registered gauge outlives writer crash/restart.
                self._lag_gauges.add(cname)
                self.perf.gauge_fn(
                    f"changelog.lag.{cname}",
                    lambda n=cname: float(self._cursor_lag.get(n, 0)))

    # ------------------------------------------------------------------
    # Admin surface (pure derived state; no cluster traffic)
    # ------------------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        shards = {}
        for i in range(self.layout.width):
            state = self._shard_state.get(i, {})
            shards[str(i)] = {
                "object": self.layout.object_of(i),
                "last_seq": self._shard_last.get(
                    i, state.get("last_seq", -1)),
                "entries": state.get("entries", 0),
                "buffered": len(self.buffers.get(i, [])),
                "cursors": dict(state.get("cursors", {})),
            }
        return {
            "time": self.sim.now,
            "writer": self.name,
            "epoch": self.epoch,
            "fenced": self.fenced,
            "booted": self.booted,
            "layout": self.layout.to_dict(),
            "appended": self.perf.get("changelog.appended"),
            "trimmed": self.perf.get("changelog.trimmed"),
            "buffered": sum(len(b) for b in self.buffers.values()),
            "retained": sum(s.get("entries", 0)
                            for s in self._shard_state.values()),
            "lag": dict(sorted(self._cursor_lag.items())),
            "shards": shards,
        }

    # ------------------------------------------------------------------
    # Crash / restart
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        super().on_crash()
        self.booted = False
        self.fenced = False
        self.buffers = {}
        self._shard_state = {}
        self._shard_last = {}
        self._cursor_lag = {}

    def on_restart(self) -> None:
        # Re-boot re-fences at epoch + 1, so anything a zombie of the
        # previous incarnation had in flight is rejected by the shards.
        self.spawn(self._boot(), name=f"{self.name}:reboot")
