"""repro.chaos: the deterministic chaos/nemesis engine.

Composable fault schedules (:mod:`repro.chaos.ops`), an engine that
interprets them against a live cluster (:mod:`repro.chaos.engine`),
invariant oracles that turn a run into a verdict
(:mod:`repro.chaos.oracles`), shipped scenarios
(:mod:`repro.chaos.scenarios`), and a seed-sweep runner with a ddmin
schedule minimizer (:mod:`repro.chaos.sweep`,
:mod:`repro.chaos.minimize`).  CLI: ``python -m repro.chaos``.
"""

from repro.chaos.engine import NemesisEngine
from repro.chaos.minimize import minimize_case, minimize_schedule, \
    write_repro_artifact
from repro.chaos.ops import OP_KINDS, NemesisOp, NemesisSchedule
from repro.chaos.oracles import (
    ChangelogOracle,
    DurabilityOracle,
    ReplicaConvergenceOracle,
    RunVerdict,
    Violation,
    ZlogOracle,
)
from repro.chaos.runner import run_case
from repro.chaos.scenarios import SCENARIOS, Scenario
from repro.chaos.sweep import DEFAULT_SCENARIOS, sweep

__all__ = [
    "OP_KINDS",
    "SCENARIOS",
    "DEFAULT_SCENARIOS",
    "ChangelogOracle",
    "DurabilityOracle",
    "NemesisEngine",
    "NemesisOp",
    "NemesisSchedule",
    "ReplicaConvergenceOracle",
    "RunVerdict",
    "Scenario",
    "Violation",
    "ZlogOracle",
    "minimize_case",
    "minimize_schedule",
    "run_case",
    "sweep",
    "write_repro_artifact",
]
