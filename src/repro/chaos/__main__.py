"""CLI: ``python -m repro.chaos {list,run,sweep}``.

* ``list`` — the shipped scenarios and their op vocabularies;
* ``run`` — one scenario at one seed, optionally replaying a
  minimized-repro artifact via ``--schedule``;
* ``sweep`` — N seeds per scenario with ddmin minimization of
  failures into stamped artifacts (what CI's chaos job runs).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, List, Optional

from repro.chaos.ops import OP_KINDS, NemesisSchedule
from repro.chaos.runner import run_case
from repro.chaos.scenarios import SCENARIOS
from repro.chaos.sweep import DEFAULT_SCENARIOS, sweep


def _cmd_list(_args: argparse.Namespace) -> int:
    print("scenarios:")
    for name in sorted(SCENARIOS):
        s = SCENARIOS[name]
        print(f"  {name:<18} {s.description} "
              f"(duration {s.duration:g}s, "
              f"oracles: {', '.join(s.oracle_names)})")
    print("\nnemesis op kinds:")
    for kind in sorted(OP_KINDS):
        print(f"  {kind:<18} {OP_KINDS[kind]}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    schedule = None
    if args.schedule:
        with open(args.schedule, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        # Accept either a bare schedule or a repro artifact wrapping one.
        schedule = NemesisSchedule.from_dict(doc.get("schedule", doc))
    verdict = run_case(args.scenario, args.seed, schedule=schedule)
    print(json.dumps(verdict.to_dict(), indent=2, sort_keys=True))
    return 0 if verdict.ok else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    scenarios = (args.scenarios.split(",") if args.scenarios
                 else list(DEFAULT_SCENARIOS))
    seeds = list(range(args.seed_base, args.seed_base + args.seeds))
    summary = sweep(scenarios=scenarios, seeds=seeds,
                    out_dir=args.out_dir,
                    minimize=not args.no_minimize,
                    log=lambda msg: print(msg, file=sys.stderr))
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0 if summary["ok"] else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Deterministic chaos engine: nemesis schedules, "
                    "durability oracles, seed sweeps.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show scenarios and op kinds")

    p_run = sub.add_parser("run", help="run one scenario at one seed")
    p_run.add_argument("--scenario", required=True,
                       choices=sorted(SCENARIOS))
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--schedule", default=None,
                       help="JSON schedule (or repro artifact) to "
                            "replay instead of generating one")

    p_sweep = sub.add_parser("sweep", help="fuzz seeds per scenario")
    p_sweep.add_argument("--scenarios", default=None,
                         help="comma-separated names "
                              f"(default: {','.join(DEFAULT_SCENARIOS)})")
    p_sweep.add_argument("--seeds", type=int, default=20,
                         help="seeds per scenario (default 20)")
    p_sweep.add_argument("--seed-base", type=int, default=0,
                         help="first seed (default 0)")
    p_sweep.add_argument("--out-dir", default="chaos-artifacts",
                         help="where minimized repros are written")
    p_sweep.add_argument("--no-minimize", action="store_true",
                         help="skip ddmin on failures")

    args = parser.parse_args(argv)
    handlers: Any = {"list": _cmd_list, "run": _cmd_run,
                     "sweep": _cmd_sweep}
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
