"""The nemesis engine: interprets a schedule against a live cluster.

One engine drives one run.  ``arm`` translates every
:class:`~repro.chaos.ops.NemesisOp` into injector/fault-plane calls
scheduled on the simulator; ``finalize`` restores the cluster to a
fault-free state so the oracles judge *recovery*, not an ongoing
outage.  Finalize-restores-everything is also what keeps schedules
minimizable: any op can be dropped without stranding the cluster,
because nothing an op breaks stays broken past the horizon.

All randomness (bit-rot targeting, store fault draws) comes from
dedicated ``chaos:*`` RNG streams; the message-chaos knobs draw from
the injector's own ``failures:*`` streams.  An armed engine whose
schedule is empty leaves the event schedule byte-identical to an
unarmed run (pinned by a tape test).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.chaos.ops import NemesisOp, NemesisSchedule
from repro.rados.placement import acting_set
from repro.sim.failure import FailureInjector
from repro.store import StoreFaultPlane, unwrap_store


class NemesisEngine:
    """Applies one :class:`NemesisSchedule` to one cluster."""

    def __init__(self, cluster: Any):
        self.cluster = cluster
        self.sim = cluster.sim
        self.injector = FailureInjector(self.sim, cluster.net)
        self.store_plane = StoreFaultPlane(
            self.sim.rng("chaos:store"), clock=lambda: self.sim.now)
        self._rng = self.sim.rng("chaos:engine")
        self.schedule: Optional[NemesisSchedule] = None
        self.armed = False
        self._base = 0.0
        self._daemons: Dict[str, Any] = {}
        #: Engine-level event log ``(time, kind, detail)`` — op
        #: application and bit-rot hits; the injector and store plane
        #: keep their own fault logs.
        self.log: List[Tuple[float, str, str]] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def arm(self, schedule: NemesisSchedule) -> None:
        """Install the schedule; faults fire as the sim runs."""
        if self.armed:
            raise RuntimeError("engine already armed")
        self.schedule = schedule
        self.armed = True
        self._base = self.sim.now
        self.sim.chaos = self
        self._daemons = {d.name: d for d in self.cluster.daemons()}
        for osd in self.cluster.osds:
            osd.set_store_fault_plane(self.store_plane)
        for op in schedule.ops:
            self._apply(op)

    def finalize(self) -> None:
        """Lift every fault so recovery can complete.

        Leaves the cluster healing: callers should run the sim for a
        settle period (and trigger scrubs) before consulting oracles.
        """
        self.armed = False
        self.injector.clear_loss()
        self.injector.clear_chaos()
        self.injector.clear_slowdowns()
        self.store_plane.clear()
        self.cluster.net.heal_all()
        for name in sorted(self._daemons):
            daemon = self._daemons[name]
            daemon.resume_tickers()
            if not daemon.alive:
                daemon.restart()
        self.log.append((self.sim.now, "finalize", "all faults lifted"))

    def trigger_scrubs(self) -> int:
        """Ask every OSD to scrub all PGs it leads; returns the count."""
        started = 0
        for osd in self.cluster.osds:
            if osd.alive:
                out = osd.admin_command("scrub.trigger")
                started += out.get("scrubs_started", 0)
        return started

    def status(self) -> Dict[str, Any]:
        """JSON-safe snapshot for the mgr's chaos health check."""
        return {
            "armed": self.armed,
            "schedule": self.schedule.name if self.schedule else None,
            "ops": len(self.schedule) if self.schedule else 0,
            "injector_faults": len(self.injector.log),
            "store_faults": self.store_plane.faults_injected,
            "engine_events": len(self.log),
        }

    # ------------------------------------------------------------------
    # Op interpretation
    # ------------------------------------------------------------------
    def _daemon(self, name: str) -> Any:
        daemon = self._daemons.get(name)
        if daemon is None:
            raise ValueError(f"nemesis op targets unknown daemon {name!r}")
        return daemon

    def _at(self, t: float, fn: Any, *args: Any) -> None:
        self.sim.schedule(max(0.0, t - self.sim.now), fn, *args)

    def _apply(self, op: NemesisOp) -> None:
        t = self._base + op.at
        p = op.params
        inj = self.injector
        if op.kind == "flap":
            inj.flap(self._daemon(p["target"]), t, t + p["down_for"])
        elif op.kind == "crash":
            inj.crash_at(t, self._daemon(p["target"]))
        elif op.kind == "rolling_flap":
            stagger = p.get("stagger", 1.0)
            for i, name in enumerate(p["targets"]):
                start = t + i * stagger
                inj.flap(self._daemon(name), start,
                         start + p["down_for"])
        elif op.kind == "partition":
            inj.partition_at(t, p["a"], p["b"])
            inj.heal_at(t + p["heal_for"], p["a"], p["b"])
        elif op.kind == "partition_oneway":
            inj.partition_oneway_at(t, p["src"], p["dst"])
            inj.heal_oneway_at(t + p["heal_for"], p["src"], p["dst"])
        elif op.kind == "partition_group":
            for a in p["group_a"]:
                for b in p["group_b"]:
                    inj.partition_at(t, a, b)
                    inj.heal_at(t + p["heal_for"], a, b)
        elif op.kind == "loss":
            self._window(t, p.get("lasts", 5.0),
                         lambda: inj.set_loss(p["src"], p["dst"],
                                              p["rate"]),
                         lambda: inj.set_loss(p["src"], p["dst"], 0.0),
                         f"loss {p['src']}->{p['dst']}@{p['rate']:g}")
        elif op.kind == "slow":
            inj.slow_at(t, p["target"], p["factor"])
            inj.unslow_at(t + p.get("lasts", 5.0), p["target"])
        elif op.kind == "pause":
            inj.pause_at(t, self._daemon(p["target"]))
            inj.resume_at(t + p.get("lasts", 5.0),
                          self._daemon(p["target"]))
        elif op.kind == "duplicate":
            self._window(t, p.get("lasts", 5.0),
                         lambda: inj.set_duplication(p["rate"]),
                         lambda: inj.set_duplication(0.0),
                         f"duplicate@{p['rate']:g}")
        elif op.kind == "reorder":
            self._window(t, p.get("lasts", 5.0),
                         lambda: inj.set_reorder(p["rate"],
                                                 p.get("spread", 4.0)),
                         lambda: inj.set_reorder(0.0),
                         f"reorder@{p['rate']:g}")
        elif op.kind == "corrupt":
            detected = p.get("detected", True)
            self._window(t, p.get("lasts", 5.0),
                         lambda: inj.set_corruption(p["rate"], detected),
                         lambda: inj.set_corruption(0.0),
                         f"corrupt@{p['rate']:g}")
        elif op.kind == "store_eio":
            targets = set(p["targets"]) if "targets" in p else None
            self._window(t, p.get("lasts", 5.0),
                         lambda: self.store_plane.set_eio(p["rate"],
                                                          targets),
                         lambda: self.store_plane.set_eio(0.0),
                         f"store_eio@{p['rate']:g}")
        elif op.kind == "store_torn":
            targets = set(p["targets"]) if "targets" in p else None
            self._window(t, p.get("lasts", 5.0),
                         lambda: self.store_plane.set_torn(p["rate"],
                                                           targets),
                         lambda: self.store_plane.set_torn(0.0),
                         f"store_torn@{p['rate']:g}")
        elif op.kind == "bitrot":
            self._at(t, self._bitrot, p["pool"], p.get("count", 1))
        else:  # unreachable: NemesisOp validates kinds
            raise ValueError(f"unhandled op kind {op.kind!r}")

    def _window(self, t: float, lasts: float, on: Any, off: Any,
                label: str) -> None:
        """Open a fault window at ``t`` and close it at ``t+lasts``."""
        def _on() -> None:
            self.log.append((self.sim.now, "on", label))
            on()

        def _off() -> None:
            self.log.append((self.sim.now, "off", label))
            off()

        self._at(t, _on)
        self._at(t + lasts, _off)

    def _bitrot(self, pool: str, count: int) -> None:
        """Rot up to ``count`` objects on non-primary replicas.

        Primaries are exempt on purpose: scrub repairs by force-pushing
        primary state, so rotting a primary would *propagate* the
        damage instead of exposing it for repair.  Size-1 pools have no
        non-primary replicas and rot nothing.
        """
        candidates = []
        for osd in self.cluster.osds:
            m = osd.osdmap
            if m is None:
                continue
            for key in sorted(osd.pgs):
                pg_pool, pgid = key
                if pg_pool != pool:
                    continue
                acting = acting_set(m, pg_pool, pgid)
                if (not acting or acting[0] == osd.name
                        or osd.name not in acting):
                    continue
                store = unwrap_store(osd.pgs[key])
                for oid in sorted(store):
                    if store[oid].data:
                        candidates.append((osd.name, key, oid))
        candidates.sort()
        hit = 0
        while candidates and hit < count:
            name, key, oid = candidates.pop(
                self._rng.randrange(len(candidates)))
            store = unwrap_store(self._daemons[name].pgs[key])
            if self.store_plane.flip_bit(store, oid, owner=name):
                hit += 1
        self.log.append(
            (self.sim.now, "bitrot", f"{pool}: {hit}/{count} objects"))
