"""Delta-debugging a failing nemesis schedule to a minimal repro.

Classic ddmin over the schedule's op list: try dropping chunks (and
chunk complements) while the run still fails, halving granularity as
progress stalls, until no single op can be removed.  This only works
because schedules are declarative and the engine's finalize always
restores the cluster — any subset of ops is a valid schedule.

Every candidate is one full deterministic re-run (same scenario, same
seed, explicit schedule), so minimization cost is bounded by
``O(ops^2)`` runs in the worst case — fine for the handfuls of ops our
scenarios generate.  Results are cached by op-index subset.

The minimized schedule is emitted as a provenance-stamped JSON
artifact (PR 6/7 conventions) that ``python -m repro.chaos run
--schedule`` replays exactly.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.analysis.provenance import stamp
from repro.chaos.ops import NemesisSchedule
from repro.chaos.oracles import RunVerdict
from repro.chaos.runner import run_case

#: Schema of the minimized-repro artifact.
REPRO_SCHEMA = "chaos-repro"


def minimize_schedule(
        schedule: NemesisSchedule,
        still_fails: Callable[[NemesisSchedule], bool],
        log: Optional[Callable[[str], None]] = None,
) -> Tuple[NemesisSchedule, int]:
    """ddmin: the smallest op subset for which ``still_fails`` holds.

    Returns ``(minimized schedule, runs executed)``.  Assumes the full
    schedule fails; if it does not, it is returned unchanged.
    """
    say = log or (lambda _msg: None)
    cache: Dict[Tuple[int, ...], bool] = {}
    runs = 0

    def test(keep: List[int]) -> bool:
        nonlocal runs
        key = tuple(sorted(keep))
        if key not in cache:
            runs += 1
            cache[key] = still_fails(schedule.subset(list(key)))
        return cache[key]

    indices = list(range(len(schedule.ops)))
    if not indices or not test(indices):
        return schedule, runs

    granularity = 2
    while len(indices) >= 2:
        chunk = max(1, (len(indices) + granularity - 1) // granularity)
        chunks = [indices[i:i + chunk]
                  for i in range(0, len(indices), chunk)]
        reduced = False
        for i, part in enumerate(chunks):
            if len(part) == len(indices):
                continue
            if test(part):  # this chunk alone still fails
                say(f"minimize: reduced to {len(part)} ops "
                    f"(chunk {i + 1}/{len(chunks)})")
                indices = part
                granularity = 2
                reduced = True
                break
            complement = [x for x in indices if x not in part]
            if complement and test(complement):
                say(f"minimize: dropped chunk {i + 1}/{len(chunks)} "
                    f"({len(complement)} ops remain)")
                indices = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(indices):
                break  # 1-minimal: no single op removable
            granularity = min(len(indices), granularity * 2)
    return schedule.subset(indices), runs


def minimize_case(scenario: str, seed: int,
                  schedule: NemesisSchedule,
                  log: Optional[Callable[[str], None]] = None,
                  ) -> Tuple[NemesisSchedule, RunVerdict, int]:
    """Minimize one failing (scenario, seed) case by re-running it.

    Returns the minimal schedule, the verdict of its final confirming
    run, and how many runs minimization took.
    """
    def still_fails(candidate: NemesisSchedule) -> bool:
        return not run_case(scenario, seed, schedule=candidate).ok

    minimal, runs = minimize_schedule(schedule, still_fails, log=log)
    final = run_case(scenario, seed, schedule=minimal)
    return minimal, final, runs


def write_repro_artifact(path: str, scenario: str, seed: int,
                         original: NemesisSchedule,
                         minimal: NemesisSchedule,
                         verdict: RunVerdict,
                         runs: int) -> str:
    """Write the stamped minimized-repro JSON; returns the path."""
    doc = stamp({
        "kind": REPRO_SCHEMA,
        "scenario": scenario,
        "seed": seed,
        "original_ops": len(original.ops),
        "minimized_ops": len(minimal.ops),
        "minimize_runs": runs,
        "schedule": minimal.to_dict(),
        "verdict": verdict.to_dict(),
        "replay": (f"python -m repro.chaos run --scenario {scenario} "
                   f"--seed {seed} --schedule {os.path.basename(path)}"),
    })
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
