"""Nemesis schedules: declarative, seedable, JSON-round-trippable.

A :class:`NemesisSchedule` is a list of timed fault operations — the
entire chaos plan for one run, written down *before* the run starts.
That declarative shape is what makes the rest of the engine possible:

* **determinism** — the schedule plus the cluster seed fully determine
  the run; re-running a schedule reproduces the failure byte-for-byte;
* **minimization** — the delta-debugger shrinks a failing run by
  re-running subsets of the op list, which only works because every op
  is self-contained (each fault it injects carries its own cleanup
  time, so dropping an op never strands the cluster in a faulted
  state);
* **artifacts** — a minimized schedule serializes to stamped JSON, so
  a CI failure ships its own repro.

Op kinds and their parameters are documented on :data:`OP_KINDS`; the
engine (:mod:`repro.chaos.engine`) is the single interpreter.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

#: Every op kind the engine interprets, with its parameter contract.
#: ``at`` is seconds after the engine is armed; durations are relative
#: to ``at``.  Targets are daemon names ("osd0", "mds0", ...).
OP_KINDS = {
    "flap": "crash `target` at `at`, restart after `down_for`",
    "crash": "crash `target` at `at` (restored by finalize)",
    "rolling_flap": "flap each of `targets` for `down_for`, "
                    "staggered by `stagger`",
    "partition": "cut `a` <-> `b` at `at`, heal after `heal_for`",
    "partition_oneway": "cut `src` -> `dst` only, heal after `heal_for`",
    "partition_group": "cut every link between `group_a` and "
                       "`group_b`, heal after `heal_for`",
    "loss": "drop `src` -> `dst` messages at `rate` for `lasts` "
            "(endpoints may be '*')",
    "slow": "scale `target`'s latency by `factor` for `lasts`",
    "pause": "freeze `target`'s tickers for `lasts`",
    "duplicate": "duplicate casts/responses at `rate` for `lasts`",
    "reorder": "delay a `rate` fraction of messages by up to `spread` "
               "extra latency multiples for `lasts`",
    "corrupt": "corrupt payloads at `rate` for `lasts` "
               "(`detected` -> dropped frames; else delivered mangled)",
    "store_eio": "fail commits with EIO at `rate` on `targets` "
                 "for `lasts`",
    "store_torn": "tear commits at `rate` on `targets` for `lasts`",
    "bitrot": "at `at`, silently flip bits in up to `count` objects "
              "of `pool` on non-primary replicas",
}


@dataclass
class NemesisOp:
    """One timed fault: ``kind`` at time ``at`` with ``params``."""

    kind: str
    at: float
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise ValueError(
                f"unknown nemesis op kind {self.kind!r} "
                f"(known: {', '.join(sorted(OP_KINDS))})")
        if self.at < 0:
            raise ValueError(f"op time must be >= 0, got {self.at}")

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "at": self.at,
                "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "NemesisOp":
        return cls(kind=data["kind"], at=float(data["at"]),
                   params=dict(data.get("params", {})))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in
                          sorted(self.params.items()))
        return f"NemesisOp({self.kind} @{self.at:g} {inner})"


@dataclass
class NemesisSchedule:
    """A full chaos plan: named, ordered ops, and a run horizon.

    ``duration`` is how long the workload phase runs (all op times
    should fall inside it); the engine's finalize/settle phase comes
    after.  Schedules compare equal structurally, which the minimizer
    relies on for caching.
    """

    name: str
    ops: List[NemesisOp] = field(default_factory=list)
    duration: float = 20.0

    def add(self, kind: str, at: float, **params: Any) -> "NemesisSchedule":
        self.ops.append(NemesisOp(kind=kind, at=at, params=params))
        return self

    def subset(self, keep: List[int]) -> "NemesisSchedule":
        """A copy containing only the ops at indices ``keep``."""
        return NemesisSchedule(
            name=self.name,
            ops=[NemesisOp.from_dict(self.ops[i].to_dict())
                 for i in sorted(keep)],
            duration=self.duration)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "duration": self.duration,
                "ops": [op.to_dict() for op in self.ops]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "NemesisSchedule":
        return cls(name=data["name"],
                   ops=[NemesisOp.from_dict(d)
                        for d in data.get("ops", [])],
                   duration=float(data.get("duration", 20.0)))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "NemesisSchedule":
        return cls.from_dict(json.loads(text))

    def __len__(self) -> int:
        return len(self.ops)
