"""Invariant oracles: turn a chaos run into a pass/fail verdict.

Each oracle checks one durability/consistency guarantee after the
nemesis schedule has been finalized and the cluster has settled:

* :class:`DurabilityOracle` — every client-*acked* write must be
  readable afterwards with exactly the acked contents.  Un-acked
  writes carry no obligation (the client saw an error and retried);
  acked-then-lost is the one unforgivable outcome.
* :class:`ZlogOracle` — the specialization for ZLog appends: acked
  positions are write-once (two acks on one position is a fencing
  breach) and must read back with the acked payload.
* :class:`ChangelogOracle` — per-shard sequence numbers are gapless
  and every ``(producer, pseq)`` stamp appears at most once, the
  no-gap/no-dup guarantee from the changelog PR.
* :class:`ReplicaConvergenceOracle` — after finalize + scrub, all
  replicas of every PG agree on object digests (out-of-band store
  inspection; catches unrepaired tears and bit-rot).

The :class:`RunVerdict` composes oracle violations with the PR-3
protocol-sanitizer report into the single pass/fail the sweep runner
and minimizer act on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.errors import MalacologyError
from repro.rados.placement import acting_set
from repro.store import unwrap_store


@dataclass
class Violation:
    """One broken invariant: which oracle, what happened."""

    oracle: str
    detail: str

    def to_dict(self) -> Dict[str, str]:
        return {"oracle": self.oracle, "detail": self.detail}


@dataclass
class RunVerdict:
    """The composed outcome of one chaos run."""

    scenario: str
    seed: int
    ok: bool = True
    violations: List[Violation] = field(default_factory=list)
    sanitizer_report: List[Dict[str, Any]] = field(default_factory=list)
    error: Optional[str] = None
    stats: Dict[str, Any] = field(default_factory=dict)

    def fail(self, oracle: str, detail: str) -> None:
        self.ok = False
        self.violations.append(Violation(oracle, detail))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
            "sanitizer_report": self.sanitizer_report,
            "error": self.error,
            "stats": self.stats,
        }


class DurabilityOracle:
    """Records client-acked writes; checks end-state readability.

    Workloads call :meth:`acked` only *after* the write RPC returned
    success.  ``check`` is a client generator (the readback goes over
    the real read path) driven by the runner after finalize.
    """

    name = "durability"

    def __init__(self) -> None:
        #: (pool, oid) -> expected full-object bytes (last ack wins;
        #: workloads keep one writer per oid so "last" is well-defined).
        self.acked_writes: Dict[Tuple[str, str], bytes] = {}
        self.acks = 0

    def acked(self, pool: str, oid: str, data: bytes) -> None:
        self.acked_writes[(pool, oid)] = data
        self.acks += 1

    def check(self, client: Any, verdict: RunVerdict) -> Generator:
        for (pool, oid) in sorted(self.acked_writes):
            expect = self.acked_writes[(pool, oid)]
            try:
                got = yield from client.rados_read(pool, oid)
            except MalacologyError as exc:
                verdict.fail(self.name,
                             f"acked object {pool}/{oid} unreadable: "
                             f"{exc.code}: {exc}")
                continue
            if got != expect:
                verdict.fail(
                    self.name,
                    f"acked object {pool}/{oid} diverged: expected "
                    f"{expect!r:.60}, read {got!r:.60}")


class ZlogOracle:
    """Acked ZLog appends are write-once and durable."""

    name = "zlog-fencing"

    def __init__(self) -> None:
        self.acked_appends: Dict[int, Any] = {}
        self.double_acks: List[str] = []
        #: The ZLog handle to read back through; the workload that
        #: created the log installs it.
        self.log: Optional[Any] = None

    def acked(self, position: int, payload: Any) -> None:
        if position in self.acked_appends:
            # Two successful appends claimed one position: the epoch
            # fence failed *right now*; record it even before readback.
            self.double_acks.append(
                f"position {position} acked twice "
                f"({self.acked_appends[position]!r} then {payload!r})")
        self.acked_appends[position] = payload

    def check(self, log: Any, verdict: RunVerdict) -> Generator:
        for detail in self.double_acks:
            verdict.fail(self.name, detail)
        for pos in sorted(self.acked_appends):
            expect = self.acked_appends[pos]
            try:
                entry = yield from log.read(pos)
            except MalacologyError as exc:
                verdict.fail(self.name,
                             f"acked position {pos} unreadable: "
                             f"{exc.code}: {exc}")
                continue
            got = entry.get("data") if isinstance(entry, dict) else entry
            if got != expect:
                verdict.fail(self.name,
                             f"acked position {pos} diverged: expected "
                             f"{expect!r}, read {got!r}")


class ChangelogOracle:
    """Per-shard no-gap / no-dup over the changelog end state.

    Inspects the shard objects out-of-band (primary replica via the
    store mapping plane): deterministic, no simulated time, works even
    if parts of the cluster never recovered.
    """

    name = "changelog"

    def check(self, cluster: Any, verdict: RunVerdict) -> None:
        writer = cluster.changelog_writer
        if writer is None:
            return
        layout = writer.layout
        for shard in range(layout.width):
            oid = layout.object_of(shard)
            obj = _primary_object(cluster, layout.pool, oid)
            if obj is None:
                continue  # never written: an empty shard has no gaps
            records = [value for key, value in sorted(obj.omap.items())
                       if key.startswith("rec.")]
            seqs = [rec["seq"] for rec in records]
            # Trim may have reclaimed a prefix; what remains must be
            # contiguous and must end at the shard's last_seq stamp.
            if seqs and seqs != list(range(seqs[0],
                                           seqs[0] + len(seqs))):
                verdict.fail(self.name,
                             f"shard {oid}: sequence gap in {seqs}")
            last_seq = obj.xattrs.get("chlog.last_seq", -1)
            if seqs and seqs[-1] != last_seq:
                verdict.fail(
                    self.name,
                    f"shard {oid}: last record {seqs[-1]} != "
                    f"last_seq xattr {last_seq}")
            seen: Dict[Tuple[str, int], int] = {}
            for rec in records:
                stamp = (rec["producer"], rec["pseq"])
                if stamp in seen:
                    verdict.fail(
                        self.name,
                        f"shard {oid}: duplicate record for producer "
                        f"{stamp[0]} pseq {stamp[1]} "
                        f"(seqs {seen[stamp]} and {rec['seq']})")
                seen[stamp] = rec["seq"]
        self._check_consumers(cluster, verdict)

    def _check_consumers(self, cluster: Any, verdict: RunVerdict) -> None:
        """No-dup, as witnessed by the consumers.

        The shard scan above sees only what trim left behind; by the
        time the oracle runs, cursor-acked prefixes are usually gone.
        Consumers saw every record before it was trimmed, so their
        ``received`` tapes are where a dedup breach actually surfaces.
        The same ``(producer, pseq)`` stamp at two *different* shard
        seqs means the record entered the log twice (a writer retry
        that the object class failed to dedup).  The same stamp at the
        same seq is fine: that is at-least-once redelivery after a
        consumer crash, which the contract explicitly permits.
        """
        for consumer in getattr(cluster, "changelog_consumers", []):
            tape = getattr(consumer, "received", None)
            if not tape:
                continue
            stamped: Dict[Tuple[str, int], int] = {}
            for rec in tape:
                stamp = (rec.get("producer"), rec.get("pseq"))
                seq = rec.get("seq")
                prior = stamped.get(stamp)
                if prior is not None and prior != seq:
                    verdict.fail(
                        self.name,
                        f"consumer {consumer.name}: producer "
                        f"{stamp[0]} pseq {stamp[1]} logged twice "
                        f"(seqs {prior} and {seq})")
                stamped.setdefault(stamp, seq)


class ReplicaConvergenceOracle:
    """All replicas of every PG agree after finalize + scrub."""

    name = "replica-convergence"

    def check(self, cluster: Any, verdict: RunVerdict) -> None:
        by_name = {o.name: o for o in cluster.osds}
        primary = cluster.osds[0].osdmap
        if primary is None:
            verdict.fail(self.name, "no OSD map available post-run")
            return
        seen = set()
        for osd in cluster.osds:
            for key in sorted(osd.pgs):
                if key in seen:
                    continue
                seen.add(key)
                pool, pgid = key
                acting = acting_set(primary, pool, pgid)
                if len(acting) < 2:
                    continue
                digests = {}
                for name in acting:
                    replica = by_name.get(name)
                    if replica is None:
                        continue
                    store = unwrap_store(replica.pgs.get(key, {}))
                    digests[name] = {
                        oid: store[oid].digest()
                        for oid in sorted(store)}
                base_name = acting[0]
                base = digests.get(base_name, {})
                for name in acting[1:]:
                    if digests.get(name) != base:
                        diff = _digest_diff(base, digests.get(name, {}))
                        verdict.fail(
                            self.name,
                            f"{pool}/{pgid}: replica {name} diverges "
                            f"from primary {base_name} on {diff}")


def _primary_object(cluster: Any, pool: str, oid: str) -> Optional[Any]:
    """The primary replica's stored object, via out-of-band lookup."""
    from repro.rados.placement import pg_of
    by_name = {o.name: o for o in cluster.osds}
    for osd in cluster.osds:
        m = osd.osdmap
        if m is None or pool not in m.pools:
            continue
        pgid = pg_of(oid, m.pool(pool)["pg_num"])
        acting = acting_set(m, pool, pgid)
        if not acting:
            return None
        primary = by_name.get(acting[0])
        if primary is None:
            return None
        store = primary.pgs.get((pool, pgid))
        if store is None:
            return None
        return store.get(oid)
    return None


def _digest_diff(a: Dict[str, str], b: Dict[str, str]) -> str:
    """Human-readable object-level difference between two digest maps."""
    missing = sorted(set(a) - set(b))
    extra = sorted(set(b) - set(a))
    changed = sorted(oid for oid in set(a) & set(b) if a[oid] != b[oid])
    parts = []
    if missing:
        parts.append(f"missing={missing[:3]}")
    if extra:
        parts.append(f"extra={extra[:3]}")
    if changed:
        parts.append(f"changed={changed[:3]}")
    return ", ".join(parts) or "unknown difference"
