"""One chaos case, end to end: build, arm, load, finalize, judge.

``run_case`` is the unit everything else composes: the sweep calls it
per (scenario, seed), the minimizer calls it per candidate schedule,
and CI calls it through ``python -m repro.chaos``.  The phases:

1. build the scenario's cluster with protocol sanitizers forced on;
2. generate (or accept) the nemesis schedule and arm the engine;
3. drive the workload while the schedule fires;
4. finalize — lift every fault — and let recovery settle;
5. trigger a full scrub pass so silent damage gets its chance to heal;
6. run the oracles (readbacks over the real client path, store
   inspection out-of-band) and fold in the sanitizer report.

Any exception that escapes a phase — a workload that could not make
progress, a protocol violation raised mid-run, a wedged recovery —
fails the verdict with the error recorded; the minimizer treats those
the same as oracle violations.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.analysis.sanitizers import ProtocolViolation
from repro.chaos.engine import NemesisEngine
from repro.chaos.ops import NemesisSchedule
from repro.chaos.oracles import RunVerdict
from repro.chaos.scenarios import SCENARIOS, _build_oracles
from repro.core import MalacologyCluster
from repro.errors import MalacologyError

#: Recovery window after finalize, before oracles run.
SETTLE_SECONDS = 12.0
#: Additional window for triggered scrubs to repair silent damage.
SCRUB_SECONDS = 8.0
#: Absolute cap on post-schedule workload completion (sim seconds).
WORKLOAD_GRACE = 120.0


def run_case(scenario_name: str, seed: int,
             schedule: Optional[NemesisSchedule] = None,
             settle: float = SETTLE_SECONDS) -> RunVerdict:
    """Run one scenario at one seed; returns the composed verdict."""
    scenario = SCENARIOS.get(scenario_name)
    if scenario is None:
        raise ValueError(
            f"unknown scenario {scenario_name!r} "
            f"(known: {', '.join(sorted(SCENARIOS))})")
    verdict = RunVerdict(scenario=scenario_name, seed=seed)
    try:
        _run_case(scenario, seed, schedule, settle, verdict)
    except (ProtocolViolation, MalacologyError, RuntimeError,
            AssertionError, ValueError) as exc:
        verdict.ok = False
        verdict.error = f"{type(exc).__name__}: {exc}"
    return verdict


def _run_case(scenario: Any, seed: int,
              schedule: Optional[NemesisSchedule], settle: float,
              verdict: RunVerdict) -> None:
    cluster = MalacologyCluster.build(seed=seed, sanitize=True,
                                      **scenario.cluster_kwargs)
    engine = NemesisEngine(cluster)
    if schedule is None:
        schedule = scenario.make_schedule(cluster)
    verdict.stats["schedule"] = schedule.to_dict()
    oracles = _build_oracles(scenario.oracle_names)
    engine.arm(schedule)
    client = cluster.new_client("chaos-client")
    proc = client.do(scenario.workload(cluster, client, oracles),
                     name="workload")
    cluster.run(schedule.duration)
    cluster.sim.run_until_complete(
        proc, limit=cluster.sim.now + WORKLOAD_GRACE)
    engine.finalize()
    cluster.run(settle)
    engine.trigger_scrubs()
    cluster.run(SCRUB_SECONDS)

    for name in sorted(oracles):
        oracle = oracles[name]
        if name == "durability":
            check = client.do(oracle.check(client, verdict),
                              name="oracle-durability")
            cluster.sim.run_until_complete(
                check, limit=cluster.sim.now + WORKLOAD_GRACE)
        elif name == "zlog-fencing":
            if oracle.log is None:
                continue  # workload never created the log
            check = client.do(oracle.check(oracle.log, verdict),
                              name="oracle-zlog")
            cluster.sim.run_until_complete(
                check, limit=cluster.sim.now + WORKLOAD_GRACE)
        else:
            oracle.check(cluster, verdict)

    report = cluster.sanitizer_report()
    if report:
        verdict.ok = False
        verdict.sanitizer_report = report
    verdict.stats["net"] = cluster.net.stats()
    verdict.stats["engine"] = engine.status()
    verdict.stats["sim_time"] = round(cluster.sim.now, 6)
