"""Shipped nemesis scenarios: cluster spec + schedule + workload.

A :class:`Scenario` bundles everything one chaos case needs:

* how to build the cluster (``cluster_kwargs`` — sanitizers are always
  forced on by the runner);
* how to generate the nemesis schedule for a seed — drawn from the
  dedicated ``chaos:schedule`` RNG stream of the *cluster's own*
  simulator, so a scenario+seed pair fully determines the run and the
  generation itself never perturbs protocol streams;
* the workload driven against the cluster while faults fire, which
  records every acked write with the run's oracles;
* which oracles judge the end state.

Workloads write each logical update to a *unique* oid and retry
storage errors themselves (the librados loop only retries routing
failures, not EIO): an un-acked write carries no durability
obligation, an acked one must survive anything the schedule did.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.chaos.ops import NemesisSchedule
from repro.chaos.oracles import (
    ChangelogOracle,
    DurabilityOracle,
    ReplicaConvergenceOracle,
    ZlogOracle,
)
from repro.errors import MalacologyError
from repro.sim.event import Timeout

#: Attempts per logical write before the workload declares the
#: cluster unusable (which is itself a verdict-worthy failure).
WRITE_ATTEMPTS = 30
WRITE_RETRY_DELAY = 0.25


class Scenario:
    """One named chaos case; subclasses fill in the three parts."""

    name = "base"
    description = ""
    duration = 20.0
    #: Extra ``MalacologyCluster.build`` kwargs (seed/sanitize are set
    #: by the runner).
    cluster_kwargs: Dict[str, Any] = {}
    #: Which oracle classes judge this scenario's end state.
    oracle_names = ("durability", "replica-convergence")

    def make_schedule(self, cluster: Any) -> NemesisSchedule:
        """Generate this scenario's schedule from the cluster's RNG."""
        raise NotImplementedError

    def workload(self, cluster: Any, client: Any,
                 oracles: Dict[str, Any]) -> Generator:
        """The client script run while the schedule fires."""
        raise NotImplementedError

    def _rng(self, cluster: Any) -> random.Random:
        return cluster.sim.rng(f"chaos:schedule:{self.name}")

    def _osd_names(self, cluster: Any) -> List[str]:
        return [o.name for o in cluster.osds]


def _write_acked(client: Any, oracle: Optional[DurabilityOracle],
                 pool: str, oid: str, data: bytes) -> Generator:
    """Write-full with workload-side retry; records the ack."""
    last: Optional[MalacologyError] = None
    for _ in range(WRITE_ATTEMPTS):
        try:
            yield from client.rados_write_full(pool, oid, data)
        except MalacologyError as exc:
            last = exc
            yield Timeout(WRITE_RETRY_DELAY)
            continue
        if oracle is not None:
            oracle.acked(pool, oid, data)
        return
    raise MalacologyError(
        f"workload could not land {pool}/{oid} after "
        f"{WRITE_ATTEMPTS} attempts: {last}")


def _steady_writes(client: Any, oracle: Optional[DurabilityOracle],
                   pool: str, prefix: str, count: int,
                   gap: float) -> Generator:
    """``count`` unique-oid writes spaced ``gap`` apart."""
    for i in range(count):
        data = f"{prefix}:{i}:".encode().ljust(64, b"x")
        yield from _write_acked(client, oracle, pool,
                                f"{prefix}.{i}", data)
        yield Timeout(gap)


class RollingCrashScenario(Scenario):
    """OSDs flap in a rolling wave while clients write.

    The re-replication claim: acked writes survive any single-replica
    loss, and the acting sets re-converge once everyone is back.
    """

    name = "rolling-crash"
    description = "staggered OSD flaps under a steady write load"
    duration = 24.0
    cluster_kwargs = {"osds": 5, "mdss": 1, "mons": 3}

    def make_schedule(self, cluster: Any) -> NemesisSchedule:
        rng = self._rng(cluster)
        osds = self._osd_names(cluster)
        sched = NemesisSchedule(self.name, duration=self.duration)
        wave = rng.sample(osds, k=min(3, len(osds)))
        sched.add("rolling_flap", at=2.0 + rng.uniform(0.0, 2.0),
                  targets=wave, down_for=3.0 + rng.uniform(0.0, 2.0),
                  stagger=4.0)
        # One extra independent flap later in the run.
        sched.add("flap", at=16.0 + rng.uniform(0.0, 2.0),
                  target=rng.choice(osds),
                  down_for=2.0 + rng.uniform(0.0, 1.5))
        return sched

    def workload(self, cluster: Any, client: Any,
                 oracles: Dict[str, Any]) -> Generator:
        yield from _steady_writes(client, oracles["durability"],
                                  "data", "rolling", 40,
                                  self.duration / 48.0)


class GrayPartitionScenario(Scenario):
    """Slow daemons, frozen tickers, and asymmetric links.

    Nothing in this schedule is a clean failure: every daemon stays
    up, yet timeouts fire, failure reports race heals, and one-way
    links poison failure detection on exactly one side.
    """

    name = "gray-partition"
    description = "slowdowns, ticker pauses, and one-way partitions"
    duration = 24.0
    cluster_kwargs = {"osds": 4, "mdss": 1, "mons": 3}

    def make_schedule(self, cluster: Any) -> NemesisSchedule:
        rng = self._rng(cluster)
        osds = self._osd_names(cluster)
        sched = NemesisSchedule(self.name, duration=self.duration)
        slow = rng.choice(osds)
        sched.add("slow", at=2.0 + rng.uniform(0.0, 2.0), target=slow,
                  factor=20.0 + rng.uniform(0.0, 30.0), lasts=6.0)
        paused = rng.choice([n for n in osds if n != slow])
        sched.add("pause", at=6.0 + rng.uniform(0.0, 2.0),
                  target=paused, lasts=4.0)
        a, b = rng.sample(osds, k=2)
        sched.add("partition_oneway", at=10.0 + rng.uniform(0.0, 2.0),
                  src=a, dst=b, heal_for=4.0)
        sched.add("partition", at=15.0 + rng.uniform(0.0, 2.0),
                  a=rng.choice(osds), b="mon0", heal_for=3.0)
        return sched

    def workload(self, cluster: Any, client: Any,
                 oracles: Dict[str, Any]) -> Generator:
        yield from _steady_writes(client, oracles["durability"],
                                  "data", "gray", 36,
                                  self.duration / 44.0)


class NetChaosScenario(Scenario):
    """Duplication, reordering, detected corruption, and loss.

    UDP-with-extra-steps: the protocols' own sequencing and retry
    machinery must absorb all of it without help.
    """

    name = "net-chaos"
    description = "message duplication, reordering, corruption, loss"
    duration = 20.0
    cluster_kwargs = {"osds": 4, "mdss": 1, "mons": 3}

    def make_schedule(self, cluster: Any) -> NemesisSchedule:
        rng = self._rng(cluster)
        sched = NemesisSchedule(self.name, duration=self.duration)
        sched.add("duplicate", at=1.0 + rng.uniform(0.0, 2.0),
                  rate=0.05 + rng.uniform(0.0, 0.10), lasts=14.0)
        sched.add("reorder", at=2.0 + rng.uniform(0.0, 2.0),
                  rate=0.05 + rng.uniform(0.0, 0.10),
                  spread=2.0 + rng.uniform(0.0, 4.0), lasts=12.0)
        sched.add("corrupt", at=3.0 + rng.uniform(0.0, 2.0),
                  rate=0.02 + rng.uniform(0.0, 0.04), detected=True,
                  lasts=10.0)
        sched.add("loss", at=4.0 + rng.uniform(0.0, 2.0), src="*",
                  dst="*", rate=0.02 + rng.uniform(0.0, 0.04),
                  lasts=8.0)
        return sched

    def workload(self, cluster: Any, client: Any,
                 oracles: Dict[str, Any]) -> Generator:
        yield from _steady_writes(client, oracles["durability"],
                                  "data", "netchaos", 32,
                                  self.duration / 40.0)


class TornStoreScenario(Scenario):
    """The medium misbehaves: EIO, torn commits, bit-rot.

    EIO is a clean refusal the workload retries; a torn commit leaves
    a frankenobject a later retry or scrub repair must overwrite; and
    bit-rot on non-primary replicas is only ever found by scrub.
    """

    name = "torn-store"
    description = "store-level EIO, torn commits, and bit-rot"
    duration = 22.0
    cluster_kwargs = {"osds": 4, "mdss": 1, "mons": 3}

    def make_schedule(self, cluster: Any) -> NemesisSchedule:
        rng = self._rng(cluster)
        osds = self._osd_names(cluster)
        sched = NemesisSchedule(self.name, duration=self.duration)
        sched.add("store_eio", at=2.0 + rng.uniform(0.0, 2.0),
                  rate=0.10 + rng.uniform(0.0, 0.15), lasts=8.0)
        sched.add("store_torn", at=8.0 + rng.uniform(0.0, 2.0),
                  rate=0.08 + rng.uniform(0.0, 0.10),
                  targets=rng.sample(osds, k=2), lasts=6.0)
        sched.add("bitrot", at=16.0 + rng.uniform(0.0, 2.0),
                  pool="data", count=3)
        return sched

    def workload(self, cluster: Any, client: Any,
                 oracles: Dict[str, Any]) -> Generator:
        yield from _steady_writes(client, oracles["durability"],
                                  "data", "torn", 36,
                                  self.duration / 44.0)


class ChangelogFlapScenario(Scenario):
    """OSD flaps while every data write emits a changelog record.

    Producers restart with fresh incarnations; the shard class's
    ``(producer, pseq)`` dedup and class-assigned seqs must keep every
    shard gapless and duplicate-free anyway.
    """

    name = "changelog-flap"
    description = "OSD flaps + message loss under changelog emission"
    duration = 24.0
    cluster_kwargs = {"osds": 4, "mdss": 1, "mons": 3,
                      "changelog": True}
    oracle_names = ("durability", "changelog", "replica-convergence")

    def make_schedule(self, cluster: Any) -> NemesisSchedule:
        rng = self._rng(cluster)
        osds = self._osd_names(cluster)
        sched = NemesisSchedule(self.name, duration=self.duration)
        first, second = rng.sample(osds, k=2)
        sched.add("flap", at=3.0 + rng.uniform(0.0, 2.0), target=first,
                  down_for=3.0 + rng.uniform(0.0, 2.0))
        sched.add("flap", at=11.0 + rng.uniform(0.0, 2.0),
                  target=second, down_for=3.0 + rng.uniform(0.0, 2.0))
        sched.add("loss", at=7.0 + rng.uniform(0.0, 2.0), src="*",
                  dst="*", rate=0.03 + rng.uniform(0.0, 0.05),
                  lasts=6.0)
        return sched

    def workload(self, cluster: Any, client: Any,
                 oracles: Dict[str, Any]) -> Generator:
        yield from _steady_writes(client, oracles["durability"],
                                  "data", "chlog", 36,
                                  self.duration / 44.0)


class ZlogFenceScenario(Scenario):
    """Sequencer-holder failures during ZLog appends.

    The CORFU claim: epoch seals fence every stale writer, so no
    acked position is ever re-issued or overwritten — even when the
    MDS holding the sequencer dies mid-stream.
    """

    name = "zlog-fence"
    description = "MDS/sequencer flaps during ZLog appends"
    duration = 26.0
    cluster_kwargs = {"osds": 4, "mdss": 2, "mons": 3}
    oracle_names = ("zlog-fencing", "replica-convergence")

    def make_schedule(self, cluster: Any) -> NemesisSchedule:
        rng = self._rng(cluster)
        sched = NemesisSchedule(self.name, duration=self.duration)
        sched.add("flap", at=5.0 + rng.uniform(0.0, 3.0),
                  target="mds0", down_for=4.0 + rng.uniform(0.0, 2.0))
        sched.add("flap", at=15.0 + rng.uniform(0.0, 3.0),
                  target=rng.choice(self._osd_names(cluster)),
                  down_for=3.0)
        return sched

    def workload(self, cluster: Any, client: Any,
                 oracles: Dict[str, Any]) -> Generator:
        from repro.zlog import StripeLayout, ZLog
        log = ZLog(client, "chaos", layout=StripeLayout("chaos",
                                                        width=4))
        yield from log.create()
        oracle: ZlogOracle = oracles["zlog-fencing"]
        oracle.log = log  # the runner reads positions back through it
        for i in range(30):
            payload = f"fence-{i}"
            last: Optional[MalacologyError] = None
            for _ in range(WRITE_ATTEMPTS):
                try:
                    pos = yield from log.append(payload)
                except MalacologyError as exc:
                    last = exc
                    yield Timeout(WRITE_RETRY_DELAY)
                    continue
                oracle.acked(pos, payload)
                break
            else:
                raise MalacologyError(
                    f"zlog append {i} never landed: {last}")
            yield Timeout(self.duration / 38.0)


def _build_oracles(names: Any) -> Dict[str, Any]:
    table: Dict[str, Callable[[], Any]] = {
        "durability": DurabilityOracle,
        "changelog": ChangelogOracle,
        "replica-convergence": ReplicaConvergenceOracle,
        "zlog-fencing": ZlogOracle,
    }
    return {name: table[name]() for name in names}


#: The shipped scenario registry, keyed by name.
SCENARIOS: Dict[str, Scenario] = {
    s.name: s for s in [
        RollingCrashScenario(),
        GrayPartitionScenario(),
        NetChaosScenario(),
        TornStoreScenario(),
        ChangelogFlapScenario(),
        ZlogFenceScenario(),
    ]
}
