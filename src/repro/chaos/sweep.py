"""Seed sweeps: fuzz scenarios across seeds, minimize what breaks.

The sweep is the chaos engine's front door: run every requested
scenario at every requested seed, collect verdicts, and for each
failing case delta-debug the schedule down to a minimal repro artifact
(``chaos-repro-<scenario>-<seed>.json``, provenance-stamped).  CI runs
a small fixed sweep and uploads the artifacts on failure; developers
re-run the artifact's ``replay`` command to get the exact failure
back.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional

from repro.chaos.minimize import minimize_case, write_repro_artifact
from repro.chaos.ops import NemesisSchedule
from repro.chaos.runner import run_case

#: The default smoke-sweep scenario set (CI's chaos job).
DEFAULT_SCENARIOS = ("rolling-crash", "net-chaos", "torn-store")


def sweep(scenarios: Optional[List[str]] = None,
          seeds: Optional[List[int]] = None,
          out_dir: str = "chaos-artifacts",
          minimize: bool = True,
          log: Optional[Callable[[str], None]] = None) -> Dict[str, Any]:
    """Run the sweep; returns a JSON-safe summary.

    ``summary["ok"]`` is True iff every case passed.  Failing cases are
    minimized (unless ``minimize=False``) and their artifact paths
    collected under ``summary["artifacts"]``.
    """
    say = log or (lambda _msg: None)
    names = list(scenarios or DEFAULT_SCENARIOS)
    seed_list = list(seeds if seeds is not None else range(20))
    cases: List[Dict[str, Any]] = []
    artifacts: List[str] = []
    failures = 0
    for name in names:
        for seed in seed_list:
            verdict = run_case(name, seed)
            status = "ok" if verdict.ok else "FAIL"
            say(f"{name} seed={seed}: {status}")
            case: Dict[str, Any] = {
                "scenario": name, "seed": seed, "ok": verdict.ok}
            if not verdict.ok:
                failures += 1
                case["violations"] = [v.to_dict()
                                      for v in verdict.violations]
                case["error"] = verdict.error
                schedule = NemesisSchedule.from_dict(
                    verdict.stats["schedule"])
                if minimize:
                    say(f"{name} seed={seed}: minimizing "
                        f"{len(schedule.ops)}-op schedule...")
                    minimal, final, runs = minimize_case(
                        name, seed, schedule, log=say)
                    path = os.path.join(
                        out_dir, f"chaos-repro-{name}-{seed}.json")
                    write_repro_artifact(path, name, seed, schedule,
                                         minimal, final, runs)
                    say(f"{name} seed={seed}: minimized to "
                        f"{len(minimal.ops)} ops in {runs} runs "
                        f"-> {path}")
                    artifacts.append(path)
                    case["artifact"] = path
                    case["minimized_ops"] = len(minimal.ops)
            cases.append(case)
    return {
        "ok": failures == 0,
        "cases": len(cases),
        "failures": failures,
        "scenarios": names,
        "seeds": seed_list,
        "results": cases,
        "artifacts": artifacts,
    }
