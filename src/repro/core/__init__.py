"""Malacology's public face: the cluster builder and the five interfaces.

Downstream services (ZLog, Mantle, and whatever users build next)
program the storage system exclusively through these:

* :class:`ServiceMetadataInterface` — strongly-consistent, versioned
  key-value state on the monitor quorum (section 4.1);
* :class:`DataIOInterface` — dynamic object interface classes on the
  OSDs (section 4.2);
* :class:`SharedResourceInterface` — capability/lease policy control
  (section 4.3.1);
* :class:`FileTypeInterface` — domain-specific inode types
  (section 4.3.2);
* :class:`LoadBalancingInterface` — programmable metadata migration
  (section 4.3.3);
* :class:`DurabilityInterface` — policy/code persistence in the object
  store (section 4.4).
"""

from repro.core.cluster import MalacologyClient, MalacologyCluster
from repro.core.interfaces import (
    DataIOInterface,
    DurabilityInterface,
    FileTypeInterface,
    LoadBalancingInterface,
    ServiceMetadataInterface,
    SharedResourceInterface,
    INTERFACE_TABLE,
)

__all__ = [
    "MalacologyClient",
    "MalacologyCluster",
    "ServiceMetadataInterface",
    "DataIOInterface",
    "SharedResourceInterface",
    "FileTypeInterface",
    "LoadBalancingInterface",
    "DurabilityInterface",
    "INTERFACE_TABLE",
]
