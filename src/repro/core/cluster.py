"""Cluster builder: boot a whole Malacology deployment in one call.

Wires monitors (Paxos quorum), OSDs (replicated object store), and
metadata servers onto one simulated network, creates the standard
pools, and waits until every daemon is serviceable.  This is the entry
point examples and benchmarks use::

    cluster = MalacologyCluster.build(osds=4, mdss=2, seed=7)
    client = cluster.new_client("app")
    cluster.do(client.fs_mkdir("/logs"))
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from repro.changelog import (
    CHANGELOG_POOL,
    AuditPipeline,
    ChangelogConsumer,
    ChangelogLayout,
    ChangelogProducer,
    ChangelogWriter,
)
from repro.errors import MalacologyError
from repro.mds.client import FsClient
from repro.mds.server import MDS, METADATA_POOL
from repro.mgr.daemon import MgrDaemon
from repro.mgr.health import (
    HealthCheck,
    default_checks,
    evaluate_health,
    sample_cluster,
)
from repro.monitor.monitor import Monitor, MonitorClient
from repro.msg import Daemon
from repro.rados.client import RadosClient
from repro.rados.osd import OSD
from repro.sim import Network, Simulator
from repro.sim.kernel import Process
from repro.sim.network import LatencyModel, lan_latency


class MalacologyClient(Daemon, RadosClient, FsClient):
    """A full-stack client: monitor, object store, and file system."""

    def __init__(self, sim: Simulator, network: Network, name: str,
                 mon_names: List[str]):
        super().__init__(sim, network, name)
        self.init_mon_client(mon_names)
        self.init_fs_client()
        self.init_watch_client()

    def do(self, gen: Generator, name: str = "script") -> Process:
        return self.spawn(gen, name=f"{self.name}:{name}")


class MalacologyCluster:
    """A booted simulation deployment plus conveniences to drive it."""

    DEFAULT_POOLS = {
        METADATA_POOL: {"size": 2, "pg_num": 32},
        "data": {"size": 2, "pg_num": 32},
        # Present in every cluster (so the map/Paxos history is the
        # same with or without the changelog enabled); size-1 so shard
        # appends never generate replication traffic in the shared
        # schedule.
        CHANGELOG_POOL: {"size": 1, "pg_num": 8},
    }

    def __init__(self, sim: Simulator, net: Network,
                 mons: List[Monitor], osds: List[OSD], mdss: List[MDS],
                 admin: MalacologyClient):
        self.sim = sim
        self.net = net
        self.mons = mons
        self.osds = osds
        self.mdss = mdss
        self.admin = admin
        self.mgr: Optional[MgrDaemon] = None
        self.changelog_writer: Optional[ChangelogWriter] = None
        self.changelog_consumers: List[ChangelogConsumer] = []
        self._client_seq = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, osds: int = 4, mdss: int = 1, mons: int = 3,
              seed: int = 0, proposal_interval: float = 0.1,
              pools: Optional[Dict[str, Dict[str, Any]]] = None,
              latency: Optional[LatencyModel] = None,
              mon_backing: str = "ram", mgr: bool = False,
              mgr_interval: float = 2.0, changelog: bool = False,
              sanitize: Optional[bool] = None,
              profile: Optional[bool] = None) -> "MalacologyCluster":
        sim = Simulator(seed=seed)
        # sanitize=True opts this cluster into the runtime protocol
        # sanitizers; False forces them off even when the
        # MALACOLOGY_SANITIZE env var installed them; None keeps
        # whatever the environment decided.
        if sanitize:
            from repro.analysis.sanitizers import install_sanitizers
            install_sanitizers(sim)
        elif sanitize is False:
            sim.sanitizers = None
        # profile follows the same tri-state contract, mirroring the
        # MALACOLOGY_PROFILE env opt-in.  The profiler planes are
        # passive (counter bumps and wall-clock reads only), so a
        # profiled cluster's event schedule is byte-identical to an
        # unprofiled one — pinned by an integration test.
        if profile:
            from repro.profiling import install_profiler
            install_profiler(sim)
        elif profile is False:
            from repro.profiling import uninstall_profiler
            uninstall_profiler(sim)
        net = Network(sim, latency=latency or lan_latency())
        mon_names = [f"mon{i}" for i in range(mons)]
        monitors = [
            Monitor(sim, net, name, mon_names,
                    proposal_interval=proposal_interval,
                    backing=mon_backing)
            for name in mon_names
        ]
        _settle(sim, lambda: any(m.is_leader for m in monitors),
                "monitor quorum")
        osd_daemons = [OSD(sim, net, f"osd{i}", mon_names)
                       for i in range(osds)]
        _settle(sim, lambda: all(o.booted for o in osd_daemons),
                "OSD boot")
        admin = MalacologyClient(sim, net, "admin", mon_names)
        for pool_name, cfg in (pools or cls.DEFAULT_POOLS).items():
            proc = admin.do(admin.rados_create_pool(
                pool_name, size=cfg.get("size", 2),
                pg_num=cfg.get("pg_num", 32), ec=cfg.get("ec"),
                backend=cfg.get("backend"), cache=cfg.get("cache")))
            sim.run_until_complete(proc)
        mds_daemons = [MDS(sim, net, f"mds{i}", mon_names, rank=i)
                       for i in range(mdss)]
        _settle(sim, lambda: all(m.booted for m in mds_daemons),
                "MDS boot")
        cluster = cls(sim=sim, net=net, mons=monitors,
                      osds=osd_daemons, mdss=mds_daemons, admin=admin)
        if changelog:
            # Same non-perturbation contract as the mgr (see
            # enable_changelog); boots during the settle window below.
            cluster.enable_changelog()
        if mgr:
            # Created before the settle window so the mgr boots during
            # it.  Because the mgr's traffic never touches the shared
            # network RNG stream (endpoint latency override) and its
            # ticker is jitter-free, the other daemons' schedules are
            # identical with or without it.
            cluster.enable_mgr(interval=mgr_interval)
        sim.run(until=sim.now + 1.0)  # let maps settle everywhere
        return cluster

    def enable_mgr(self, interval: float = 2.0,
                   checks: Optional[List[HealthCheck]] = None,
                   name: str = "mgr0") -> MgrDaemon:
        """Attach a manager daemon scraping every booted daemon.

        Does not advance simulated time; run the sim (or call
        ``run()``) afterwards to let it boot and scrape.
        """
        if self.mgr is not None:
            return self.mgr
        targets: Dict[str, str] = {}
        for m in self.mons:
            targets[m.name] = "mon"
        for o in self.osds:
            targets[o.name] = "osd"
        for d in self.mdss:
            targets[d.name] = "mds"
        for d in self.changelog_daemons():
            targets[d.name] = "changelog"
        self.mgr = MgrDaemon(self.sim, self.net, name, self.mon_names,
                             targets, checks=checks,
                             scrape_interval=interval)
        return self.mgr

    def enable_changelog(self, shards: int = 4, audit: bool = True,
                         name: str = "chlog0"
                         ) -> ChangelogWriter:
        """Attach the changelog subsystem: writer, producers, audit.

        Does not advance simulated time (same as ``enable_mgr``); the
        writer and consumers boot during the next sim run.  All
        changelog daemons install fixed-latency network overrides and
        producers emit via fire-and-forget casts, so the non-changelog
        daemons' schedules are byte-identical with or without this
        (pinned by an integration test).
        """
        if self.changelog_writer is not None:
            return self.changelog_writer
        layout = ChangelogLayout(width=shards)
        self.changelog_writer = ChangelogWriter(
            self.sim, self.net, name, self.mon_names, layout=layout)
        for d in [*self.mdss, *self.osds]:
            d.changelog = ChangelogProducer(d, name)
        if audit:
            self.changelog_consumers.append(AuditPipeline(
                self.sim, self.net, f"{name}-audit", self.mon_names,
                layout=layout))
        return self.changelog_writer

    def changelog_daemons(self) -> List[Daemon]:
        extra = [self.changelog_writer] \
            if self.changelog_writer is not None else []
        return [*extra, *self.changelog_consumers]

    @property
    def audit_pipeline(self) -> Optional[AuditPipeline]:
        for c in self.changelog_consumers:
            if isinstance(c, AuditPipeline):
                return c
        return None

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    @property
    def mon_names(self) -> List[str]:
        return [m.name for m in self.mons]

    def new_client(self, name: Optional[str] = None) -> MalacologyClient:
        if name is None:
            self._client_seq += 1
            name = f"client{self._client_seq}"
        return MalacologyClient(self.sim, self.net, name, self.mon_names)

    def run(self, seconds: float) -> None:
        self.sim.run(until=self.sim.now + seconds)

    def do(self, gen: Generator, limit: float = 1e9) -> Any:
        """Run one admin-client script to completion."""
        proc = self.admin.do(gen)
        return self.sim.run_until_complete(proc, limit=limit)

    # ------------------------------------------------------------------
    # Telemetry aggregation (cluster-wide admin socket)
    # ------------------------------------------------------------------
    def daemons(self) -> List[Daemon]:
        """Every daemon the cluster booted (clients are not included)."""
        extra = [self.mgr] if self.mgr is not None else []
        return [*self.mons, *self.osds, *self.mdss,
                *self.changelog_daemons(), *extra, self.admin]

    def daemon_command(self, daemon: str, command: str,
                       args: Optional[Dict[str, Any]] = None) -> Any:
        """Admin-socket command by daemon name, with structured errors.

        Never raises for operational failures: an unknown daemon,
        unknown command, or a daemon-side error comes back as
        ``{"error": {"code": ..., "message": ...}}`` so callers (and
        the mgr's own tooling) can act on the code instead of
        unwinding through exceptions.
        """
        by_name = {d.name: d for d in self.daemons()}
        target = by_name.get(daemon)
        if target is None:
            return {"error": {"code": "ENOENT",
                              "message": f"no such daemon: {daemon!r}"}}
        try:
            return target.admin_command(command, args)
        except MalacologyError as exc:
            return {"error": {"code": exc.code, "message": str(exc)}}

    def telemetry_dump(self) -> Dict[str, Any]:
        """``telemetry.dump`` on every daemon, keyed by daemon name.

        Out-of-band like Ceph's admin socket: works even when parts of
        the cluster are down (a crashed daemon still answers with its
        — reset — registry).
        """
        return {d.name: d.admin_command("telemetry.dump")
                for d in self.daemons()}

    def store_status(self, pool: Optional[str] = None) -> Dict[str, Any]:
        """``store.status`` across all OSDs, keyed by OSD name.

        Out-of-band (admin socket): shows each hosted PG's backend
        profile and occupancy, optionally filtered to one pool.
        """
        args = {"pool": pool} if pool is not None else None
        return {o.name: o.admin_command("store.status", args)
                for o in self.osds}

    def profile_status(self) -> Dict[str, Any]:
        """``profile.status``: kernel-plane summary (out-of-band)."""
        return self.admin.admin_command("profile.status")

    def profile_dump(self, scope: str = "cluster",
                     collapsed: bool = False) -> Dict[str, Any]:
        """Full profiler dump; cluster scope includes the wall plane."""
        args: Dict[str, Any] = {"scope": scope}
        if collapsed:
            args["collapsed"] = True
        return self.admin.admin_command("profile.dump", args)

    def write_trace(self, path: str) -> str:
        """Export collected spans + kernel tape as a Perfetto
        ``trace.json`` (loadable at https://ui.perfetto.dev)."""
        from repro.profiling import write_chrome_trace
        return write_chrome_trace(self.sim, path)

    def telemetry_reset(self) -> None:
        """Clear perf counters cluster-wide and drop collected traces."""
        for d in self.daemons():
            d.admin_command("telemetry.reset")
        if self.sim.trace_collector is not None:
            self.sim.trace_collector.reset()

    def telemetry_trace(self, trace_id: Optional[int] = None,
                        render: bool = False) -> Any:
        """List trace ids, or dump/render one span tree.

        The collector is cluster-wide (all daemons share it through the
        simulator), so any daemon answers identically; we ask the admin
        client.
        """
        args: Dict[str, Any] = {}
        if trace_id is not None:
            args["trace_id"] = trace_id
        if render:
            args["render"] = True
        return self.admin.admin_command("telemetry.trace", args)

    # ------------------------------------------------------------------
    # Health (mgr-backed when enabled, out-of-band otherwise)
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """Cluster health report (``ceph health detail`` analogue).

        With a mgr: its last scrape's report.  Without one: evaluate
        the default checks against an out-of-band sample right now —
        no messages, no simulated time.
        """
        if self.mgr is not None and self.mgr.alive:
            return self.mgr.admin_command("health")
        sample = sample_cluster(self)
        return evaluate_health(default_checks(), sample).to_dict()

    def status(self) -> Dict[str, Any]:
        """``ceph -s`` analogue (requires an enabled mgr)."""
        if self.mgr is None:
            raise RuntimeError(
                "cluster status requires a mgr; build with mgr=True "
                "or call enable_mgr()")
        return self.mgr.admin_command("status")

    def sanitizer_report(self) -> List[Dict[str, Any]]:
        """Violations the protocol sanitizers recorded (if enabled).

        Runs the end-of-run liveness checks first; returns ``[]`` when
        sanitizers are off or nothing was violated.
        """
        registry = getattr(self.sim, "sanitizers", None)
        if registry is None:
            return []
        registry.finish()
        return registry.to_dict()

    def mds_of_rank(self, rank: int) -> MDS:
        for mds in self.mdss:
            if mds.rank == rank:
                return mds
        raise KeyError(f"no MDS with rank {rank}")

    def leader_monitor(self) -> Monitor:
        for m in self.mons:
            if m.alive and m.is_leader:
                return m
        raise RuntimeError("no monitor leader")


def _settle(sim: Simulator, ready, what: str,
            deadline: float = 120.0) -> None:
    start = sim.now
    while sim.now - start < deadline:
        if ready():
            return
        sim.run(until=sim.now + 0.5)
    raise AssertionError(f"cluster failed to settle: {what}")
