"""The five Malacology interfaces as first-class programmable objects.

Each class wraps one internal subsystem behind the composition-friendly
API the paper proposes (Table 2).  All operation methods are generators
to be driven on a :class:`~repro.core.cluster.MalacologyClient` (e.g.
``cluster.do(iface.put("key", "value"))``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional

from repro.mds.inode import FileType, file_type_registry
from repro.mds.server import METADATA_POOL


class ServiceMetadataInterface:
    """Strongly-consistent, versioned service metadata (section 4.1).

    Backed by the monitor quorum's Paxos-replicated key-value store.
    Guards (authorization / sanitization hooks) are registered on the
    monitors at deploy time via :meth:`register_guard`.
    """

    #: Table 2 row metadata.
    provides = "consensus/consistency"
    production_example = "Zookeeper/Chubby coordination"
    ceph_example = "cluster state management"

    def __init__(self, client: Any, cluster: Optional[Any] = None):
        self._client = client
        self._cluster = cluster

    def put(self, key: str, value: Any) -> Generator:
        version = yield from self._client.mon_kv_put(key, value)
        return version

    def get(self, key: str) -> Generator:
        entry = yield from self._client.mon_kv_get(key)
        return entry

    def list(self, prefix: str = "") -> Generator:
        entries = yield from self._client.mon_kv_list(prefix)
        return entries

    def register_guard(self, prefix: str,
                       guard: Callable[[str, Any], Any]) -> None:
        """Install a server-side guard on every monitor.

        Guards run inside the replicated state machine, so they must be
        deterministic; they may sanitize the value or raise
        ``NotPermitted``.
        """
        if self._cluster is None:
            raise RuntimeError("guard registration needs cluster access")
        for mon in self._cluster.mons:
            mon.store.register_kv_guard(prefix, guard)


class DataIOInterface:
    """Dynamic object interface classes on the OSDs (section 4.2)."""

    provides = "transaction/atomicity"
    production_example = "Swift in situ storage/compute"
    ceph_example = "object interface classes"

    def __init__(self, client: Any):
        self._client = client

    def install(self, name: str, version: int, source: str,
                category: str = "other") -> Generator:
        """Publish a class cluster-wide (map embed + gossip)."""
        yield from self._client.rados_install_interface(
            name, version, source, category=category)

    def installed(self) -> Generator:
        interfaces = yield from self._client.rados_ls_interfaces()
        return interfaces

    def execute(self, pool: str, oid: str, cls: str, method: str,
                args: Optional[Dict[str, Any]] = None,
                epoch: Optional[int] = None) -> Generator:
        result = yield from self._client.rados_exec(
            pool, oid, cls, method, args, epoch=epoch)
        return result


class SharedResourceInterface:
    """Capability/lease policy control (section 4.3.1).

    Switches the cluster between lease modes and tunes the
    latency/throughput dial of Figures 5-7.
    """

    provides = "serialization/batching"
    production_example = "MPI collective I/O, burst buffers"
    ceph_example = "POSIX metadata protocols"

    def __init__(self, client: Any):
        self._client = client

    def set_lease_policy(self, mode: str, min_hold: float = 0.0,
                         quota: int = 0,
                         max_hold: float = 0.25) -> Generator:
        yield from self._client.mon_submit([{
            "op": "map_update", "kind": "mds",
            "actions": [{"action": "set_lease_policy",
                         "policy": {"mode": mode, "min_hold": min_hold,
                                    "quota": quota,
                                    "max_hold": max_hold}}]}])
        yield from self._client.mon_get_map("mds")

    def get_lease_policy(self) -> Generator:
        m = yield from self._client.mon_get_map("mds")
        return dict(m.lease_policy)


class FileTypeInterface:
    """Domain-specific inode types (section 4.3.2).

    Type plugins are code and register process-wide (every MDS sees
    them, like compiled-in object classes); creating an inode *of* a
    type is a normal metadata operation.
    """

    provides = "data/metadata access"
    production_example = "MPI architecture-specific code"
    ceph_example = "file striping strategy"

    def __init__(self, client: Any):
        self._client = client

    @staticmethod
    def register_type(file_type: FileType) -> None:
        file_type_registry.register(file_type)

    @staticmethod
    def known_type(name: str) -> bool:
        return file_type_registry.known(name)

    def create(self, path: str, file_type: str) -> Generator:
        inode = yield from self._client.fs_create(path,
                                                  file_type=file_type)
        return inode

    def execute(self, path: str, method: str,
                args: Optional[Dict[str, Any]] = None) -> Generator:
        result = yield from self._client.fs_exec(path, method, args)
        return result


class LoadBalancingInterface:
    """Programmable metadata load balancing (section 4.3.3).

    Mantle's control surface: publish a policy (durably, via the
    Durability interface), flip the active version (via Service
    Metadata / the MDS map), and set the routing mode that Figures 11
    and 12 compare.
    """

    provides = "migration/sampling"
    production_example = "VMWare VM migration"
    ceph_example = "migrate POSIX metadata"

    def __init__(self, client: Any):
        self._client = client

    def publish_policy(self, version: str, source: str) -> Generator:
        """Store policy source durably and activate that version.

        Section 5.1: "the version of the load balancer corresponds to
        an object name in the balancing policy" — the MDS dereferences
        the version by reading that object from RADOS.
        """
        yield from self._client.rados_write_full(
            METADATA_POOL, f"mantle.policy.{version}", source.encode())
        yield from self.set_version(version)

    def set_version(self, version: str) -> Generator:
        yield from self._client.mon_submit([{
            "op": "map_update", "kind": "mds",
            "actions": [{"action": "set_balancer_version",
                         "version": version}]}])
        yield from self._client.mon_get_map("mds")

    def get_version(self) -> Generator:
        m = yield from self._client.mon_get_map("mds")
        return m.balancer_version

    def set_routing_mode(self, mode: str) -> Generator:
        yield from self._client.mon_submit([{
            "op": "map_update", "kind": "mds",
            "actions": [{"action": "set_routing_mode", "mode": mode}]}])
        yield from self._client.mon_get_map("mds")

    def migrate(self, path: str, target_rank: int) -> Generator:
        """Explicit one-shot migration (bypassing any policy)."""
        m = yield from self._client.mon_get_map("mds")
        owner = m.owner_of(path)
        # Migration runs on the owning MDS; we poke it via a metadata op
        # carried in the policy channel: tests and examples instead call
        # ``mds.migrate_subtree`` directly through the cluster handle.
        return owner


class DurabilityInterface:
    """Persistence of dynamic code and policies (section 4.4)."""

    provides = "persistence/safety"
    production_example = "S3/Swift interfaces (RESTful API)"
    ceph_example = "object store library"

    def __init__(self, client: Any, pool: str = METADATA_POOL):
        self._client = client
        self._pool = pool

    def store(self, name: str, blob: Any) -> Generator:
        yield from self._client.rados_write_full(self._pool, name, blob)

    def fetch(self, name: str) -> Generator:
        blob = yield from self._client.rados_read(self._pool, name)
        return blob

    def exists(self, name: str) -> Generator:
        from repro.errors import NotFound

        try:
            yield from self._client.rados_stat(self._pool, name)
        except NotFound:
            return False
        return True


#: Table 2 regenerated from code: interface -> (paper section, provided
#: functionality, production example, Ceph example).
INTERFACE_TABLE = [
    ("Service Metadata", "4.1", ServiceMetadataInterface.provides,
     ServiceMetadataInterface.production_example,
     ServiceMetadataInterface.ceph_example),
    ("Data I/O", "4.2", DataIOInterface.provides,
     DataIOInterface.production_example, DataIOInterface.ceph_example),
    ("Shared Resource", "4.3.1", SharedResourceInterface.provides,
     SharedResourceInterface.production_example,
     SharedResourceInterface.ceph_example),
    ("File Type", "4.3.2", FileTypeInterface.provides,
     FileTypeInterface.production_example, FileTypeInterface.ceph_example),
    ("Load Balancing", "4.3.3", LoadBalancingInterface.provides,
     LoadBalancingInterface.production_example,
     LoadBalancingInterface.ceph_example),
    ("Durability", "4.4", DurabilityInterface.provides,
     DurabilityInterface.production_example,
     DurabilityInterface.ceph_example),
]
