"""Bundled datasets for the motivation figures.

Figure 2 and Table 1 of the paper are a survey of the *real* Ceph
source tree, not a system measurement; :mod:`repro.data.ceph_survey`
transcribes the published numbers so the benchmark harness can
regenerate the same plot series and table rows (the substitution is
documented in DESIGN.md).
"""

from repro.data.ceph_survey import (
    CLASS_GROWTH_BY_YEAR,
    CATEGORY_TABLE,
    growth_series,
    category_rows,
)

__all__ = [
    "CLASS_GROWTH_BY_YEAR",
    "CATEGORY_TABLE",
    "growth_series",
    "category_rows",
]
