"""Transcription of the paper's Ceph object-class survey.

Figure 2 ("since 2010, the growth in the number of co-designed object
storage interfaces in Ceph has been accelerating") plots two series:
the number of object *classes* (groups of interfaces) and the total
number of *methods* (API end-points).  Table 1 breaks the methods down
by category: Logging 11, Metadata/Management 74, Locking 6, Other 4 —
95 methods total.

The yearly breakdown below is a transcription of the figure's shape
anchored to the table's 2016 totals: slow start (2010-2012), visible
acceleration after 2013, ending at the paper's totals.  Absolute
per-year values are read off the published plot and are approximate;
the *endpoints* and the *acceleration property* (greater growth in the
second half of the window) are what the reproduction asserts.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: year -> (cumulative classes, cumulative methods).
CLASS_GROWTH_BY_YEAR: Dict[int, Tuple[int, int]] = {
    2010: (2, 4),
    2011: (4, 10),
    2012: (5, 14),
    2013: (8, 23),
    2014: (12, 38),
    2015: (18, 63),
    2016: (28, 95),
}

#: Table 1 rows: (category, example, method count).
CATEGORY_TABLE: List[Tuple[str, str, int]] = [
    ("Logging", "Geographically distribute replicas", 11),
    ("Metadata/Management",
     "Snapshots in the block device OR scan extents for file system "
     "repair", 74),
    ("Locking", "Grants clients exclusive access", 6),
    ("Other", "Garbage collection, reference counting", 4),
]

TOTAL_METHODS = sum(count for _, _, count in CATEGORY_TABLE)


def growth_series() -> List[Tuple[int, int, int]]:
    """(year, classes, methods) rows in chronological order."""
    return [(year, classes, methods)
            for year, (classes, methods)
            in sorted(CLASS_GROWTH_BY_YEAR.items())]


def category_rows() -> List[Tuple[str, str, int]]:
    return list(CATEGORY_TABLE)


def is_accelerating(series: List[Tuple[int, int, int]]) -> bool:
    """Figure 2's claim: growth in the later half beats the earlier.

    Compared on methods added per year across the two halves of the
    window.
    """
    if len(series) < 4:
        return False
    mid = len(series) // 2
    first = series[mid][2] - series[0][2]
    second = series[-1][2] - series[mid][2]
    first_years = series[mid][0] - series[0][0]
    second_years = series[-1][0] - series[mid][0]
    return (second / max(second_years, 1)) > (first / max(first_years, 1))
