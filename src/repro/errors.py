"""Exception hierarchy for the Malacology reproduction.

Every error raised across daemon boundaries derives from
:class:`MalacologyError` so callers can catch storage-stack failures
without swallowing programming errors.  Errors that travel over the
simulated wire (RPC) carry a stable ``code`` so they can be re-raised
on the client side with their identity intact.
"""

from __future__ import annotations

import contextlib
from typing import Iterator


class MalacologyError(Exception):
    """Base class for all errors raised by the storage stack."""

    #: Stable wire code; subclasses override.  Mirrors errno-style codes
    #: used by Ceph (e.g. object classes return -EEXIST and friends).
    code = "EIO"


class TimeoutError_(MalacologyError):
    """An RPC or lease acquisition did not complete within its deadline.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`TimeoutError`; exported as ``RpcTimeout`` from ``repro.msg``.
    """

    code = "ETIMEDOUT"


class ConnectionTimeout(MalacologyError):
    """A synchronous-over-asynchronous read was cancelled at its deadline.

    Mantle uses this for its "half the balancing tick interval" policy
    read timeout (paper section 5.1.2): if the RADOS read of the balancer
    policy does not return in time, the balancer immediately reports a
    Connection Timeout error rather than blocking the MDS.
    """

    code = "ETIMEDOUT"


class NotFound(MalacologyError):
    """Object, inode, key, or registered interface does not exist."""

    code = "ENOENT"


class AlreadyExists(MalacologyError):
    """Create-exclusive failed because the target already exists."""

    code = "EEXIST"


class NotPermitted(MalacologyError):
    """Operation rejected by an access or sanitization policy."""

    code = "EPERM"


class InvalidArgument(MalacologyError):
    """Malformed request or out-of-domain parameter."""

    code = "EINVAL"


class StaleEpoch(MalacologyError):
    """Request tagged with an out-of-date epoch was rejected.

    The CORFU storage interface raises this when a client I/O carries an
    epoch older than the object's sealed epoch; the client must refresh
    its view and retry (paper section 5.2.2).
    """

    code = "ESTALE"


class ReadOnly(MalacologyError):
    """Write attempted against a position that was already written.

    Enforces the write-once contract of the shared-log storage
    interface.
    """

    code = "EROFS"


class NotPrimary(MalacologyError):
    """An OSD received a client op for a placement group it does not lead.

    Clients treat this as a signal to refresh the OSD map and resend.
    The code must stay distinct from every other error's: clients
    dispatch their retry strategy on it.
    """

    code = "ENOTPRIM"


class DaemonDown(MalacologyError):
    """The target daemon is not running (crashed or not yet booted)."""

    code = "EHOSTDOWN"


class CapRevoked(MalacologyError):
    """A capability was revoked while an operation depended on it."""

    code = "EINTR"


class WrongMDS(MalacologyError):
    """Request sent to an MDS that does not own the path ("client
    mode" routing, Figure 11): the message encodes the owning rank as
    ``rank=<n>``; clients refresh the MDS map and retry there."""

    code = "EREMOTE"

    def __init__(self, rank: int):
        super().__init__(f"rank={rank}")
        self.rank = rank


class TryAgain(MalacologyError):
    """The target subtree is frozen mid-migration; retry shortly."""

    code = "EBUSY"


class PolicyError(MalacologyError):
    """A dynamically loaded policy or object class failed to compile/run.

    Dynamic code (Mantle balancer policies, object interface classes) is
    sandboxed; compilation errors and runtime faults inside the sandbox
    surface as this error and are also recorded in the central cluster
    log so operators do not need to visit individual daemons (paper
    section 5.1.3).
    """

    code = "EBADEXEC"


class QuorumLost(MalacologyError):
    """The monitor cluster cannot form a majority; consensus stalls."""

    code = "EAGAIN"


#: Map of wire codes back to exception classes for RPC re-raising.
#: Codes must be unique: a collision would silently rebuild one error
#: type as another on the client side (guarded by the assertion below).
_CODE_TO_ERROR = {
    cls.code: cls
    for cls in [
        TimeoutError_,
        NotFound,
        AlreadyExists,
        NotPermitted,
        InvalidArgument,
        StaleEpoch,
        ReadOnly,
        NotPrimary,
        DaemonDown,
        CapRevoked,
        TryAgain,
        PolicyError,
        QuorumLost,
    ]
}

# Every registered code must be unique — a collision silently rebuilds
# one error type as another on the client side.
assert len(_CODE_TO_ERROR) == 13, "wire code collision"


def _rebuild_wrong_mds(code: str, message: str) -> "WrongMDS":
    try:
        rank = int(message.split("rank=", 1)[1])
    except (IndexError, ValueError):
        rank = 0
    return WrongMDS(rank)


@contextlib.contextmanager
def sandbox_guard(what: str) -> Iterator[None]:
    """Containment boundary for user-supplied sandboxed code.

    Mantle policies and objclass methods are arbitrary scripts: *any*
    failure inside them (SyntaxError, ZeroDivisionError, a typo...)
    must surface as a typed :class:`PolicyError` instead of crashing
    the daemon — that is the sandbox contract (paper section 5.1.3).
    This guard is the one audited place allowed to catch ``Exception``;
    ad-hoc broad handlers elsewhere are rejected by lint rule MAL004.

    Typed storage-stack errors pass through untouched so sandboxed
    code can still raise e.g. ``NotFound`` deliberately.
    """
    try:
        yield
    except MalacologyError:
        raise
    # mal: disable=MAL004 -- the sandbox boundary: arbitrary
    # user-script failures become typed PolicyError here, and
    # MalacologyError is re-raised unchanged above
    except Exception as exc:
        raise PolicyError(
            f"{what}: {type(exc).__name__}: {exc}") from exc


def error_from_code(code: str, message: str) -> MalacologyError:
    """Rebuild an exception from its wire representation.

    Unknown codes degrade to the base :class:`MalacologyError` rather
    than raising, so protocol evolution never crashes the transport.
    """
    if code == WrongMDS.code:
        return _rebuild_wrong_mds(code, message)
    return _CODE_TO_ERROR.get(code, MalacologyError)(message)
