"""Mantle: the programmable metadata load balancer (paper section 5.1).

Mantle separates load-balancing *policy* from migration *mechanism*:
administrators inject small scripts that decide **when** to migrate and
**where/how much** load to send; the MDS provides measurement,
partitioning, and migration.  Re-implemented on Malacology, Mantle
inherits:

* **versioning** — the active policy version lives in the MDS map,
  kept consistent by the monitors' Paxos (section 5.1.1);
* **durability** — policy source is stored in RADOS under an object
  named by the version; balancers dereference the version with a
  bounded read (half the balancing tick) and surface a Connection
  Timeout error rather than stalling the MDS (section 5.1.2);
* **centralized logging** — errors, warnings, and decisions go to the
  monitor cluster log instead of per-server files (section 5.1.3).
"""

from repro.mantle.policy import MantlePolicy
from repro.mantle.balancer import MantleBalancer, attach_balancers
from repro.mantle import builtin

__all__ = ["MantlePolicy", "MantleBalancer", "attach_balancers", "builtin"]
