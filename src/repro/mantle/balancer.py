"""The Mantle balancer engine that runs on every MDS.

Each balancing tick (``MDS.BALANCE_INTERVAL``, 10 s by default — the
paper's balancing tick):

1. Compare the policy version in the MDS map against the loaded one;
   if it changed, dereference the version by reading the policy object
   from RADOS, bounded by *half the tick interval* — on expiry the
   balancer reports ``Connection Timeout`` to the central cluster log
   and keeps the previous policy (section 5.1.2);
2. Assemble the ``mds[]`` table from load gossip;
3. Run the policy sandbox: ``when()`` gates, ``where()`` fills
   ``targets`` (how much load to ship to each rank);
4. Map target amounts onto concrete subtrees/inodes by popularity and
   drive ``MDS.migrate_subtree`` — the mechanism half of Mantle.

Policy faults never take the MDS down: they are logged centrally and
balancing simply skips a tick (section 5.1.3).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from repro.errors import (
    ConnectionTimeout,
    MalacologyError,
    PolicyError,
)
from repro.mantle.policy import MantlePolicy
from repro.mds.server import MDS, METADATA_POOL
from repro.mgr.audit import MantleAuditTrail
from repro.sim.event import Future, Timeout


class MantleBalancer:
    """Balancer instance attached to one MDS."""

    #: Counters whose tick-over-tick deltas the audit trail records —
    #: the measurable footprint of executing a migration decision.
    AUDIT_COUNTERS = ("migrate.export", "migrate.inodes", "rpc.tx")

    def __init__(self, mds: MDS, default_policy: Optional[MantlePolicy]
                 = None):
        self.mds = mds
        self.policy: Optional[MantlePolicy] = default_policy
        self.state: Dict[str, Any] = {}
        #: Bench hook: fn(decision_dict) after each tick that migrated.
        self.decision_hook: Optional[Any] = None
        #: Decision audit trail; the mgr collects it via the
        #: ``mantle.audit`` admin command during its scrape.
        self.audit = MantleAuditTrail()
        mds.balancer = self
        if not mds.has_admin_command("mantle.audit"):
            # Resolve through the daemon so re-attaching a balancer
            # (benchmarks do) always serves the live trail.
            mds.register_admin_command(
                "mantle.audit",
                lambda args: mds.balancer.audit.records(
                    since_seq=int((args or {}).get("since_seq", 0))))

    # ------------------------------------------------------------------
    # Tick
    # ------------------------------------------------------------------
    def tick(self) -> Generator:
        mds = self.mds
        m = mds.mdsmap
        if m is None:
            return
        yield from self._refresh_policy(m)
        now = mds.sim.now
        if self.policy is None:
            self.audit.record(now, mds.rank, None, "no-policy")
            return
        table = self._mds_table(m)
        if table is None:
            self.audit.record(now, mds.rank, self.policy.version,
                              "no-table")
            return
        try:
            go, targets, routing = self.policy.decide(
                table, mds.rank, self.state)
        except PolicyError as exc:
            self.audit.record(now, mds.rank, self.policy.version,
                              "policy-error", load_table=table,
                              error=str(exc))
            yield from mds.mon_log(
                "ERR", f"mantle policy {self.policy.version!r}: {exc}")
            return
        decision = {
            "when": bool(go),
            "targets": list(targets) if go and targets else [],
            "routing": routing,
        }
        if routing is not None and routing != m.routing_mode:
            yield from mds.mon_submit([{
                "op": "map_update", "kind": "mds",
                "actions": [{"action": "set_routing_mode",
                             "mode": routing}]}])
        if not go:
            self.audit.record(now, mds.rank, self.policy.version,
                              "decided", load_table=table,
                              decision=decision)
            return
        before = {name: mds.perf.get(name)
                  for name in self.AUDIT_COUNTERS}
        moves = yield from self._execute_targets(targets)
        deltas = {name: mds.perf.get(name) - start
                  for name, start in before.items()
                  if mds.perf.get(name) != start}
        self.audit.record(now, mds.rank, self.policy.version,
                          "decided", load_table=table,
                          decision=decision, moves=moves,
                          counter_deltas=deltas)

    # ------------------------------------------------------------------
    # Policy loading (versioned + durable)
    # ------------------------------------------------------------------
    def _refresh_policy(self, m) -> Generator:
        version = m.balancer_version
        if not version:
            return
        if self.policy is not None and self.policy.version == version:
            return
        deadline = self.mds.BALANCE_INTERVAL / 2.0
        try:
            blob = yield from self._read_with_deadline(
                f"mantle.policy.{version}", deadline)
        except ConnectionTimeout as exc:
            # "Mantle will use a 5 second timeout ... immediately return
            # an error if anything RADOS-related goes wrong."
            yield from self.mds.mon_log(
                "ERR", f"mantle: Connection Timeout reading policy "
                       f"{version!r}: {exc}")
            return
        except MalacologyError as exc:
            yield from self.mds.mon_log(
                "ERR", f"mantle: cannot read policy {version!r}: {exc}")
            return
        try:
            self.policy = MantlePolicy(version, blob.decode())
        except PolicyError as exc:
            yield from self.mds.mon_log(
                "ERR", f"mantle: policy {version!r} rejected: {exc}")
            return
        self.state = {}
        yield from self.mds.mon_log(
            "INF", f"mds.{self.mds.rank} loaded balancer {version!r}")

    def _read_with_deadline(self, oid: str,
                            deadline: float) -> Generator:
        """RADOS read bounded by a deadline (the 5 s rule).

        The MDS must never block indefinitely on the object store from
        inside its balancing logic; the read races a timer.
        """
        result = Future(name=f"policyread:{oid}")
        self.mds.spawn(
            self._read_into(oid, result),
            name=f"{self.mds.name}:policyread")
        self.mds.sim.timeout_future(
            result, deadline,
            ConnectionTimeout(f"read of {oid!r} exceeded {deadline}s"))
        blob = yield result
        return blob

    def _read_into(self, oid: str, result: Future) -> Generator:
        try:
            blob = yield from self.mds.rados_read(METADATA_POOL, oid)
        except MalacologyError as exc:
            result.fail_if_pending(exc)
            return
        result.resolve_if_pending(blob)

    # ------------------------------------------------------------------
    # Metrics table
    # ------------------------------------------------------------------
    def _mds_table(self, m) -> Optional[List[Dict[str, Any]]]:
        mds = self.mds
        ranks = sorted(m.ranks)
        if not ranks:
            return None
        # Refresh our own row synchronously so decisions see current load.
        own = mds.load_snapshot()
        own["rank"] = mds.rank
        own["inodes"] = mds.ns.inode_count()
        mds.peer_loads[mds.rank] = own
        table = []
        for rank in range(max(ranks) + 1):
            row = mds.peer_loads.get(rank)
            if row is None:
                if rank in ranks:
                    return None  # missing gossip; skip this tick
                row = {"load": 0.0, "cpu": 0.0, "req_rate": 0.0,
                       "inodes": 0}
            table.append(dict(row))
        return table

    # ------------------------------------------------------------------
    # Mechanism: targets -> concrete exports
    # ------------------------------------------------------------------
    def _execute_targets(self, targets: List[float]
                         ) -> Generator:
        """Map target loads onto subtrees and export them.

        Returns the moves actually made: ``{target_rank: [paths]}``.
        """
        mds = self.mds
        now = mds.sim.now
        exportable = [
            (path, pop) for path, pop in
            mds.tracker.hottest_inodes(now, limit=64)
            if path != "/" and not path.startswith("fwd:")
            and mds.ns.has(path)
        ]
        migrated = {}
        for rank, amount in enumerate(targets):
            if rank == mds.rank or amount <= 0.0 or not exportable:
                continue
            shipped = 0.0
            picked = []
            for path, pop in list(exportable):
                if shipped >= amount:
                    break
                # Skip paths nested under something already picked.
                if any(path.startswith(p + "/") or path == p
                       for p in picked):
                    continue
                picked.append(path)
                shipped += max(pop, 1e-9)
            for path in picked:
                exportable = [(p, q) for p, q in exportable
                              if p != path]
                yield from mds.migrate_subtree(path, rank)
            if picked:
                migrated[rank] = picked
        if migrated and self.decision_hook is not None:
            self.decision_hook({"time": now, "from": mds.rank,
                                "moves": migrated})
        if migrated:
            yield from mds.mon_log(
                "INF", f"mantle: mds.{mds.rank} migrated "
                       f"{sum(len(v) for v in migrated.values())} "
                       f"subtree(s): {migrated}")
        return migrated


def attach_balancers(cluster: Any,
                     policy: Optional[MantlePolicy] = None
                     ) -> List[MantleBalancer]:
    """Attach a balancer (optionally pre-seeded) to every MDS."""
    return [MantleBalancer(mds, default_policy=policy)
            for mds in cluster.mdss]
