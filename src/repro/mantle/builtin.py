"""Built-in balancer policy sources.

These are *strings*, not Python modules: they travel through the
Durability interface (RADOS objects), get versioned through the MDS
map, and compile inside the MDS at tick time — exactly the paper's
injected-Lua life cycle.

The CephFS family reproduces the hard-coded balancer's three modes
(Figure 10a): same structure, different load metric.  The Mantle
family contains the sequencer-aware policies of section 6.2: greedy
spill with half/full migration units, conservative receiver-aware
``when()`` gating, and post-migration backoff (section 6.2.3).
"""

from __future__ import annotations

#: Minimum decayed load before anyone considers migrating; keeps idle
#: clusters quiet (CephFS has the same guard).
_MIN_LOAD_GUARD = "min_load = 10.0"


def _cephfs_mode(metric_expr: str) -> str:
    """CephFS default balancer structure with a pluggable metric.

    When: my metric exceeds the cluster average (with hysteresis).
    Where: send the excess above average to underloaded ranks,
    proportionally — the paper notes all three modes behave the same
    on the sequencer workload because the structure dominates.
    """
    return f"""
{_MIN_LOAD_GUARD}

def metric(i):
    return {metric_expr}

def when():
    if mds[whoami]["load"] < min_load:
        return False
    mine = metric(whoami)
    mean = sum(metric(i) for i in range(len(mds))) / len(mds)
    return mine > mean * 1.1

def where():
    mine = mds[whoami]["load"]
    mean = total / len(mds)
    excess = mine - mean
    under = [i for i in range(len(mds))
             if i != whoami and mds[i]["load"] < mean]
    if not under:
        return
    share = excess / len(under)
    for i in under:
        targets[i] = share
"""


#: CephFS CPU mode: decisions keyed on (noisy) CPU utilization.
CEPHFS_CPU = _cephfs_mode('mds[i]["cpu"]')

#: CephFS workload mode: decisions keyed on request rate.
CEPHFS_WORKLOAD = _cephfs_mode('mds[i]["req_rate"]')

#: CephFS hybrid mode: half CPU, half workload.
CEPHFS_HYBRID = _cephfs_mode(
    '0.5 * mds[i]["cpu"] * 100.0 + 0.5 * mds[i]["req_rate"]')


#: The paper's migration-unit one-liner (section 6.2.2): ship half the
#: load on this server to the next rank.
GREEDY_SPILL_HALF = f"""
{_MIN_LOAD_GUARD}

def when():
    if mds[whoami]["load"] < min_load:
        return False
    if whoami + 1 >= len(mds):
        return False
    return mds[whoami]["load"] > 2.0 * mds[whoami + 1]["load"]

def where():
    targets[whoami + 1] = mds[whoami]["load"] / 2
"""

#: Same, but move ALL load off this server ("Proxy Mode (Full)" /
#: migrating everything at a time step — remove the division by 2).
GREEDY_SPILL_FULL = f"""
{_MIN_LOAD_GUARD}

def when():
    if mds[whoami]["load"] < min_load:
        return False
    if whoami + 1 >= len(mds):
        return False
    return mds[whoami]["load"] > 2.0 * mds[whoami + 1]["load"]

def where():
    targets[whoami + 1] = mds[whoami]["load"]
"""


#: The custom sequencer balancer used for Figure 9's "Mantle" curve:
#: conservative (section 6.2.3) — only the hottest rank acts, it waits
#: for a receiver to be genuinely underloaded (below half the average)
#: before each move, and a save_state cooldown separates consecutive
#: migrations so the system settles in between.  This is why the
#: Mantle curve stabilizes later than CephFS but ends higher.
MANTLE_SEQUENCER = f"""
{_MIN_LOAD_GUARD}

def loads():
    return [mds[i]["load"] for i in range(len(mds))]

def receivers():
    return [i for i in range(len(mds)) if mds[i]["load"] < avg * 0.5]

def when():
    if mds[whoami]["load"] < min_load:
        return False
    if mds[whoami]["load"] < max(loads()):
        return False  # only the hottest rank migrates
    if not receivers():
        return False  # wait until someone is genuinely underloaded
    if state.get("cooldown", 1) > 0:
        state["cooldown"] = state.get("cooldown", 1) - 1
        return False
    state["cooldown"] = 1
    return True

def where():
    ls = loads()
    best = receivers()[0]
    for i in receivers():
        if ls[i] < ls[best]:
            best = i
    targets[best] = (ls[whoami] - avg) / 2
"""


def with_routing(source: str, mode: str) -> str:
    """Extend a policy with a routing-mode decision (Figure 11 modes)."""
    if mode not in ("client", "proxy"):
        raise ValueError(f"bad routing mode {mode!r}")
    return source + f"""

def routing():
    return "{mode}"
"""


def with_backoff(source: str, ticks: int) -> str:
    """Wrap a policy's when() with a sustained-overload backoff.

    After every positive decision the balancer waits ``ticks``
    balancing intervals before deciding again (the save_state countdown
    of section 6.2.3).
    """
    if ticks < 0:
        raise ValueError("backoff ticks must be >= 0")
    return source + f"""

_inner_when = when

def when():
    left = state.get("backoff_left", 0)
    if left > 0:
        state["backoff_left"] = left - 1
        return False
    decision = _inner_when()
    if decision:
        state["backoff_left"] = {ticks}
    return decision
"""


#: Catalog used by benches and the policy-publishing example.
CATALOG = {
    "cephfs-cpu": CEPHFS_CPU,
    "cephfs-workload": CEPHFS_WORKLOAD,
    "cephfs-hybrid": CEPHFS_HYBRID,
    "greedy-spill-half": GREEDY_SPILL_HALF,
    "greedy-spill-full": GREEDY_SPILL_FULL,
    "mantle-sequencer": MANTLE_SEQUENCER,
}
