"""Mantle policy objects: sandboxed when()/where() balancing logic.

A policy is *source code* (a string — it travels through RADOS and the
MDS map, not a Python import).  The source executes in the restricted
namespace of :func:`repro.objclass.loader.compile_policy_source` with
the Mantle API injected:

``mds``
    List of per-rank load dicts (``load``, ``cpu``, ``req_rate``,
    ``inodes``) — the paper's global ``mds`` table.
``whoami``
    This MDS's rank.
``targets``
    A list of floats, one per rank; ``where()`` assigns the amount of
    load to ship to each rank, e.g. the paper's one-liner
    ``targets[whoami + 1] = mds[whoami]["load"] / 2``.
``state``
    A dict persisted between invocations on the same MDS (the paper's
    ``save_state``), used e.g. for post-migration backoff countdowns.
``total`` / ``avg``
    Cluster-wide load helpers.

The policy must define ``when() -> bool``; ``where()`` is optional for
policies that only ever decline.  A policy may also define
``routing() -> "client" | "proxy"`` to pick the request routing mode.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import PolicyError, sandbox_guard
from repro.objclass.loader import compile_policy_source


class MantlePolicy:
    """One compiled balancing policy."""

    def __init__(self, version: str, source: str):
        self.version = version
        self.source = source
        # Compile once at load to reject broken uploads immediately;
        # the namespace is rebuilt per decision with fresh metrics.
        self._check_compiles()

    def _check_compiles(self) -> None:
        env = self._base_env(
            mds=[{"load": 0.0, "cpu": 0.0, "req_rate": 0.0, "inodes": 0}],
            whoami=0, state={})
        namespace = compile_policy_source(self.version, self.source, env)
        if not callable(namespace.get("when")):
            raise PolicyError(
                f"policy {self.version!r} must define when()")

    @staticmethod
    def _base_env(mds: List[Dict[str, Any]], whoami: int,
                  state: Dict[str, Any]) -> Dict[str, Any]:
        total = sum(row.get("load", 0.0) for row in mds)
        return {
            "mds": mds,
            "whoami": whoami,
            "targets": [0.0] * len(mds),
            "state": state,
            "total": total,
            "avg": total / len(mds) if mds else 0.0,
        }

    def decide(self, mds: List[Dict[str, Any]], whoami: int,
               state: Dict[str, Any]) -> Tuple[bool, List[float],
                                               Optional[str]]:
        """Run the policy; returns (migrate?, targets, routing mode).

        ``state`` is mutated in place (that is the persistence
        contract).  Any exception inside the sandbox surfaces as
        :class:`PolicyError` for the balancer to log centrally.
        """
        env = self._base_env(mds, whoami, state)
        namespace = compile_policy_source(self.version, self.source, env)
        with sandbox_guard(f"policy {self.version!r} failed"):
            go = bool(namespace["when"]())
            targets = [0.0] * len(mds)
            if go and callable(namespace.get("where")):
                namespace["where"]()
                raw = namespace["targets"]
                targets = [max(0.0, float(raw[i])) for i in range(len(mds))]
            routing = None
            if callable(namespace.get("routing")):
                routing = namespace["routing"]()
                if routing not in ("client", "proxy"):
                    raise PolicyError(
                        f"policy {self.version!r} returned bad routing "
                        f"mode {routing!r}")
            return go, targets, routing
