"""The file-system metadata service (MDS) and its Malacology interfaces.

Three of the five Malacology interfaces live here (paper section 4.3):

* **Shared Resource** (§4.3.1) — the capability/lease machinery by
  which clients obtain temporarily exclusive, cacheable access to
  inode state, governed by programmable policies (best-effort, delay,
  quota) that trade latency against throughput;
* **File Type** (§4.3.2) — pluggable inode types with domain-specific
  embedded state and server-side operations (ZLog's sequencer is an
  inode of type ``sequencer``);
* **Load Balancing** (§4.3.3) — the mechanisms (measure, partition,
  migrate) that Mantle's injected policies drive.
"""

from repro.mds.inode import FileType, Inode, file_type_registry
from repro.mds.capability import Capability, LeasePolicy, Locker
from repro.mds.metrics import LoadTracker
from repro.mds.server import MDS
from repro.mds.client import FsClient

__all__ = [
    "FileType",
    "Inode",
    "file_type_registry",
    "Capability",
    "LeasePolicy",
    "Locker",
    "LoadTracker",
    "MDS",
    "FsClient",
]
