"""Capabilities and lease policies — the Shared Resource interface.

The MDS grants clients *capabilities* on inodes: an exclusive,
cacheable cap lets a client read and mutate inode state locally (for a
sequencer inode, that means granting log positions without a network
round trip).  Sharing is cooperative: when another client wants the
resource, the MDS asks the holder to release, and the holder complies
*per the active lease policy* (paper sections 4.3.1 and 6.1.1):

``best-effort``
    Release as soon as asked (Ceph's default; Figure 5a — heavy
    interleaving, much time lost to cap exchange).
``delay``
    Hold at least ``min_hold`` seconds before honouring a revoke
    (Figure 5b).
``quota``
    Hold until ``quota`` operations have been served locally, bounded
    by ``max_hold`` seconds (Figures 5c and 6 — the
    throughput/latency dial).

The policy travels in the grant message, so clients always apply the
cluster's current policy; Malacology exposes the knobs through the MDS
map (``lease_policy``) and per file type overrides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import InvalidArgument

#: Policy modes.
BEST_EFFORT = "best-effort"
DELAY = "delay"
QUOTA = "quota"
#: No caching at all: every access is a server round trip (the mode the
#: load-balancing experiments force, section 6.2: "these experiments
#: measure contention at the sequencers by forcing clients to make
#: round-trips for every request").
ROUND_TRIP = "round-trip"

MODES = (BEST_EFFORT, DELAY, QUOTA, ROUND_TRIP)


@dataclass
class LeasePolicy:
    """Validated view of the ``lease_policy`` dict in the MDS map."""

    mode: str = BEST_EFFORT
    min_hold: float = 0.0
    quota: int = 0
    max_hold: float = 0.25

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise InvalidArgument(f"unknown lease mode {self.mode!r}")
        if self.min_hold < 0 or self.max_hold <= 0:
            raise InvalidArgument("bad lease hold bounds")
        if self.quota < 0:
            raise InvalidArgument("negative quota")

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "LeasePolicy":
        return cls(mode=d.get("mode", BEST_EFFORT),
                   min_hold=d.get("min_hold", 0.0),
                   quota=d.get("quota", 0),
                   max_hold=d.get("max_hold", 0.25))

    def to_dict(self) -> Dict[str, Any]:
        return {"mode": self.mode, "min_hold": self.min_hold,
                "quota": self.quota, "max_hold": self.max_hold}

    @property
    def cacheable(self) -> bool:
        return self.mode != ROUND_TRIP


@dataclass
class Capability:
    """One exclusive grant of an inode to a client."""

    ino: int
    client: str
    seq: int
    granted_at: float
    policy: LeasePolicy
    revoking: bool = False


class Locker:
    """Per-MDS capability table: grants, revokes, waiter queues.

    Invariant (property-tested): at most one client holds the cap on
    any inode at any time; grants happen only after the previous
    holder's release has been processed.
    """

    def __init__(self) -> None:
        self._caps: Dict[int, Capability] = {}
        self._waiters: Dict[int, List[str]] = {}
        self._seq = 0

    def holder_of(self, ino: int) -> Optional[Capability]:
        return self._caps.get(ino)

    def held_inos(self) -> List[int]:
        return sorted(self._caps)

    def try_grant(self, ino: int, client: str, now: float,
                  policy: LeasePolicy) -> Optional[Capability]:
        """Grant if free (or already held by this client); else queue.

        Returns the capability on success, None when the client was
        queued behind the current holder.
        """
        cap = self._caps.get(ino)
        if cap is not None and cap.client != client:
            waiters = self._waiters.setdefault(ino, [])
            if client not in waiters:
                waiters.append(client)
            return None
        if cap is not None:
            return cap  # re-grant to the same holder (refresh)
        self._seq += 1
        cap = Capability(ino=ino, client=client, seq=self._seq,
                         granted_at=now, policy=policy)
        self._caps[ino] = cap
        return cap

    def needs_revoke(self, ino: int) -> Optional[Capability]:
        """The cap to revoke if someone is waiting and none in flight."""
        cap = self._caps.get(ino)
        if cap is None or cap.revoking:
            return None
        if not self._waiters.get(ino):
            return None
        return cap

    def mark_revoking(self, ino: int) -> None:
        cap = self._caps.get(ino)
        if cap is not None:
            cap.revoking = True

    def revoking_count(self) -> int:
        """How many grants have a revoke in flight (health gauge)."""
        return sum(1 for cap in self._caps.values() if cap.revoking)

    def release(self, ino: int, client: str, seq: int) -> bool:
        """Process a release; True if it removed the current grant.

        Stale releases (wrong client or old seq) are ignored — they are
        echoes of already-processed revocations.
        """
        cap = self._caps.get(ino)
        if cap is None or cap.client != client or cap.seq != seq:
            return False
        del self._caps[ino]
        return True

    def next_waiter(self, ino: int) -> Optional[str]:
        waiters = self._waiters.get(ino)
        if not waiters:
            return None
        client = waiters.pop(0)
        if not waiters:
            del self._waiters[ino]
        return client

    def drop_client(self, client: str) -> List[int]:
        """Forget a failed client; returns inos freed by its demise.

        The timeout-based eviction path of section 5.2.2 ("a timeout is
        used to determine when a client should be considered
        unavailable") feeds this.
        """
        freed = []
        for ino in list(self._caps):
            if self._caps[ino].client == client:
                del self._caps[ino]
                freed.append(ino)
        for ino, waiters in list(self._waiters.items()):
            self._waiters[ino] = [w for w in waiters if w != client]
            if not self._waiters[ino]:
                del self._waiters[ino]
        return freed

    def drop_ino(self, ino: int) -> None:
        """Forget all cap state for an inode (it migrated away)."""
        self._caps.pop(ino, None)
        self._waiters.pop(ino, None)

    def export_waiters(self, ino: int) -> List[str]:
        return list(self._waiters.get(ino, []))
