"""File-system client: routing, capability caching, sequencer ops.

The client side of the Shared Resource protocol (section 6.1.1): when
it holds an exclusive cacheable capability on a sequencer inode it
grants log positions locally at memory speed; when the MDS asks for
the capability back it releases *per the lease policy it was granted
under* — immediately (best-effort), after a minimum hold (delay), or
after a quota of local operations bounded by the maximum reservation
(quota).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.errors import (
    DaemonDown,
    MalacologyError,
    TimeoutError_,
    TryAgain,
    WrongMDS,
)
from repro.mds.capability import BEST_EFFORT, DELAY, QUOTA
from repro.monitor.monitor import MonitorClient
from repro.sim.event import Timeout


class FsClient(MonitorClient):
    """Mixin adding metadata-service access to a daemon.

    Requires ``init_mon_client`` to have run; call :meth:`init_fs_client`
    from ``__init__``.
    """

    MDS_TIMEOUT = 15.0
    MDS_RETRIES = 40
    RETRY_BACKOFF = 0.05
    #: Cost of serving one sequencer op from the locally cached
    #: capability (a memory increment plus client bookkeeping).
    LOCAL_OP_COST = 50e-6

    def init_fs_client(self: Any) -> None:
        #: path -> live capability record.
        self._caps: Dict[str, Dict[str, Any]] = {}
        #: path -> in-flight release future.  Re-acquiring before our
        #: own release is acknowledged would hand us back a stale
        #: embedded snapshot (the MDS still thinks we hold the cap),
        #: which for a sequencer means duplicate positions.
        self._releasing: Dict[str, Any] = {}
        #: Trace of (time, value) per granted position — Figure 5 data.
        self.seq_trace: List[Tuple[float, int]] = []
        #: Revokes that arrived before their grant (the cast can overtake
        #: the grant reply on the wire): (ino, seq) pairs applied the
        #: moment the matching grant is adopted.
        self._early_revokes: set = set()
        #: path -> mds map epoch at which the server said "round-trip
        #: mode" — remembered so steady-state ops are one round trip,
        #: re-validated whenever the map changes (the policy may have
        #: become cacheable).
        self._round_trip: Dict[str, int] = {}
        if "cap_revoke" not in self._handlers:
            self.register_handler("cap_revoke", self._h_cap_revoke)

    # ------------------------------------------------------------------
    # Request routing
    # ------------------------------------------------------------------
    def fs_request(self: Any, op: str, path: str,
                   args: Optional[Dict[str, Any]] = None) -> Generator:
        payload = {"op": op, "path": path, "args": args or {}}
        last_error: Optional[MalacologyError] = None
        for _ in range(self.MDS_RETRIES):
            m = self.cached_maps.get("mds")
            if m is None:
                m = yield from self.mon_get_map("mds")
            if m.routing_mode == "proxy" and m.ranks:
                # Proxy mode (Figure 11): "clients continue sending
                # their requests to the first server", which forwards.
                target = m.rank_holder(min(m.ranks))
            else:
                target = m.rank_holder(m.owner_of(path))
            if target is None or m.state.get(target) != "up":
                yield Timeout(self.RETRY_BACKOFF)
                m = yield from self.mon_get_map("mds")
                continue
            try:
                result = yield self.call(target, "mds_req", payload,
                                         timeout=self.MDS_TIMEOUT)
                return result
            except WrongMDS as exc:
                last_error = exc
                # "Client mode": learn the new owner and go there.
                yield from self.mon_get_map("mds")
            except (TryAgain, DaemonDown, TimeoutError_) as exc:
                last_error = exc
                yield Timeout(self.RETRY_BACKOFF)
                yield from self.mon_get_map("mds")
        raise last_error or TryAgain(f"mds request {op} on {path} failed")

    # ------------------------------------------------------------------
    # Namespace convenience
    # ------------------------------------------------------------------
    def fs_mkdir(self: Any, path: str) -> Generator:
        result = yield from self.fs_request("mkdir", path)
        return result

    def fs_create(self: Any, path: str,
                  file_type: str = "regular") -> Generator:
        result = yield from self.fs_request("create", path,
                                            {"file_type": file_type})
        return result

    def fs_stat(self: Any, path: str) -> Generator:
        result = yield from self.fs_request("stat", path)
        return result

    def fs_readdir(self: Any, path: str) -> Generator:
        result = yield from self.fs_request("readdir", path)
        return result

    def fs_unlink(self: Any, path: str) -> Generator:
        result = yield from self.fs_request("unlink", path)
        return result

    def fs_rename(self: Any, path: str, to: str) -> Generator:
        """Rename a file (directories unsupported; see MDS._op_rename)."""
        result = yield from self.fs_request("rename", path, {"to": to})
        return result

    def fs_exec(self: Any, path: str, method: str,
                args: Optional[Dict[str, Any]] = None) -> Generator:
        """Server-side File Type operation (round-trip path)."""
        result = yield from self.fs_request(
            "ftype_exec", path, {"method": method, "args": args or {}})
        return result

    # ------------------------------------------------------------------
    # File data I/O (requires the RadosClient mixin on the same object)
    # ------------------------------------------------------------------
    #: File data stripes over fixed-size RADOS objects, CephFS-style
    #: (the inode's striping strategy is the File Type interface's
    #: Ceph example in Table 2).  Small so tests exercise striping.
    FILE_OBJECT_SIZE = 64 * 1024
    FILE_DATA_POOL = "data"

    @staticmethod
    def _file_object(ino: int, block: int) -> str:
        return f"ino.{ino:016x}.{block:08x}"

    def _file_ino(self: Any, path: str) -> Generator:
        st = yield from self.fs_stat(path)
        if st["kind"] != "file":
            from repro.errors import InvalidArgument

            raise InvalidArgument(f"not a regular file: {path!r}")
        return st

    def fs_write(self: Any, path: str, offset: int,
                 data: bytes) -> Generator:
        """Write file data: stripe to RADOS, then update the size."""
        if offset < 0:
            from repro.errors import InvalidArgument

            raise InvalidArgument("negative file offset")
        st = yield from self._file_ino(path)
        ino, bs = st["ino"], self.FILE_OBJECT_SIZE
        cursor = offset
        remaining = data
        while remaining:
            block, block_off = divmod(cursor, bs)
            chunk = remaining[: bs - block_off]
            yield from self.rados_write(
                self.FILE_DATA_POOL, self._file_object(ino, block),
                block_off, chunk)
            cursor += len(chunk)
            remaining = remaining[len(chunk):]
        end = offset + len(data)
        if end > st["size"]:
            yield from self.fs_request("setattr", path, {"size": end})
        return end

    def fs_read(self: Any, path: str, offset: int = 0,
                length: Optional[int] = None) -> Generator:
        """Read file data; holes (never-written stripes) read as zeros."""
        from repro.errors import NotFound

        st = yield from self._file_ino(path)
        size = st["size"]
        if offset >= size:
            return b""
        end = size if length is None else min(size, offset + length)
        ino, bs = st["ino"], self.FILE_OBJECT_SIZE
        out = bytearray()
        cursor = offset
        while cursor < end:
            block, block_off = divmod(cursor, bs)
            want = min(bs - block_off, end - cursor)
            try:
                chunk = yield from self.rados_read(
                    self.FILE_DATA_POOL, self._file_object(ino, block),
                    block_off, want)
            except NotFound:
                chunk = b""
            out.extend(chunk)
            out.extend(b"\x00" * (want - len(chunk)))
            cursor += want
        return bytes(out)

    # ------------------------------------------------------------------
    # Sequencer operations (cap-aware fast path)
    # ------------------------------------------------------------------
    def seq_next(self: Any, path: str) -> Generator:
        """Obtain the next log position from the sequencer at ``path``.

        Fast path: locally cached capability.  Slow path: acquire the
        capability (waiting for the current holder to release) or, in
        round-trip mode, a server-side ``next``.

        Every successful grant records its end-to-end latency in the
        ``seq.next`` telemetry tracker (full samples retained: the
        Figure 7 CDF reads exact tail quantiles from it).
        """
        started = self.sim.now
        while True:
            cap = self._caps.get(path)
            if cap is not None:
                yield Timeout(self.LOCAL_OP_COST)
                # The release may have raced in during the yield.
                if self._caps.get(path) is not cap:
                    continue
                pos = cap["embedded"]["tail"]
                cap["embedded"]["tail"] = pos + 1
                cap["ops"] += 1
                self.seq_trace.append((self.sim.now, pos))
                self._maybe_voluntary_release(path, cap)
                self.perf.time("seq.next", self.sim.now - started,
                               retain=True)
                return pos
            if self._round_trip_valid(path):
                pos = yield from self.fs_exec(path, "next")
                self.seq_trace.append((self.sim.now, pos))
                self.perf.time("seq.next", self.sim.now - started,
                               retain=True)
                return pos
            pending_release = self._releasing.get(path)
            if pending_release is not None:
                yield pending_release
                continue
            grant = yield from self.fs_request("open", path)
            if not grant["cacheable"]:
                m = self.cached_maps.get("mds")
                self._round_trip[path] = m.epoch if m else 0
                pos = yield from self.fs_exec(path, "next")
                self.seq_trace.append((self.sim.now, pos))
                self.perf.time("seq.next", self.sim.now - started,
                               retain=True)
                return pos
            self.perf.incr("cap.acquired")
            self._adopt_grant(path, grant)

    def _round_trip_valid(self: Any, path: str) -> bool:
        epoch = self._round_trip.get(path)
        if epoch is None:
            return False
        m = self.cached_maps.get("mds")
        if m is None or m.epoch != epoch:
            self._round_trip.pop(path, None)
            return False
        return True

    def seq_read(self: Any, path: str) -> Generator:
        cap = self._caps.get(path)
        if cap is not None:
            yield Timeout(self.LOCAL_OP_COST)
            return cap["embedded"]["tail"]
        value = yield from self.fs_exec(path, "read")
        return value

    # ------------------------------------------------------------------
    # Capability bookkeeping
    # ------------------------------------------------------------------
    def _adopt_grant(self: Any, path: str, grant: Dict[str, Any]) -> None:
        cap = {
            "ino": grant["ino"],
            "seq": grant["seq"],
            "policy": grant["policy"],
            "embedded": grant["embedded"],
            "ops": 0,
            "granted_at": self.sim.now,
            "revoke_pending": False,
        }
        self._caps[path] = cap
        if (grant["ino"], grant["seq"]) in self._early_revokes:
            self._early_revokes.discard((grant["ino"], grant["seq"]))
            self._start_release(path, cap, "")

    def _h_cap_revoke(self: Any, src: str, payload: Dict[str, Any]) -> None:
        for path, cap in list(self._caps.items()):
            if cap["ino"] == payload["ino"] and cap["seq"] == payload["seq"]:
                self._start_release(path, cap, src)
                return
        # The grant this revoke targets is still in flight to us.
        self._early_revokes.add((payload["ino"], payload["seq"]))

    def _start_release(self: Any, path: str, cap: Dict[str, Any],
                       mds: str) -> None:
        if cap["revoke_pending"]:
            return
        cap["revoke_pending"] = True
        mode = cap["policy"]["mode"]
        now = self.sim.now
        if mode == BEST_EFFORT:
            deadline = now
        elif mode == DELAY:
            deadline = cap["granted_at"] + cap["policy"]["min_hold"]
        elif mode == QUOTA:
            # Release when the quota is consumed (checked per op) or at
            # the maximum reservation, whichever comes first.
            deadline = cap["granted_at"] + cap["policy"]["max_hold"]
            if cap["ops"] >= cap["policy"]["quota"]:
                deadline = now
        else:
            deadline = now
        self.sim.schedule(max(0.0, deadline - now),
                          self._release_if_held, path, cap["seq"])

    def _maybe_voluntary_release(self: Any, path: str,
                                 cap: Dict[str, Any]) -> None:
        if not cap["revoke_pending"]:
            return
        if (cap["policy"]["mode"] == QUOTA
                and cap["ops"] >= cap["policy"]["quota"]):
            self._release_if_held(path, cap["seq"])

    def _release_if_held(self: Any, path: str, seq: int) -> None:
        cap = self._caps.get(path)
        if cap is None or cap["seq"] != seq or not self.alive:
            return
        del self._caps[path]
        from repro.sim.event import Future

        self._releasing[path] = Future(name=f"caprel:{path}")
        self.spawn(self._send_release(path, cap),
                   name=f"{self.name}:caprel")

    def _send_release(self: Any, path: str,
                      cap: Dict[str, Any]) -> Generator:
        try:
            yield from self.fs_request(
                "cap_release", path,
                {"ino": cap["ino"], "seq": cap["seq"],
                 "dirty": cap["embedded"]})
        except MalacologyError:
            # The MDS's revoke deadline reclaims the cap if this never
            # lands; positions stay safe via seal-based recovery.
            pass
        finally:
            fut = self._releasing.pop(path, None)
            if fut is not None:
                fut.resolve_if_pending(None)

    def drop_all_caps(self: Any) -> None:
        """Forget caps without releasing (used to model client death)."""
        self._caps.clear()
