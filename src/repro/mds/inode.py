"""Inodes and the File Type interface (paper section 4.3.2).

An inode carries ordinary POSIX-ish attributes plus a *file type* and
an ``embedded`` state dict owned by that type's plugin.  Plugins define
domain-specific server-side operations on the embedded state and how
dirty client-cached state merges back on capability release — "new
inode types ... that may modify locking and capability policies".

ZLog registers the ``sequencer`` type: its embedded state is the log
tail counter, its ``next`` operation is the CORFU position grant, and
its lease-policy override is how the Shared Resource experiments
(Figures 5-7) switch sequencer caching modes per inode.
"""

from __future__ import annotations

import copy
import itertools
from typing import Any, Dict, Optional

from repro.errors import InvalidArgument, NotFound

#: Inode kinds.
DIR = "dir"
FILE = "file"


class FileType:
    """A pluggable inode type.

    Subclass (or instantiate with callables) and register via
    :meth:`FileTypeRegistry.register`.  All hooks receive the inode and
    must mutate only ``inode.embedded``.
    """

    name = "regular"

    def initial_state(self) -> Dict[str, Any]:
        """Embedded state for a freshly created inode of this type."""
        return {}

    def execute(self, inode: "Inode", method: str,
                args: Dict[str, Any]) -> Any:
        """Server-side operation on the inode's embedded state."""
        raise NotFound(f"file type {self.name!r} has no method {method!r}")

    def merge_flush(self, inode: "Inode",
                    dirty: Dict[str, Any]) -> None:
        """Fold client-cached dirty state back in on cap release."""

    def lease_policy_override(
            self, policy: Dict[str, Any]) -> Dict[str, Any]:
        """Adjust the cluster lease policy for inodes of this type."""
        return policy


class SequencerType(FileType):
    """The ZLog sequencer as an inode (paper section 5.2.1).

    Embedded state is the 64-bit log tail.  ``next`` atomically grants
    and bumps the tail; ``read`` peeks.  When a client holds the
    exclusive capability it performs the same transition locally and
    the dirty tail merges back monotonically on release.
    """

    name = "sequencer"

    def initial_state(self) -> Dict[str, Any]:
        return {"tail": 0}

    def execute(self, inode: "Inode", method: str,
                args: Dict[str, Any]) -> Any:
        state = inode.embedded
        if method == "next":
            pos = state["tail"]
            state["tail"] = pos + 1
            return pos
        if method == "read":
            return state["tail"]
        if method == "set_min_tail":
            # Recovery/collision path: never rewind, only jump forward.
            floor = args.get("tail", 0)
            if floor > state["tail"]:
                state["tail"] = floor
            return state["tail"]
        raise NotFound(f"sequencer has no method {method!r}")

    def merge_flush(self, inode: "Inode", dirty: Dict[str, Any]) -> None:
        # Tails only move forward; a stale flush can never rewind the
        # log and hand out duplicate positions.
        tail = dirty.get("tail", 0)
        if tail > inode.embedded["tail"]:
            inode.embedded["tail"] = tail


class FileTypeRegistry:
    """Global registry of inode types, shared by MDSs and clients."""

    def __init__(self) -> None:
        self._types: Dict[str, FileType] = {}
        self.register(FileType())
        self.register(SequencerType())

    def register(self, ft: FileType) -> None:
        if ft.name in self._types:
            raise InvalidArgument(f"file type {ft.name!r} already exists")
        self._types[ft.name] = ft

    def get(self, name: str) -> FileType:
        ft = self._types.get(name)
        if ft is None:
            raise NotFound(f"unknown file type {name!r}")
        return ft

    def known(self, name: str) -> bool:
        return name in self._types


#: The process-wide registry (types are code, present identically on
#: every daemon, like object classes compiled into OSDs).
file_type_registry = FileTypeRegistry()

#: The root directory's well-known inode number.
ROOT_INO = 1


class InoAllocator:
    """Per-rank inode number allocation from disjoint ranges.

    Each MDS rank owns a private range (as CephFS pre-allocates ino
    ranges per rank), so concurrent creates on different ranks never
    collide and simulation runs stay deterministic per seed.
    """

    RANGE = 1 << 40

    def __init__(self, rank: int):
        if rank < 0:
            raise InvalidArgument(f"bad rank {rank}")
        base = rank * self.RANGE + 2  # skip 0 and the root ino
        self._counter = itertools.count(base)

    def allocate(self) -> int:
        return next(self._counter)


class Inode:
    """One file-system object's metadata."""

    __slots__ = ("ino", "kind", "file_type", "embedded", "version",
                 "size", "popularity")

    def __init__(self, ino: int, kind: str, file_type: str = "regular",
                 embedded: Optional[Dict[str, Any]] = None):
        if kind not in (DIR, FILE):
            raise InvalidArgument(f"bad inode kind {kind!r}")
        self.ino = ino
        self.kind = kind
        self.file_type = file_type
        self.embedded: Dict[str, Any] = (
            copy.deepcopy(embedded) if embedded is not None
            else file_type_registry.get(file_type).initial_state())
        self.version = 0
        self.size = 0
        #: Decayed request counter used by load balancing policies.
        self.popularity = 0.0

    @property
    def type_plugin(self) -> FileType:
        return file_type_registry.get(self.file_type)

    def execute(self, method: str, args: Dict[str, Any]) -> Any:
        result = self.type_plugin.execute(self, method, args)
        self.version += 1
        return result

    def merge_flush(self, dirty: Dict[str, Any]) -> None:
        self.type_plugin.merge_flush(self, dirty)
        self.version += 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ino": self.ino,
            "kind": self.kind,
            "file_type": self.file_type,
            "embedded": copy.deepcopy(self.embedded),
            "version": self.version,
            "size": self.size,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Inode":
        inode = cls(d["ino"], d["kind"], d["file_type"], d["embedded"])
        inode.version = d["version"]
        inode.size = d["size"]
        return inode

    def __repr__(self) -> str:
        return (f"Inode({self.ino}, {self.kind}, type={self.file_type!r}, "
                f"v{self.version})")
