"""Load metrics the balancing policies consume (paper section 4.3.3).

CephFS balancers use "metrics based on system state (e.g., CPU and
memory utilization) and statistics collected by the cluster (e.g., the
popularity of an inode)".  The tracker keeps exponentially decayed
request counters per MDS and per inode, plus a synthetic CPU
utilization derived from request processing time — the same inputs the
paper's Figure 10(a) modes (CPU / workload / hybrid) switch between.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

# DecayCounter moved to util.stats so telemetry can share it without a
# daemon-package import; re-exported here for existing callers.
from repro.util.stats import DecayCounter

__all__ = ["DecayCounter", "LoadTracker"]


class LoadTracker:
    """Per-MDS load bookkeeping.

    ``cpu`` is synthetic: the fraction of recent wall time spent in
    request service (busy time through a decay counter), plus
    jittery measurement noise injected by the caller if desired —
    the paper notes CPU-based decisions are noisy and unpredictable,
    which the CPU-mode benchmark reproduces by sampling this.
    """

    def __init__(self, halflife: float = 5.0):
        self.requests = DecayCounter(halflife)
        self.busy = DecayCounter(halflife)
        #: Requests arriving from clients directly (not via a proxy
        #: MDS); peers use this to detect spread client sessions.  Short
        #: halflife: coherence pressure should vanish quickly once a
        #: server's direct clients move away.
        self.direct = DecayCounter(halflife=1.0)
        self._inode_pop: Dict[int, DecayCounter] = {}
        self._halflife = halflife

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_request(self, now: float, ino: int,
                       service_time: float) -> None:
        self.requests.hit(now)
        self.busy.hit(now, service_time)
        counter = self._inode_pop.get(ino)
        if counter is None:
            counter = self._inode_pop[ino] = DecayCounter(self._halflife)
        counter.hit(now)

    def record_direct(self, now: float) -> None:
        self.direct.hit(now)

    def forget_inode(self, ino: int) -> None:
        self._inode_pop.pop(ino, None)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def request_rate(self, now: float) -> float:
        """Decayed requests (roughly: recent requests per halflife)."""
        return self.requests.get(now)

    def cpu_util(self, now: float) -> float:
        """Synthetic CPU utilization in [0, 1]."""
        # busy holds decayed busy-seconds; normalize by the halflife
        # window to approximate a utilization fraction.
        return min(1.0, self.busy.get(now) / self._halflife)

    def inode_popularity(self, now: float, ino: int) -> float:
        counter = self._inode_pop.get(ino)
        return counter.get(now) if counter else 0.0

    def hottest_inodes(self, now: float,
                       limit: int = 10) -> List[Tuple[int, float]]:
        scored = sorted(
            ((ino, c.get(now)) for ino, c in self._inode_pop.items()),
            key=lambda pair: pair[1], reverse=True)
        return scored[:limit]

    def snapshot(self, now: float,
                 cpu_noise_rng: Any = None) -> Dict[str, Any]:
        """The per-MDS row exported to balancer policies (``mds[i]``).

        ``cpu_noise_rng`` injects multiplicative sampling noise into the
        CPU reading — utilization sampled from /proc is jittery, which
        is why the paper finds CPU-based balancing decisions noisy and
        unpredictable (section 6.2.1, Figure 10a's error bars).
        """
        cpu = self.cpu_util(now)
        if cpu_noise_rng is not None:
            cpu = min(1.0, cpu * cpu_noise_rng.uniform(0.7, 1.3))
        return {
            "load": self.request_rate(now),
            "cpu": cpu,
            "req_rate": self.request_rate(now),
            "direct_rate": self.direct.get(now),
        }
