"""Path utilities and the in-memory namespace cache of one MDS.

The cache is authoritative only for paths inside the subtrees this MDS
owns (dynamic subtree partitioning).  Directory contents write through
to RADOS (one object per directory, children in its omap), which is
what makes metadata durable and lets an MDS rank be re-adopted after a
failure by replaying from the object store.

Simplification vs CephFS (documented in DESIGN.md): the cache is keyed
by *path* rather than by a dentry tree.  Rename across directories is
therefore not supported; none of the paper's workloads uses it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import AlreadyExists, InvalidArgument, NotFound
from repro.mds.inode import DIR, FILE, Inode


def validate_path(path: str) -> str:
    """Normalize and validate an absolute path."""
    if not path.startswith("/"):
        raise InvalidArgument(f"path must be absolute: {path!r}")
    while "//" in path:
        path = path.replace("//", "/")
    if path != "/" and path.endswith("/"):
        path = path[:-1]
    for part in components(path):
        if part in (".", ".."):
            raise InvalidArgument(f"path may not contain {part!r}")
    return path


def components(path: str) -> List[str]:
    if path == "/":
        return []
    return path.lstrip("/").split("/")


def parent_of(path: str) -> str:
    if path == "/":
        raise InvalidArgument("root has no parent")
    head, _, _ = path.rpartition("/")
    return head or "/"


def basename(path: str) -> str:
    return path.rpartition("/")[2]


def under(path: str, prefix: str) -> bool:
    """Component-wise containment: is ``path`` inside ``prefix``?"""
    if prefix == "/":
        return True
    return path == prefix or path.startswith(prefix + "/")


def dir_object_id(path: str) -> str:
    """RADOS object id holding a directory's children."""
    return f"mdsdir:{path}"


class NamespaceCache:
    """Path-keyed inode cache with parent/child bookkeeping."""

    def __init__(self) -> None:
        self._inodes: Dict[str, Inode] = {}
        self._children: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, path: str) -> Inode:
        inode = self._inodes.get(path)
        if inode is None:
            raise NotFound(f"no such file or directory: {path!r}")
        return inode

    def maybe_get(self, path: str) -> Optional[Inode]:
        return self._inodes.get(path)

    def has(self, path: str) -> bool:
        return path in self._inodes

    def listdir(self, path: str) -> List[str]:
        inode = self.get(path)
        if inode.kind != DIR:
            raise InvalidArgument(f"not a directory: {path!r}")
        return sorted(self._children.get(path, ()))

    def path_of_ino(self, ino: int) -> Optional[str]:
        for path, inode in self._inodes.items():
            if inode.ino == ino:
                return path
        return None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, path: str, inode: Inode) -> None:
        if path in self._inodes:
            raise AlreadyExists(f"{path!r} already exists")
        if path != "/":
            parent = parent_of(path)
            parent_inode = self.get(parent)
            if parent_inode.kind != DIR:
                raise InvalidArgument(f"not a directory: {parent!r}")
            self._children.setdefault(parent, set()).add(basename(path))
        self._inodes[path] = inode
        if inode.kind == DIR:
            self._children.setdefault(path, set())

    def remove(self, path: str) -> Inode:
        inode = self.get(path)
        if inode.kind == DIR and self._children.get(path):
            raise InvalidArgument(f"directory not empty: {path!r}")
        del self._inodes[path]
        self._children.pop(path, None)
        if path != "/":
            siblings = self._children.get(parent_of(path))
            if siblings is not None:
                siblings.discard(basename(path))
        return inode

    # ------------------------------------------------------------------
    # Subtree operations (migration support)
    # ------------------------------------------------------------------
    def paths_under(self, prefix: str) -> List[str]:
        return sorted(p for p in self._inodes if under(p, prefix))

    def extract_subtree(self, prefix: str) -> Dict[str, dict]:
        """Remove and return all state under ``prefix`` (export side).

        The subtree root's *name* stays in its parent's child list as a
        remote dentry — the parent directory still lists the entry (as
        CephFS parents do); only authority and inode state move.
        """
        payload = {}
        for path in self.paths_under(prefix):
            payload[path] = self._inodes.pop(path).to_dict()
            self._children.pop(path, None)
        return payload

    def install_subtree(self, entries: Dict[str, dict]) -> None:
        """Adopt exported state (import side); overwrites stale copies."""
        for path in sorted(entries):
            inode = Inode.from_dict(entries[path])
            self._inodes[path] = inode
            if inode.kind == DIR:
                self._children.setdefault(path, set())
            if path != "/":
                parent = parent_of(path)
                if parent in self._inodes:
                    self._children.setdefault(parent, set()).add(
                        basename(path))

    def inode_count(self) -> int:
        return len(self._inodes)

    def all_paths(self) -> List[str]:
        return sorted(self._inodes)
