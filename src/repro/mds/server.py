"""The metadata server daemon.

One MDS daemon holds one *rank* of the metadata cluster and is
authoritative for the namespace subtrees the MDS map assigns to that
rank.  It implements:

* POSIX-ish namespace operations (mkdir/create/stat/readdir/unlink)
  with write-through persistence to RADOS (one object per directory);
* the **File Type** execution path (``ftype_exec``): server-side
  operations on an inode's embedded state — the round-trip sequencer;
* the **Shared Resource** capability protocol: exclusive cacheable
  grants with policy-driven cooperative revocation, including the
  holder-death timeout;
* request routing after migration: ``proxy`` mode forwards to the
  owner and relays; ``client`` mode redirects (Figure 11);
* subtree export/import — the migration mechanism Mantle's policies
  drive (section 4.3.3);
* load accounting and peer load gossip for the balancer.

Processing cost model: the MDS is a single-server queue.  Every
request consumes a service time on the daemon's virtual CPU
(:meth:`_consume_cpu`), so throughput saturates and migration
genuinely relieves load — the effect Figures 9-12 measure.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Generator, List, Optional, Set

from repro.errors import (
    AlreadyExists,
    CapRevoked,
    InvalidArgument,
    MalacologyError,
    NotFound,
    TryAgain,
    WrongMDS,
)
from repro.mds.capability import LeasePolicy, Locker
from repro.mds.inode import DIR, FILE, Inode, InoAllocator, ROOT_INO
from repro.mds.metrics import LoadTracker
from repro.mds.namespace import (
    NamespaceCache,
    basename,
    dir_object_id,
    parent_of,
    under,
    validate_path,
)
from repro.monitor.maps import MDSMap
from repro.msg import Daemon
from repro.rados.client import RadosClient
from repro.sim.event import Future, Timeout
from repro.sim.kernel import Simulator
from repro.sim.network import Network

#: Pool that holds directory objects, journals, and balancer policies.
METADATA_POOL = "metadata"


class MDS(Daemon, RadosClient):
    """One metadata server daemon."""

    # Service-time model (simulated seconds per request kind).
    #
    # File Type operations decompose the way section 6.2 describes:
    # "(1) the handling of the client requests and (2) finding the tail
    # of the log and responding to clients.  Doing both steps is too
    # heavyweight for one server."  A direct request pays RECEIVE +
    # PROCESS on one daemon; a forwarded request pays RECEIVE + FORWARD
    # at the proxy and only PROCESS at the owner — which is why Proxy
    # Mode (Full) pipelines better than any single server.  When client
    # sessions are spread across several MDSs, each direct request also
    # pays COHERENCE for the scatter-gather cache-coherence chatter the
    # paper blames for client mode's lower cluster throughput (6.2.1).
    COST_LOOKUP = 100e-6
    COST_MUTATE = 250e-6
    COST_RECEIVE = 200e-6
    COST_PROCESS = 200e-6
    COST_COHERENCE = 300e-6
    COST_FORWARD = 50e-6
    COST_CAP = 200e-6
    #: A peer MDS counts as "serving clients" while its gossiped direct
    #: request rate exceeds this (decayed ops).
    DIRECT_RATE_FLOOR = 5.0

    LOAD_GOSSIP_INTERVAL = 1.0
    BALANCE_INTERVAL = 10.0
    CAP_REVOKE_TIMEOUT = 2.0
    FORWARD_TIMEOUT = 10.0
    MIGRATION_CAP_WAIT = 1.0
    #: Metadata mutations are journaled to a per-rank RADOS object via
    #: the bundled ``log`` object class — the MDS is itself a consumer
    #: of the Data I/O interface.  The journal is an ordered audit/
    #: replay record; directory objects remain the authoritative state.
    JOURNAL_ENABLED = True
    JOURNAL_TRIM_INTERVAL = 60.0
    JOURNAL_TRIM_BATCH = 200

    def __init__(self, sim: Simulator, network: Network, name: str,
                 mon_names: List[str], rank: int):
        super().__init__(sim, network, name)
        self.init_mon_client(mon_names)
        self.rank = rank
        self.ns = NamespaceCache()
        self.locker = Locker()
        self.tracker = LoadTracker()
        self.allocator = InoAllocator(rank)
        self._cpu_free_at = 0.0
        self._frozen: Set[str] = set()
        self._grant_waiters: Dict[int, Dict[str, Future]] = {}
        self.peer_loads: Dict[int, Dict[str, Any]] = {}
        #: Pluggable balancer (a ``repro.mantle.balancer.MantleBalancer``);
        #: None means no balancing at all.
        self.balancer: Optional[Any] = None
        self.booted = False
        #: Bench hook: fn(op, sim_time) on every locally served request.
        self.request_hook: Optional[Any] = None
        #: Changelog producer shim (``repro.changelog.ChangelogProducer``)
        #: attached by ``cluster.enable_changelog``; None = no changelog.
        self.changelog: Optional[Any] = None
        #: Seconds of queued CPU work ahead of a request arriving now.
        self.perf.gauge_fn(
            "cpu.backlog",
            lambda: max(0.0, self._cpu_free_at - self.sim.now))
        # Health-facing gauges.  All pure reads: ``peek`` leaves the
        # decay counters' float state untouched, so how often the mgr
        # samples this MDS can never alter its balancing decisions.
        self.perf.gauge_fn(
            "mds.load",
            lambda: self.tracker.requests.peek(self.sim.now))
        self.perf.gauge_fn("ns.inodes", lambda: self.ns.inode_count())
        self.perf.gauge_fn("caps.revoking",
                           lambda: self.locker.revoking_count())

        rh = self.register_handler
        rh("mds_req", self._h_request)
        rh("mds_import", self._h_import)
        rh("mds_load", self._h_load)
        self.spawn(self._boot(), name=f"{self.name}:boot")

    # ------------------------------------------------------------------
    # Boot
    # ------------------------------------------------------------------
    def _boot(self) -> Generator:
        yield from self.mon_subscribe(["mds", "osd"])
        yield from self.mon_get_map("osd")
        yield from self.mon_submit([{
            "op": "map_update", "kind": "mds",
            "actions": [
                {"action": "set_rank", "rank": self.rank,
                 "name": self.name},
                {"action": "set_state", "name": self.name, "state": "up"},
            ]}])
        yield from self.mon_get_map("mds")
        if self.rank == 0 and not self.ns.has("/"):
            root = Inode(ROOT_INO, DIR)
            self.ns.add("/", root)
        yield from self._recover_owned_subtrees()
        self.every(self.LOAD_GOSSIP_INTERVAL, self._gossip_load,
                   name=f"{self.name}:load")
        self.every(self.BALANCE_INTERVAL, self._balance_tick,
                   name=f"{self.name}:balance")
        if self.JOURNAL_ENABLED:
            self.every(self.JOURNAL_TRIM_INTERVAL,
                       lambda: self._journal_trim_tick(),
                       name=f"{self.name}:jtrim")
        self.booted = True

    @property
    def mdsmap(self) -> Optional[MDSMap]:
        return self.cached_maps.get("mds")

    def _recover_owned_subtrees(self) -> Generator:
        """Reload authoritative subtrees from RADOS after a (re)start."""
        m = self.mdsmap
        if m is None:
            return
        for prefix, rank in sorted(m.subtrees.items()):
            if rank != self.rank:
                continue
            if prefix == "/":
                # The root inode is synthesized; its children live in
                # the root dir object.
                yield from self._load_children("/")
            elif not self.ns.has(prefix):
                yield from self._load_dir_chain(prefix)

    def _load_dir_chain(self, path: str) -> Generator:
        """Populate the cache for ``path`` and everything beneath it."""
        try:
            entries = yield from self.rados_op(
                METADATA_POOL, dir_object_id(parent_of(path)),
                [{"op": "omap_get", "key": basename(path)}])
        except MalacologyError:
            return
        if not self.ns.has(path):
            inode = Inode.from_dict(entries[0])
            self.ns.install_subtree({path: inode.to_dict()})
        yield from self._load_children(path)

    def _load_children(self, path: str) -> Generator:
        try:
            listing = yield from self.rados_op(
                METADATA_POOL, dir_object_id(path), [{"op": "omap_list"}])
        except MalacologyError:
            return
        for name, record in listing[0]:
            child = f"{path}/{name}" if path != "/" else f"/{name}"
            if not self.ns.has(child):
                self.ns.install_subtree({child: record})
            if record["kind"] == DIR:
                yield from self._load_children(child)

    # ------------------------------------------------------------------
    # CPU model
    # ------------------------------------------------------------------
    def _consume_cpu(self, cost: float) -> Generator:
        """Serialize through this daemon's virtual CPU."""
        start = max(self.sim.now, self._cpu_free_at)
        self._cpu_free_at = start + cost
        wait = self._cpu_free_at - self.sim.now
        if wait > 0:
            yield Timeout(wait)

    # ------------------------------------------------------------------
    # Request entry point
    # ------------------------------------------------------------------
    def _h_request(self, src: str, payload: Dict[str, Any]) -> Generator:
        op = payload["op"]
        path = validate_path(payload["path"])
        m = self.mdsmap
        if m is None or not self.booted:
            raise TryAgain(f"{self.name} still booting")
        # Freeze blocks new work during migration, but capability
        # releases must drain through it — the export is waiting on
        # exactly those releases.
        if op != "cap_release":
            for prefix in self._frozen:
                if under(path, prefix):
                    raise TryAgain(f"{prefix} is migrating")
        owner = m.owner_of(path)
        if owner != self.rank:
            self.perf.incr("op.forward")
            result = yield from self._route_away(owner, src, payload)
            return result
        handler = self._OPS.get(op)
        if handler is None:
            raise InvalidArgument(f"unknown mds op {op!r}")
        started = self.sim.now
        result = yield from handler(self, src, path,
                                    payload.get("args", {}))
        self.perf.time(f"op.{op}", self.sim.now - started)
        if self.request_hook is not None:
            self.request_hook(op, self.sim.now)
        return result

    def _route_away(self, owner: int, src: str,
                    payload: Dict[str, Any]) -> Generator:
        m = self.mdsmap
        assert m is not None
        if m.routing_mode == "proxy":
            target = m.rank_holder(owner)
            if target is None:
                raise TryAgain(f"rank {owner} has no daemon")
            # The proxy relays at messenger/dispatch cost, *off* the MDS
            # work queue: no tail-finding, no per-request session
            # ceremony.  This is what lets Proxy Mode "completely
            # decouple client request handling and operation
            # processing" (section 6.2.2) — forwarded traffic pipelines
            # past the proxy's own request processing instead of
            # queueing behind it.
            yield Timeout(self.COST_FORWARD)
            self.tracker.record_request(self.sim.now,
                                        f"fwd:{payload['path']}",
                                        self.COST_FORWARD)
            result = yield self.call(target, "mds_req", payload,
                                     timeout=self.FORWARD_TIMEOUT)
            return result
        raise WrongMDS(owner)

    # ------------------------------------------------------------------
    # Namespace operations
    # ------------------------------------------------------------------
    def _op_mkdir(self, src: str, path: str,
                  args: Dict[str, Any]) -> Generator:
        yield from self._consume_cpu(self.COST_MUTATE)
        self.tracker.record_request(self.sim.now, path, self.COST_MUTATE)
        inode = Inode(self.allocator.allocate(), DIR)
        self.ns.add(path, inode)
        yield from self._persist_entry(path, inode)
        yield from self._journal("mkdir", path, ino=inode.ino)
        self._emit_changelog("mkdir", src, path, ino=inode.ino)
        return inode.to_dict()

    def _op_create(self, src: str, path: str,
                   args: Dict[str, Any]) -> Generator:
        yield from self._consume_cpu(self.COST_MUTATE)
        self.tracker.record_request(self.sim.now, path, self.COST_MUTATE)
        file_type = args.get("file_type", "regular")
        inode = Inode(self.allocator.allocate(), FILE, file_type=file_type)
        self.ns.add(path, inode)
        yield from self._persist_entry(path, inode)
        yield from self._journal("create", path, ino=inode.ino,
                                 file_type=file_type)
        self._emit_changelog("create", src, path, ino=inode.ino,
                             file_type=file_type)
        return inode.to_dict()

    def _op_setattr(self, src: str, path: str,
                    args: Dict[str, Any]) -> Generator:
        """Update inode attributes (currently: size, after data I/O)."""
        yield from self._consume_cpu(self.COST_MUTATE)
        self.tracker.record_request(self.sim.now, path, self.COST_MUTATE)
        inode = self.ns.get(path)
        size = args.get("size")
        if size is not None:
            if size < 0:
                raise InvalidArgument(f"negative size {size}")
            inode.size = size
            inode.version += 1
        yield from self._persist_entry(path, inode)
        yield from self._journal("setattr", path, size=inode.size)
        self._emit_changelog("setattr", src, path, ino=inode.ino,
                             size=inode.size)
        return inode.to_dict()

    def _op_stat(self, src: str, path: str,
                 args: Dict[str, Any]) -> Generator:
        yield from self._consume_cpu(self.COST_LOOKUP)
        self.tracker.record_request(self.sim.now, path, self.COST_LOOKUP)
        return self.ns.get(path).to_dict()

    def _op_readdir(self, src: str, path: str,
                    args: Dict[str, Any]) -> Generator:
        yield from self._consume_cpu(self.COST_LOOKUP)
        self.tracker.record_request(self.sim.now, path, self.COST_LOOKUP)
        return self.ns.listdir(path)

    def _op_unlink(self, src: str, path: str,
                   args: Dict[str, Any]) -> Generator:
        yield from self._consume_cpu(self.COST_MUTATE)
        self.tracker.record_request(self.sim.now, path, self.COST_MUTATE)
        inode = self.ns.remove(path)
        self.locker.drop_ino(inode.ino)
        san = getattr(self.sim, "sanitizers", None)
        if san is not None:
            san.caps.on_drop(inode.ino, daemon=self)
        self.tracker.forget_inode(path)
        yield from self.rados_op(
            METADATA_POOL, dir_object_id(parent_of(path)),
            [{"op": "omap_del", "key": basename(path)}])
        yield from self._journal("unlink", path, ino=inode.ino)
        self._emit_changelog("unlink", src, path, ino=inode.ino)
        return None

    def _op_rename(self, src: str, path: str,
                   args: Dict[str, Any]) -> Generator:
        """Rename a file within this rank's authority.

        The namespace cache is path-keyed, so directory renames are
        unsupported (same restriction as ``NamespaceCache``); files may
        move across directories as long as both ends share the owning
        rank.  Any delegated capability is recalled first so the
        holder's dirty state lands before the dentry moves.
        """
        yield from self._consume_cpu(self.COST_MUTATE)
        self.tracker.record_request(self.sim.now, path, self.COST_MUTATE)
        to = validate_path(args.get("to", ""))
        m = self.mdsmap
        if m is None or m.owner_of(to) != self.rank:
            raise InvalidArgument(
                f"cross-rank rename {path} -> {to} unsupported")
        for prefix in self._frozen:
            if under(to, prefix):
                raise TryAgain(f"{prefix} is migrating")
        inode = self.ns.get(path)
        if inode.kind == DIR:
            raise InvalidArgument(
                "directory rename unsupported (path-keyed namespace)")
        if self.ns.has(to):
            raise AlreadyExists(f"{to} exists")
        if self.locker.holder_of(inode.ino) is not None:
            yield from self._recall_cap(inode.ino)
        self.ns.remove(path)
        self.ns.add(to, inode)
        self.tracker.forget_inode(path)
        yield from self.rados_op(
            METADATA_POOL, dir_object_id(parent_of(path)),
            [{"op": "omap_del", "key": basename(path)}])
        yield from self._persist_entry(to, inode)
        yield from self._journal("rename", path, to=to, ino=inode.ino)
        self._emit_changelog("rename", src, path, to=to, ino=inode.ino)
        return inode.to_dict()

    def _persist_entry(self, path: str, inode: Inode) -> Generator:
        """Write-through: record the dentry in the parent's dir object."""
        yield from self.rados_op(
            METADATA_POOL, dir_object_id(parent_of(path)),
            [{"op": "omap_set", "key": basename(path),
              "value": inode.to_dict()}])

    def _emit_changelog(self, kind: str, actor: str, path: str,
                        **details: Any) -> None:
        """Fire-and-forget changelog emission (no-op when disabled)."""
        if self.changelog is not None:
            self.changelog.emit(kind, actor, path, rank=self.rank,
                                **details)

    # ------------------------------------------------------------------
    # Metadata journal
    # ------------------------------------------------------------------
    @property
    def journal_object(self) -> str:
        return f"mdsjournal.{self.rank}"

    def _journal(self, event: str, path: str, **extra: Any) -> Generator:
        if not self.JOURNAL_ENABLED:
            return
        payload = {"event": event, "path": path, "rank": self.rank}
        payload.update(extra)
        try:
            yield from self.rados_exec(METADATA_POOL, self.journal_object,
                                       "log", "add", {"payload": payload})
        except MalacologyError:
            # The journal is an audit record, not the source of truth
            # (directory objects are); losing one entry must not fail
            # the client's operation.
            pass

    def _journal_trim_tick(self) -> Generator:
        """Keep the journal bounded: drop the oldest batch when full."""
        try:
            out = yield from self.rados_exec(
                METADATA_POOL, self.journal_object, "log", "list",
                {"max": self.JOURNAL_TRIM_BATCH})
        except MalacologyError:
            return
        if out["truncated"]:
            yield from self.rados_exec(
                METADATA_POOL, self.journal_object, "log", "trim",
                {"to_cursor": out["cursor"]})

    # ------------------------------------------------------------------
    # File Type execution (round-trip path)
    # ------------------------------------------------------------------
    def _op_ftype_exec(self, src: str, path: str,
                       args: Dict[str, Any]) -> Generator:
        inode = self.ns.get(path)
        holder = self.locker.holder_of(inode.ino)
        if holder is not None and holder.client != src:
            # The embedded state is delegated to a cap holder; recall it
            # before serving the server-side op.
            yield from self._recall_cap(inode.ino)
        m = self.mdsmap
        internal = (m is not None and src in m.ranks.values())
        if internal:
            # Forwarded by a proxy MDS: session handling happened there.
            cost = self.COST_PROCESS
        else:
            cost = self.COST_RECEIVE + self.COST_PROCESS
            self.tracker.record_direct(self.sim.now)
            if self._another_rank_active():
                cost += self.COST_COHERENCE
        yield from self._consume_cpu(cost)
        self.tracker.record_request(self.sim.now, path, cost)
        return inode.execute(args["method"], args.get("args", {}))

    def _another_rank_active(self) -> bool:
        """Is the metadata cluster multi-active from our vantage point?

        Drives the scatter-gather coherence cost on *direct* client
        service (section 6.2.1): once another rank either terminates
        client sessions or owns delegated subtrees, every directly
        served request drags the cross-MDS cache-coherence machinery
        with it.  Forwarded (proxied) work never pays it — the proxy's
        session covers the client — which is the root of proxy mode's
        throughput advantage (Figure 12).
        """
        m = self.mdsmap
        if m is not None:
            for path, rank in m.subtrees.items():
                if rank != self.rank and path != "/":
                    return True
        for rank, row in self.peer_loads.items():
            if rank == self.rank:
                continue
            if row.get("direct_rate", 0.0) > self.DIRECT_RATE_FLOOR:
                return True
        return False

    def _recall_cap(self, ino: int) -> Generator:
        fut = Future(name=f"recall:{ino}")
        self._grant_waiters.setdefault(ino, {})["__server__"] = fut
        path = self.ns.path_of_ino(ino)
        if path is None:
            return
        # Queue like any other client so the revoke machinery fires.
        inode = self.ns.get(path)
        san = getattr(self.sim, "sanitizers", None)
        server_cap = self.locker.try_grant(ino, "__server__",
                                           self.sim.now,
                                           self._policy_for(inode))
        if server_cap is not None:
            # The holder vanished between the check and the queue; we
            # hold the grant now and release it below.
            if san is not None:
                san.caps.on_grant(self.name, ino, "__server__",
                                  server_cap.seq, daemon=self)
            self._grant_waiters[ino].pop("__server__", None)
        else:
            self._maybe_revoke(ino)
            yield fut
        # We don't keep the grant; release it right back so clients can
        # re-acquire.  (Server-side ops and caps rarely mix in practice.)
        cap = self.locker.holder_of(ino)
        if cap is not None and cap.client == "__server__":
            self.locker.release(ino, "__server__", cap.seq)
            if san is not None:
                san.caps.on_release(self.name, ino, "__server__",
                                    daemon=self)
            self._grant_next(ino)

    # ------------------------------------------------------------------
    # Capabilities (Shared Resource interface)
    # ------------------------------------------------------------------
    def _op_open(self, src: str, path: str,
                 args: Dict[str, Any]) -> Generator:
        yield from self._consume_cpu(self.COST_CAP)
        self.tracker.record_request(self.sim.now, path, self.COST_CAP)
        inode = self.ns.get(path)
        policy = self._policy_for(inode)
        if not policy.cacheable:
            return {"cacheable": False, "policy": policy.to_dict(),
                    "ino": inode.ino}
        cap = self.locker.try_grant(inode.ino, src, self.sim.now, policy)
        if cap is not None:
            self.perf.incr("cap.grant")
            san = getattr(self.sim, "sanitizers", None)
            if san is not None:
                san.caps.on_grant(self.name, inode.ino, src, cap.seq,
                                  daemon=self)
            return self._grant_payload(inode, cap)
        fut = Future(name=f"grant:{inode.ino}:{src}")
        self._grant_waiters.setdefault(inode.ino, {})[src] = fut
        self._maybe_revoke(inode.ino)
        grant = yield fut
        return grant

    def _policy_for(self, inode: Inode) -> LeasePolicy:
        m = self.mdsmap
        raw = m.lease_policy if m is not None else {}
        policy = LeasePolicy.from_dict(
            inode.type_plugin.lease_policy_override(dict(raw)))
        return policy

    def _grant_payload(self, inode: Inode, cap) -> Dict[str, Any]:
        return {
            "cacheable": True,
            "ino": inode.ino,
            "seq": cap.seq,
            "policy": cap.policy.to_dict(),
            "embedded": copy.deepcopy(inode.embedded),
            "granted_at": cap.granted_at,
        }

    def _op_cap_release(self, src: str, path: str,
                        args: Dict[str, Any]) -> Generator:
        yield from self._consume_cpu(self.COST_CAP)
        ino = args["ino"]
        inode = self.ns.get(path)
        if self.locker.release(ino, src, args["seq"]):
            self.perf.incr("cap.release")
            san = getattr(self.sim, "sanitizers", None)
            if san is not None:
                san.caps.on_release(self.name, ino, src, daemon=self)
            inode.merge_flush(args.get("dirty", {}))
            self._grant_next(ino)
        return None

    def _maybe_revoke(self, ino: int) -> None:
        cap = self.locker.needs_revoke(ino)
        if cap is None:
            return
        self.locker.mark_revoking(ino)
        self.perf.incr("cap.revoke")
        san = getattr(self.sim, "sanitizers", None)
        if san is not None:
            san.caps.on_revoke_start(self.name, ino, daemon=self)
        self.cast(cap.client, "cap_revoke", {"ino": ino, "seq": cap.seq})
        self.sim.schedule(self.CAP_REVOKE_TIMEOUT,
                          self._revoke_deadline, ino, cap.client, cap.seq)

    def _revoke_deadline(self, ino: int, client: str, seq: int) -> None:
        """Holder unresponsive past the timeout: declare it dead.

        Section 5.2.2: "a timeout is used to determine when a client
        should be considered unavailable."  Its dirty state is lost;
        for sequencers that is safe because CORFU recovery (seal +
        max-pos) never reuses positions.
        """
        if not self.alive:
            return
        cap = self.locker.holder_of(ino)
        if cap is None or cap.client != client or cap.seq != seq:
            return  # released in time
        self.locker.release(ino, client, seq)
        san = getattr(self.sim, "sanitizers", None)
        if san is not None:
            san.caps.on_release(self.name, ino, client, daemon=self)
        self._grant_next(ino)

    def _grant_next(self, ino: int) -> None:
        waiter = self.locker.next_waiter(ino)
        if waiter is None:
            return
        path = self.ns.path_of_ino(ino)
        if path is None:
            fut = self._grant_waiters.get(ino, {}).pop(waiter, None)
            if fut is not None:
                fut.fail_if_pending(NotFound(f"ino {ino} disappeared"))
            return
        inode = self.ns.get(path)
        cap = self.locker.try_grant(ino, waiter, self.sim.now,
                                    self._policy_for(inode))
        fut = self._grant_waiters.get(ino, {}).pop(waiter, None)
        if cap is None:
            return
        self.perf.incr("cap.grant")
        san = getattr(self.sim, "sanitizers", None)
        if san is not None:
            san.caps.on_grant(self.name, ino, waiter, cap.seq,
                              daemon=self)
        if fut is not None:
            fut.resolve_if_pending(self._grant_payload(inode, cap))
        if self.locker.needs_revoke(ino):
            self._maybe_revoke(ino)

    # ------------------------------------------------------------------
    # Load gossip and balancing
    # ------------------------------------------------------------------
    def load_snapshot(self) -> Dict[str, Any]:
        """This MDS's balancer-visible load row (with noisy CPU)."""
        return self.tracker.snapshot(
            self.sim.now, cpu_noise_rng=self.sim.rng(f"cpu:{self.name}"))

    def _gossip_load(self) -> None:
        m = self.mdsmap
        if m is None:
            return
        snapshot = self.load_snapshot()
        snapshot["rank"] = self.rank
        snapshot["inodes"] = self.ns.inode_count()
        snapshot["time"] = self.sim.now
        self.peer_loads[self.rank] = snapshot
        for rank, daemon in m.ranks.items():
            if rank != self.rank and m.state.get(daemon) == "up":
                self.cast(daemon, "mds_load", snapshot)

    def _h_load(self, src: str, payload: Dict[str, Any]) -> None:
        self.peer_loads[payload["rank"]] = payload

    def _balance_tick(self) -> Optional[Generator]:
        if self.balancer is None or not self.booted:
            return None
        return self.balancer.tick()

    # ------------------------------------------------------------------
    # Migration (Load Balancing interface mechanisms)
    # ------------------------------------------------------------------
    def migrate_subtree(self, path: str, target_rank: int) -> Generator:
        """Export authority for ``path`` to ``target_rank``.

        The mechanism behind every Mantle policy decision: freeze,
        recall caps, ship state, flip authority through the monitors,
        drop local state.
        """
        m = self.mdsmap
        if m is None or m.owner_of(path) != self.rank:
            return
        if target_rank == self.rank:
            return
        target = m.rank_holder(target_rank)
        if target is None or m.state.get(target) != "up":
            return
        if any(under(path, p) or under(p, path) for p in self._frozen):
            return
        self._frozen.add(path)
        san = getattr(self.sim, "sanitizers", None)
        if san is not None:
            san.migration.on_export_begin(path, self.rank, target_rank,
                                          daemon=self)
        try:
            yield from self._recall_subtree_caps(path)
            entries = {p: self.ns.get(p).to_dict()
                       for p in self.ns.paths_under(path)}
            if not entries:
                return
            pops = {p: self.tracker.inode_popularity(self.sim.now, p)
                    for p in entries}
            yield self.call(target, "mds_import",
                            {"path": path, "entries": entries,
                             "popularity": pops},
                            timeout=self.FORWARD_TIMEOUT)
            yield from self.mon_submit([{
                "op": "map_update", "kind": "mds",
                "actions": [{"action": "set_subtree_auth", "path": path,
                             "rank": target_rank}]}])
            yield from self.mon_get_map("mds")
            self.ns.extract_subtree(path)
            for p in entries:
                self.tracker.forget_inode(p)
            yield from self._journal("export", path, to_rank=target_rank)
            self._emit_changelog("migrate", self.name, path,
                                 to_rank=target_rank,
                                 inodes=len(entries))
            self.perf.incr("migrate.export")
            self.perf.incr("migrate.inodes", len(entries))
            yield from self.mon_log(
                "INF", f"mds.{self.rank} exported {path} to "
                       f"rank {target_rank}")
        finally:
            self._frozen.discard(path)
            if san is not None:
                san.migration.on_export_end(path, daemon=self)

    def _recall_subtree_caps(self, path: str) -> Generator:
        for p in self.ns.paths_under(path):
            inode = self.ns.maybe_get(p)
            if inode is None:
                continue
            cap = self.locker.holder_of(inode.ino)
            if cap is not None:
                yield from self._recall_cap(inode.ino)
            # Fail queued waiters; clients retry against the new owner.
            for fut in self._grant_waiters.pop(inode.ino, {}).values():
                fut.fail_if_pending(TryAgain(f"{path} migrating"))
            self.locker.drop_ino(inode.ino)
            san = getattr(self.sim, "sanitizers", None)
            if san is not None:
                san.caps.on_drop(inode.ino, daemon=self)

    def _h_import(self, src: str, payload: Dict[str, Any]) -> bool:
        san = getattr(self.sim, "sanitizers", None)
        if san is not None:
            san.migration.on_import(payload["path"], self.rank,
                                    daemon=self)
        self.perf.incr("migrate.import")
        self.ns.install_subtree(payload["entries"])
        now = self.sim.now
        for p, pop in payload.get("popularity", {}).items():
            # Seed the decayed counters so the balancer does not see a
            # freshly imported subtree as cold.
            self.tracker.record_request(now, p, 0.0)
            for _ in range(int(pop)):
                self.tracker.record_request(now, p, 0.0)
        return True

    # ------------------------------------------------------------------
    # Crash / restart
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        super().on_crash()  # telemetry is volatile
        # The namespace cache and caps are volatile; directories live in
        # RADOS and are reloaded on restart.
        self.booted = False
        self.ns = NamespaceCache()
        self.locker = Locker()
        self.tracker = LoadTracker()
        self._frozen = set()
        san = getattr(self.sim, "sanitizers", None)
        if san is not None:
            # Every lease this MDS issued died with its Locker.
            san.on_daemon_reset(self.name)
        for waiters in self._grant_waiters.values():
            for fut in waiters.values():
                fut.fail_if_pending(CapRevoked("mds crashed"))
        self._grant_waiters = {}
        self.peer_loads = {}
        self._cpu_free_at = 0.0

    def on_restart(self) -> None:
        if self.changelog is not None:
            # New incarnation: fresh producer identity so the shard
            # class never mistakes the reset pseq counter for replays.
            self.changelog.on_daemon_restart()
        self.spawn(self._boot(), name=f"{self.name}:reboot")

    #: Dispatch table (class attribute so subclasses can extend).
    _OPS = {
        "mkdir": _op_mkdir,
        "create": _op_create,
        "stat": _op_stat,
        "setattr": _op_setattr,
        "rename": _op_rename,
        "readdir": _op_readdir,
        "unlink": _op_unlink,
        "ftype_exec": _op_ftype_exec,
        "open": _op_open,
        "cap_release": _op_cap_release,
    }
