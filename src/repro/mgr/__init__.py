"""Cluster management service: health, metrics, and decision audit.

The Malacology thesis is that storage-internal state should be exposed
and programmable; ``repro.mgr`` is the operator-facing half of that
claim — a Ceph-mgr-style daemon that scrapes every daemon's telemetry
over the message layer into bounded time series, evaluates pluggable
health checks into the ``HEALTH_OK/WARN/ERR`` ladder, exports
Prometheus text, and keeps the Mantle decision audit trail that makes
balancer behaviour explainable after the fact.

Pieces:

* :class:`MgrDaemon` — the manager daemon (deterministic scraping;
  see its module docstring for the non-perturbation contract);
* :mod:`repro.mgr.timeseries` — per-daemon metric ring buffers with
  rate/derivative queries;
* :mod:`repro.mgr.health` — the check framework and the built-in
  checks (OSD down, Paxos stall, MDS latency regression, stuck cap
  revokes, ZLog epoch churn, subtree imbalance);
* :mod:`repro.mgr.prometheus` — exposition-format export and a strict
  parser;
* :mod:`repro.mgr.audit` — the per-MDS Mantle audit trail and the
  cluster-wide merge.
"""

from repro.mgr.audit import MantleAuditTrail, merge_trails
from repro.mgr.daemon import MgrDaemon
from repro.mgr.health import (
    HEALTH_ERR,
    HEALTH_OK,
    HEALTH_WARN,
    ClusterSample,
    HealthCheck,
    HealthCheckResult,
    HealthReport,
    default_checks,
    evaluate_health,
    sample_cluster,
    worst_status,
)
from repro.mgr.prometheus import (
    PromSample,
    parse_prometheus_text,
    prometheus_export,
)
from repro.mgr.timeseries import DaemonSeries, MetricSeries

__all__ = [
    "ClusterSample",
    "DaemonSeries",
    "HEALTH_ERR",
    "HEALTH_OK",
    "HEALTH_WARN",
    "HealthCheck",
    "HealthCheckResult",
    "HealthReport",
    "MantleAuditTrail",
    "MetricSeries",
    "MgrDaemon",
    "PromSample",
    "default_checks",
    "evaluate_health",
    "merge_trails",
    "parse_prometheus_text",
    "prometheus_export",
    "sample_cluster",
    "worst_status",
]
