"""Mantle decision audit trail: why did the balancer do that?

The paper's Figures 8-10 show *what* the balancer did to throughput;
this module records *why*: every balancing tick appends one record
with the policy identity, the measured load vector the policy saw, the
decision it produced, and the counter deltas the execution caused.
Post-hoc, an operator (or a test) can line up each migration with the
exact inputs that triggered it.

Each MDS's balancer owns one :class:`MantleAuditTrail` (a bounded ring
— audit data is volatile daemon state like any telemetry) and exposes
it through the ``mantle.audit`` admin command; the mgr collects and
merges the per-MDS trails during its scrape so ``audit.dump`` shows
one cluster-wide, time-ordered decision history.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class MantleAuditTrail:
    """Bounded ring of balancer tick records for one MDS."""

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError("audit trail needs capacity >= 1")
        self.capacity = capacity
        self._records: List[Dict[str, Any]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._records)

    def record(self, time: float, rank: int, policy: Optional[str],
               status: str,
               load_table: Optional[List[Dict[str, Any]]] = None,
               decision: Optional[Dict[str, Any]] = None,
               moves: Optional[Dict[int, List[Any]]] = None,
               counter_deltas: Optional[Dict[str, float]] = None,
               error: Optional[str] = None) -> Dict[str, Any]:
        """Append one tick record; returns it (already ring-trimmed).

        ``status`` is the tick outcome: ``decided`` when the policy ran
        (whether or not it migrated), or a skip reason (``no-policy``,
        ``no-table``, ``policy-error``, ``policy-load-error``).
        """
        self._seq += 1
        entry: Dict[str, Any] = {
            "seq": self._seq,
            "time": time,
            "rank": rank,
            "policy": policy,
            "status": status,
        }
        if load_table is not None:
            entry["load"] = load_table
        if decision is not None:
            entry["decision"] = decision
        if moves:
            entry["moves"] = {int(k): list(v) for k, v in moves.items()}
        if counter_deltas:
            entry["counter_deltas"] = dict(counter_deltas)
        if error is not None:
            entry["error"] = error
        self._records.append(entry)
        if len(self._records) > self.capacity:
            del self._records[: len(self._records) - self.capacity]
        return entry

    def records(self, since_seq: int = 0) -> List[Dict[str, Any]]:
        """Records with seq > ``since_seq`` (all by default), oldest
        first.  Values are copies safe to ship over the wire."""
        return [dict(r) for r in self._records if r["seq"] > since_seq]

    def clear(self) -> None:
        self._records.clear()
        # seq keeps counting: consumers dedupe on (rank, seq), and a
        # cleared trail must not reissue already-seen sequence numbers.


def merge_trails(collected: Dict[str, List[Dict[str, Any]]]
                 ) -> List[Dict[str, Any]]:
    """Merge per-MDS record lists into one time-ordered history.

    ``collected`` maps MDS daemon name to that daemon's records; the
    output interleaves them by (time, daemon, seq) and stamps each
    record with its source daemon.
    """
    merged: List[Dict[str, Any]] = []
    for daemon in sorted(collected):
        for rec in collected[daemon]:
            stamped = dict(rec)
            stamped["mds"] = daemon
            merged.append(stamped)
    merged.sort(key=lambda r: (r["time"], r["mds"], r["seq"]))
    return merged
