"""The manager daemon: cluster-wide scrape, health, and audit service.

The Ceph analog is ``ceph-mgr``: a daemon that subscribes to the
cluster maps, periodically pulls every daemon's perf registry, and
turns the stream into operator-facing state — ``status`` / ``health``
summaries, Prometheus metrics, and the Mantle decision audit trail.

Determinism contract
--------------------
Observing the cluster must not change it.  The mgr therefore:

* scrapes on a **fixed period** of the simulated clock with zero
  jitter (no RNG stream is ever drawn);
* installs a **fixed-latency override** for its own endpoint on the
  network, so its messages never draw from the shared ``network`` RNG
  stream — every other daemon sees exactly the latency sequence it
  would see in an unmanaged run;
* writes to the cluster log **only on health-state transitions**, so a
  healthy seeded run with the mgr enabled produces byte-identical
  daemon schedules to one without it (an integration test pins this).

A daemon that crashes mid-scrape surfaces as a failed scrape entry and
a ``DAEMON_UNREACHABLE`` health detail — never as a failed tick.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from repro.errors import MalacologyError
from repro.mgr.audit import merge_trails
from repro.mgr.health import (
    HEALTH_ERR,
    HEALTH_OK,
    HEALTH_WARN,
    ClusterSample,
    HealthCheck,
    HealthReport,
    default_checks,
    evaluate_health,
)
from repro.mgr.prometheus import prometheus_export
from repro.mgr.timeseries import DaemonSeries
from repro.monitor.cluster_log import ERROR, INFO, WARN
from repro.monitor.monitor import MonitorClient
from repro.msg import Daemon
from repro.sim.kernel import Simulator
from repro.sim.network import FixedLatency, Network

#: Cluster-log severity for each degraded health status.
_LOG_SEVERITY = {HEALTH_WARN: WARN, HEALTH_ERR: ERROR}


class MgrDaemon(Daemon, MonitorClient):
    """Scrapes, aggregates, and judges the health of every daemon."""

    SCRAPE_INTERVAL = 2.0
    SCRAPE_TIMEOUT = 1.0
    SERIES_CAPACITY = 256
    AUDIT_CAPACITY = 4096
    #: Fixed one-way delay for all mgr traffic (see module docstring).
    MGR_LATENCY = 100e-6

    def __init__(self, sim: Simulator, network: Network, name: str,
                 mon_names: List[str], targets: Dict[str, str],
                 checks: Optional[List[HealthCheck]] = None,
                 scrape_interval: Optional[float] = None):
        super().__init__(sim, network, name)
        network.set_latency_override(name, FixedLatency(self.MGR_LATENCY))
        self.init_mon_client(mon_names)
        #: daemon name -> role ("mon" / "osd" / "mds").
        self.targets = dict(targets)
        self.checks = list(checks) if checks is not None \
            else default_checks()
        self.scrape_interval = scrape_interval or self.SCRAPE_INTERVAL
        self.booted = False

        # Volatile aggregation state (a mgr is a pure observer: all of
        # this is reconstructible from future scrapes).
        self.series: Dict[str, DaemonSeries] = {}
        self.last_sample: Optional[ClusterSample] = None
        self.last_report: Optional[HealthReport] = None
        self.scrape_count = 0
        self._last_dumps: Dict[str, Dict[str, Any]] = {}
        self._audit: Dict[str, List[Dict[str, Any]]] = {}
        self._audit_seen: Dict[str, int] = {}
        #: check name -> status at the previous evaluation (transition
        #: detection); overall status previous value.
        self._prev_checks: Dict[str, str] = {}
        self._prev_status: Optional[str] = None

        self.perf.gauge_fn("mgr.scrapes", lambda: self.scrape_count)
        self.perf.gauge_fn("mgr.targets", lambda: len(self.targets))
        self.register_admin_command("status", lambda args: self.status())
        self.register_admin_command("health", lambda args: self.health())
        self.register_admin_command(
            "metrics.export", lambda args: self.metrics_export())
        self.register_admin_command(
            "audit.dump", lambda args: self.audit_dump(args))
        self.register_admin_command(
            "changelog.status", lambda args: self.changelog_status())
        self.spawn(self._boot(), name=f"{self.name}:boot")

    # ------------------------------------------------------------------
    # Boot / scrape loop
    # ------------------------------------------------------------------
    def _boot(self) -> Generator:
        yield from self.mon_subscribe(["mon", "osd", "mds"])
        yield from self.mon_get_map("osd")
        yield from self.mon_get_map("mds")
        self.every(self.scrape_interval, self._scrape_tick,
                   name=f"{self.name}:scrape")
        self.booted = True

    def _scrape_tick(self) -> Generator:
        return self._scrape()

    def _scrape(self) -> Generator:
        """One full scrape pass: dumps, audit, health, transitions."""
        sample = ClusterSample(time=self.sim.now,
                               roles=dict(self.targets),
                               series=self.series)
        for target in sorted(self.targets):
            try:
                dump = yield self.call(target, "telemetry.dump", None,
                                       timeout=self.SCRAPE_TIMEOUT)
            except MalacologyError as exc:
                # Mid-scrape crash/timeout: flag it, keep scraping.
                sample.failed[target] = f"{exc.code}: {exc}"
                self.perf.incr("mgr.scrape.failed")
                continue
            sample.dumps[target] = dump
            sample.series_of(target).observe_dump(self.sim.now, dump)
            if self.targets[target] == "mds":
                yield from self._collect_audit(target)
        sample.osdmap = self.cached_maps.get("osd")
        sample.mdsmap = self.cached_maps.get("mds")
        # Out-of-band reads (no messages): a fault-free managed run
        # stays schedule-identical whether or not these are captured.
        engine = getattr(self.sim, "chaos", None)
        if engine is not None:
            sample.chaos = engine.status()
        sample.netstats = self.network.stats()
        self._last_dumps = dict(sample.dumps)
        report = evaluate_health(self.checks, sample)
        yield from self._log_transitions(report)
        self.last_sample = sample
        self.last_report = report
        self.scrape_count += 1
        self.perf.incr("mgr.scrape")

    def _collect_audit(self, mds: str) -> Generator:
        """Pull fresh Mantle audit records from one MDS (if any).

        MDSs without an attached balancer have no ``mantle.audit``
        command; the resulting error is expected and swallowed.
        """
        seen = self._audit_seen.get(mds, 0)
        try:
            records = yield self.call(mds, "mantle.audit",
                                      {"since_seq": seen},
                                      timeout=self.SCRAPE_TIMEOUT)
        except MalacologyError:
            return
        if not records:
            return
        trail = self._audit.setdefault(mds, [])
        trail.extend(records)
        self._audit_seen[mds] = max(seen,
                                    max(r["seq"] for r in records))
        if len(trail) > self.AUDIT_CAPACITY:
            del trail[: len(trail) - self.AUDIT_CAPACITY]
        self.perf.incr("mgr.audit.records", len(records))

    # ------------------------------------------------------------------
    # Health transitions -> cluster log
    # ------------------------------------------------------------------
    def _log_transitions(self, report: HealthReport) -> Generator:
        """Log check raises/clears and overall status flips.

        Only *transitions* are logged — steady state (healthy or not)
        is silent, which both keeps the log readable and keeps a
        healthy managed run schedule-identical to an unmanaged one.
        """
        current = {r.name: r for r in report.results}
        entries = []
        for name, result in sorted(current.items()):
            if self._prev_checks.get(name) != result.status:
                entries.append((_LOG_SEVERITY[result.status],
                                f"health check {name} "
                                f"{result.status}: {result.summary}"))
        for name in sorted(self._prev_checks):
            if name not in current:
                entries.append((INFO, f"health check {name} cleared"))
        if self._prev_status is not None \
                and report.status != self._prev_status:
            severity = _LOG_SEVERITY.get(report.status, INFO)
            entries.append((severity,
                            f"cluster health is now {report.status} "
                            f"(was {self._prev_status})"))
        self._prev_checks = {n: r.status for n, r in current.items()}
        self._prev_status = report.status
        for severity, message in entries:
            self.perf.incr("mgr.health.transition")
            try:
                yield from self.mon_log(severity, message)
            except MalacologyError:
                # Monitors unreachable: the health report still stands;
                # the transition will not re-log, but the state itself
                # is queryable via the mgr admin commands.
                self.perf.incr("mgr.log.failed")

    # ------------------------------------------------------------------
    # Admin command surface
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """The latest health report (``ceph health detail``)."""
        if self.last_report is None:
            return {"time": self.sim.now, "status": HEALTH_OK,
                    "checks": {}, "note": "no scrape completed yet"}
        return self.last_report.to_dict()

    def status(self) -> Dict[str, Any]:
        """One-screen cluster summary (``ceph -s``)."""
        health = self.health()
        osdmap = self.cached_maps.get("osd")
        mdsmap = self.cached_maps.get("mds")
        out: Dict[str, Any] = {
            "time": self.sim.now,
            "health": {"status": health["status"],
                       "checks": {name: c["summary"] for name, c in
                                  health.get("checks", {}).items()}},
            "scrapes": self.scrape_count,
            "targets": len(self.targets),
            "unreachable": sorted(self.last_sample.failed)
            if self.last_sample else [],
            "audit_records": sum(len(v) for v in self._audit.values()),
        }
        if osdmap is not None:
            up = osdmap.up_osds()
            out["osdmap"] = {"epoch": osdmap.epoch,
                             "osds": len(osdmap.osds),
                             "up": len(up)}
        if mdsmap is not None:
            out["mdsmap"] = {"epoch": mdsmap.epoch,
                             "ranks": len(mdsmap.ranks)}
        return out

    def metrics_export(self) -> str:
        """Prometheus text format over the last scrape's dumps.

        When the simulator has a profiler installed, a synthetic
        ``kernel`` target is spliced in carrying the kernel-plane
        counters and gauges (event totals and rate, queue-depth and
        ready-batch high-water marks) — read out-of-band from the
        profiler, so the export itself costs no cluster traffic.

        A synthetic ``network`` target always carries the message
        plane: sent/delivered totals, duplication and corruption
        counts, and the cause-labeled drop counters.  When a chaos
        engine is armed on the kernel, a ``chaos`` target adds its
        fault totals so dashboards can correlate injected faults with
        the damage they cause.
        """
        dumps = dict(self._last_dumps)
        profiler = getattr(self.sim, "profiler", None)
        if profiler is not None:
            dumps["kernel"] = profiler.prometheus_dump()
        dumps["network"] = {
            "counters": {f"net.{key}": float(value)
                         for key, value in self.network.stats().items()},
        }
        engine = getattr(self.sim, "chaos", None)
        if engine is not None:
            status = engine.status()
            dumps["chaos"] = {
                "counters": {
                    "chaos.injector_faults":
                        float(status["injector_faults"]),
                    "chaos.store_faults": float(status["store_faults"]),
                    "chaos.engine_events":
                        float(status["engine_events"]),
                },
                "gauges": {
                    "chaos.armed": 1.0 if status["armed"] else 0.0,
                    "chaos.schedule_ops": float(status["ops"]),
                },
            }
        return prometheus_export(dumps)

    def changelog_status(self) -> Dict[str, Any]:
        """Changelog stream health, derived from the last scrape.

        Pure aggregation over the already-collected dumps (no cluster
        traffic): append/trim totals, retained backlog, per-cursor lag
        gauges, and audit pipeline record counts.
        """
        daemons = sorted(n for n, role in self.targets.items()
                         if role == "changelog")
        out: Dict[str, Any] = {
            "time": self.sim.now,
            "daemons": daemons,
            "appended": 0.0,
            "trimmed": 0.0,
            "consumed": 0.0,
            "buffered": 0.0,
            "retained": 0.0,
            "audit_records": 0.0,
            "lag": {},
        }
        for name in daemons:
            dump = self._last_dumps.get(name)
            if dump is None:
                continue
            counters = dump.get("counters", {})
            gauges = dump.get("gauges", {})
            out["appended"] += counters.get("changelog.appended", 0.0)
            out["trimmed"] += counters.get("changelog.trimmed", 0.0)
            out["consumed"] += counters.get("changelog.consumed", 0.0)
            out["buffered"] += gauges.get("changelog.buffered", 0.0)
            out["retained"] += gauges.get("changelog.retained", 0.0)
            out["audit_records"] += gauges.get("audit.records", 0.0)
            for gname, value in gauges.items():
                if gname.startswith("changelog.lag."):
                    cursor = gname[len("changelog.lag."):]
                    out["lag"][cursor] = value
        report = self.health()
        out["health"] = {
            name: check["summary"]
            for name, check in report.get("checks", {}).items()
            if name.startswith("CHANGELOG_")}
        return out

    def audit_dump(self, args: Optional[Dict[str, Any]] = None
                   ) -> List[Dict[str, Any]]:
        """The merged, time-ordered Mantle decision history.

        ``{"since": t}`` restricts to records at simulated time >= t;
        ``{"migrations_only": true}`` keeps only ticks that moved
        subtrees.
        """
        args = args or {}
        records = merge_trails(self._audit)
        since = args.get("since")
        if since is not None:
            records = [r for r in records if r["time"] >= float(since)]
        if args.get("migrations_only"):
            records = [r for r in records if r.get("moves")]
        return records

    # ------------------------------------------------------------------
    # Crash / restart
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        super().on_crash()
        # Everything the mgr holds is derived observation state.
        self.booted = False
        self.series = {}
        self.last_sample = None
        self.last_report = None
        self.scrape_count = 0
        self._last_dumps = {}
        self._audit = {}
        # _audit_seen survives conceptually (dedup hint), but the MDS
        # trails are volatile too; starting from zero only re-fetches
        # what the MDSs still retain.
        self._audit_seen = {}
        self._prev_checks = {}
        self._prev_status = None

    def on_restart(self) -> None:
        self.spawn(self._boot(), name=f"{self.name}:reboot")
