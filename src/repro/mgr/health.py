"""Pluggable cluster health checks (Ceph mgr's ``health`` module).

A :class:`HealthCheck` looks at one :class:`ClusterSample` — the most
recent scrape of every daemon's ``telemetry.dump`` plus the cluster
maps and the per-daemon time series — and either stays silent (healthy)
or returns a :class:`HealthCheckResult` with a severity and structured
detail.  The overall cluster status is the worst individual result:
``HEALTH_OK`` < ``HEALTH_WARN`` < ``HEALTH_ERR``, exactly the ladder
``ceph -s`` reports.

Checks are pure functions of the sample: no simulated time, no RNG, no
messages.  That is what lets the same checks run both inside the mgr
daemon (fed by in-band scrapes) and out-of-band at the end of a
benchmark via :func:`sample_cluster`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.mgr.timeseries import DaemonSeries

HEALTH_OK = "HEALTH_OK"
HEALTH_WARN = "HEALTH_WARN"
HEALTH_ERR = "HEALTH_ERR"

_RANK = {HEALTH_OK: 0, HEALTH_WARN: 1, HEALTH_ERR: 2}


def worst_status(statuses: List[str]) -> str:
    """The most severe of the given statuses (OK when empty)."""
    worst = HEALTH_OK
    for status in statuses:
        if _RANK[status] > _RANK[worst]:
            worst = status
    return worst


@dataclass
class ClusterSample:
    """Everything a health check may look at for one evaluation."""

    time: float
    #: daemon name -> its ``telemetry.dump`` payload.
    dumps: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: daemon name -> error string for daemons the scrape could not
    #: reach (crashed or unknown mid-scrape).
    failed: Dict[str, str] = field(default_factory=dict)
    #: daemon name -> role ("mon" / "osd" / "mds" / "client" / "mgr").
    roles: Dict[str, str] = field(default_factory=dict)
    #: Latest cluster maps (may be None before the first map arrives).
    osdmap: Optional[Any] = None
    mdsmap: Optional[Any] = None
    #: daemon name -> retained time series across scrapes.
    series: Dict[str, DaemonSeries] = field(default_factory=dict)
    #: Nemesis engine status (``sim.chaos.status()``) when a chaos
    #: engine is attached to the kernel; None otherwise.
    chaos: Optional[Dict[str, Any]] = None
    #: Network-plane counters (``Network.stats()``), including the
    #: cause-labeled drop counters.
    netstats: Optional[Dict[str, Any]] = None

    def named(self, role: str) -> List[str]:
        return sorted(n for n, r in self.roles.items() if r == role)

    def series_of(self, daemon: str) -> DaemonSeries:
        s = self.series.get(daemon)
        if s is None:
            s = self.series[daemon] = DaemonSeries()
        return s


@dataclass(frozen=True)
class HealthCheckResult:
    """One firing check: severity plus machine-readable detail."""

    name: str
    status: str
    summary: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "status": self.status,
                "summary": self.summary, "detail": dict(self.detail)}


class HealthReport:
    """The aggregate of one evaluation pass over all checks."""

    def __init__(self, time: float,
                 results: List[HealthCheckResult]):
        self.time = time
        self.results = list(results)
        self.status = worst_status([r.status for r in results])

    def check(self, name: str) -> Optional[HealthCheckResult]:
        for r in self.results:
            if r.name == name:
                return r
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "time": self.time,
            "status": self.status,
            "checks": {r.name: r.to_dict() for r in self.results},
        }


class HealthCheck:
    """Base class: subclasses override :meth:`evaluate`.

    ``name`` is the stable check identifier (``OSD_DOWN`` style, like
    Ceph's health-check codes); it keys transition tracking and the
    cluster-log messages.
    """

    name = "CHECK"

    def evaluate(self, sample: ClusterSample
                 ) -> Optional[HealthCheckResult]:
        raise NotImplementedError

    def result(self, status: str, summary: str,
               **detail: Any) -> HealthCheckResult:
        return HealthCheckResult(name=self.name, status=status,
                                 summary=summary, detail=detail)


class OsdDownCheck(HealthCheck):
    """OSDs marked down in the OSD map (peer pings reported them)."""

    name = "OSD_DOWN"

    def evaluate(self, sample: ClusterSample
                 ) -> Optional[HealthCheckResult]:
        m = sample.osdmap
        if m is None:
            return None
        down = sorted(name for name, state in m.osds.items()
                      if state != "up")
        if not down:
            return None
        return self.result(
            HEALTH_WARN, f"{len(down)} osd(s) down: {', '.join(down)}",
            osds=down, epoch=m.epoch)


class DaemonUnreachableCheck(HealthCheck):
    """Daemons the last scrape could not reach (crashed mid-scrape)."""

    name = "DAEMON_UNREACHABLE"

    def evaluate(self, sample: ClusterSample
                 ) -> Optional[HealthCheckResult]:
        if not sample.failed:
            return None
        names = sorted(sample.failed)
        return self.result(
            HEALTH_WARN,
            f"scrape failed for {len(names)} daemon(s): "
            f"{', '.join(names)}",
            daemons={n: sample.failed[n] for n in names})


class PaxosStallCheck(HealthCheck):
    """A monitor sits on pending transactions but commits nothing.

    Fires when some monitor has held pending client transactions for a
    full observation window while its ``paxos.commit`` counter did not
    advance — consensus is wedged, which is an error, not a warning.
    """

    name = "PAXOS_STALL"

    def __init__(self, window: float = 10.0, min_scrapes: int = 3):
        self.window = window
        self.min_scrapes = min_scrapes

    def evaluate(self, sample: ClusterSample
                 ) -> Optional[HealthCheckResult]:
        stalled = {}
        for mon in sample.named("mon"):
            series = sample.series.get(mon)
            if series is None:
                continue
            pending = series.maybe("gauge:paxos.pending_txns")
            if pending is None or len(pending) < self.min_scrapes:
                continue
            if pending.min_over(self.window) <= 0:
                continue  # drained at some point in the window
            commits = series.maybe("counter:paxos.commit")
            committed = commits.delta(self.window) if commits else 0.0
            if committed <= 0:
                latest = pending.latest()
                stalled[mon] = latest[1] if latest else 0.0
        if not stalled:
            return None
        return self.result(
            HEALTH_ERR,
            f"paxos stalled on {', '.join(sorted(stalled))}: pending "
            f"transactions but no commits for {self.window:.0f}s",
            monitors=stalled, window=self.window)


class MdsLatencyRegressionCheck(HealthCheck):
    """Recent MDS request latency regressed against its own history."""

    name = "MDS_LATENCY_REGRESSION"

    def __init__(self, factor: float = 3.0, recent: float = 10.0,
                 min_ops: float = 20.0):
        self.factor = factor
        self.recent = recent
        self.min_ops = min_ops

    def evaluate(self, sample: ClusterSample
                 ) -> Optional[HealthCheckResult]:
        regressed = {}
        for mds in sample.named("mds"):
            series = sample.series.get(mds)
            if series is None:
                continue
            mean = series.maybe("latency:rpc.mds_req:mean")
            count = series.maybe("latency:rpc.mds_req:count")
            if mean is None or count is None or len(mean) < 4:
                continue
            if count.delta(self.recent) < self.min_ops:
                continue  # too little recent traffic to judge
            baseline = mean.mean()
            current = mean.mean(self.recent)
            if baseline > 0 and current > self.factor * baseline:
                regressed[mds] = {"baseline": baseline,
                                  "recent": current}
        if not regressed:
            return None
        return self.result(
            HEALTH_WARN,
            f"mds op latency regressed >{self.factor:.0f}x on "
            f"{', '.join(sorted(regressed))}",
            mds=regressed, factor=self.factor)


class CapRevokeStuckCheck(HealthCheck):
    """Capability revocations outstanding for longer than the window.

    A cooperative revoke that never completes means a client is dead or
    misbehaving and the Shared Resource interface is blocked on it.
    """

    name = "CAP_REVOKE_STUCK"

    def __init__(self, stuck_for: float = 6.0, min_scrapes: int = 3):
        self.stuck_for = stuck_for
        self.min_scrapes = min_scrapes

    def evaluate(self, sample: ClusterSample
                 ) -> Optional[HealthCheckResult]:
        stuck = {}
        for mds in sample.named("mds"):
            series = sample.series.get(mds)
            if series is None:
                continue
            revoking = series.maybe("gauge:caps.revoking")
            if revoking is None or len(revoking) < self.min_scrapes:
                continue
            floor = revoking.min_over(self.stuck_for)
            if floor > 0:
                stuck[mds] = floor
        if not stuck:
            return None
        return self.result(
            HEALTH_WARN,
            f"cap revokes stuck >{self.stuck_for:.0f}s on "
            f"{', '.join(sorted(stuck))}",
            mds=stuck, stuck_for=self.stuck_for)


class SequencerChurnCheck(HealthCheck):
    """ZLog epoch churn: sustained seal traffic on the OSDs.

    Seals are rare in steady state (log creation, sequencer failover).
    A sustained seal rate means sequencer ownership is flapping and
    every client append is paying the recovery path.
    """

    name = "ZLOG_EPOCH_CHURN"

    def __init__(self, max_rate: float = 1.0, window: float = 10.0):
        self.max_rate = max_rate
        self.window = window

    def evaluate(self, sample: ClusterSample
                 ) -> Optional[HealthCheckResult]:
        total = 0.0
        per_osd = {}
        for osd in sample.named("osd"):
            series = sample.series.get(osd)
            if series is None:
                continue
            seals = series.maybe("counter:objclass.zlog.seal")
            if seals is None:
                continue
            rate = seals.rate(self.window)
            if rate > 0:
                per_osd[osd] = rate
            total += rate
        if total <= self.max_rate:
            return None
        return self.result(
            HEALTH_WARN,
            f"zlog epoch churn: {total:.1f} seals/s cluster-wide "
            f"(threshold {self.max_rate:.1f})",
            seal_rate=total, per_osd=per_osd)


class SubtreeImbalanceCheck(HealthCheck):
    """Metadata load spread across ranks beyond the tolerated ratio.

    The condition Mantle exists to fix; if it persists, either no
    balancer is installed or the policy is not moving load.
    """

    name = "MDS_IMBALANCE"

    def __init__(self, ratio: float = 4.0, min_load: float = 50.0):
        self.ratio = ratio
        self.min_load = min_load

    def evaluate(self, sample: ClusterSample
                 ) -> Optional[HealthCheckResult]:
        loads = {}
        for mds in sample.named("mds"):
            dump = sample.dumps.get(mds)
            if dump is None:
                continue
            load = dump.get("gauges", {}).get("mds.load")
            if isinstance(load, (int, float)):
                loads[mds] = float(load)
        if len(loads) < 2:
            return None
        top = max(loads.values())
        bottom = min(loads.values())
        if top < self.min_load or top <= self.ratio * max(bottom, 1e-9):
            return None
        return self.result(
            HEALTH_WARN,
            f"mds load imbalance {top:.0f} vs {bottom:.0f} exceeds "
            f"{self.ratio:.0f}x",
            loads=loads, ratio=self.ratio)


class ChangelogConsumerLagCheck(HealthCheck):
    """A changelog consumer has fallen too far behind the stream.

    The writer publishes one ``changelog.lag.<cursor>`` gauge per
    registered cursor (records behind, summed over shards).  A large
    lag means a consumer is slow, paused, or dead — and because trim
    cannot pass the slowest cursor, the backlog it pins only grows.
    """

    name = "CHANGELOG_CONSUMER_LAG"

    def __init__(self, max_lag: float = 200.0):
        self.max_lag = max_lag

    def evaluate(self, sample: ClusterSample
                 ) -> Optional[HealthCheckResult]:
        lagging: Dict[str, float] = {}
        for daemon in sample.named("changelog"):
            gauges = sample.dumps.get(daemon, {}).get("gauges", {})
            for name, value in gauges.items():
                if not name.startswith("changelog.lag."):
                    continue
                if isinstance(value, (int, float)) \
                        and value > self.max_lag:
                    cursor = name[len("changelog.lag."):]
                    lagging[cursor] = float(value)
        if not lagging:
            return None
        return self.result(
            HEALTH_WARN,
            f"changelog consumer(s) lagging >{self.max_lag:.0f} "
            f"records: {', '.join(sorted(lagging))}",
            cursors=lagging, max_lag=self.max_lag)


class ChangelogTrimStalledCheck(HealthCheck):
    """Records accumulate but trim reclaims nothing.

    Fires when the writer's retained-record gauge stays above the
    threshold for a whole window during which appends happened but the
    trim counter did not move — the stream is growing without bound
    (e.g. a registered cursor stopped acking).
    """

    name = "CHANGELOG_TRIM_STALLED"

    def __init__(self, min_retained: float = 500.0,
                 window: float = 10.0, min_scrapes: int = 3):
        self.min_retained = min_retained
        self.window = window
        self.min_scrapes = min_scrapes

    def evaluate(self, sample: ClusterSample
                 ) -> Optional[HealthCheckResult]:
        stalled: Dict[str, float] = {}
        for daemon in sample.named("changelog"):
            series = sample.series.get(daemon)
            if series is None:
                continue
            retained = series.maybe("gauge:changelog.retained")
            if retained is None or len(retained) < self.min_scrapes:
                continue
            floor = retained.min_over(self.window)
            if floor < self.min_retained:
                continue
            appended = series.maybe("counter:changelog.appended")
            trimmed = series.maybe("counter:changelog.trimmed")
            grew = appended.delta(self.window) if appended else 0.0
            reclaimed = trimmed.delta(self.window) if trimmed else 0.0
            if grew > 0 and reclaimed <= 0:
                stalled[daemon] = floor
        if not stalled:
            return None
        return self.result(
            HEALTH_WARN,
            f"changelog trim stalled: >{self.min_retained:.0f} records "
            f"retained with no reclaim for {self.window:.0f}s on "
            f"{', '.join(sorted(stalled))}",
            writers=stalled, window=self.window)


class CacheTierFullCheck(HealthCheck):
    """A pool's cache tier is pinned over its capacity by dirty data.

    The write-back tier may exceed ``capacity`` between flusher ticks
    (dirty entries are never evicted), but a reading above the full
    ratio at scrape time means write-back is not keeping up with the
    ingest rate and every miss is landing in an already-full cache.
    """

    name = "CACHE_TIER_FULL"

    def __init__(self, full_ratio: float = 1.0):
        self.full_ratio = full_ratio

    def evaluate(self, sample: ClusterSample
                 ) -> Optional[HealthCheckResult]:
        full: Dict[str, Dict[str, float]] = {}
        for osd in sample.named("osd"):
            gauges = sample.dumps.get(osd, {}).get("gauges", {})
            util = gauges.get("store.cache.utilization")
            if not isinstance(util, (int, float)):
                continue  # hosts no cache tier (gauge is None)
            if util > self.full_ratio:
                dirty = gauges.get("store.cache.dirty")
                full[osd] = {
                    "utilization": float(util),
                    "dirty": float(dirty)
                    if isinstance(dirty, (int, float)) else 0.0,
                }
        if not full:
            return None
        return self.result(
            HEALTH_WARN,
            f"cache tier over capacity on {', '.join(sorted(full))}: "
            f"dirty write-back is behind",
            osds=full, full_ratio=self.full_ratio)


class CompactionStalledCheck(HealthCheck):
    """A log-structured store carries garbage but never compacts.

    Fires when an OSD's worst eligible garbage ratio stays at or above
    the compaction threshold for a whole window during which its
    compaction counter did not move — the maintenance ticker is dead
    or wedged and read amplification only grows.
    """

    name = "COMPACTION_STALLED"

    def __init__(self, min_ratio: float = 0.5, window: float = 6.0,
                 min_scrapes: int = 3):
        self.min_ratio = min_ratio
        self.window = window
        self.min_scrapes = min_scrapes

    def evaluate(self, sample: ClusterSample
                 ) -> Optional[HealthCheckResult]:
        stalled: Dict[str, float] = {}
        for osd in sample.named("osd"):
            series = sample.series.get(osd)
            if series is None:
                continue
            garbage = series.maybe("gauge:store.log.garbage_ratio")
            if garbage is None or len(garbage) < self.min_scrapes:
                continue
            floor = garbage.min_over(self.window)
            if floor < self.min_ratio:
                continue
            compactions = series.maybe(
                "counter:store.logstructured.compaction")
            reclaimed = compactions.delta(self.window) \
                if compactions else 0.0
            if reclaimed <= 0:
                stalled[osd] = floor
        if not stalled:
            return None
        return self.result(
            HEALTH_WARN,
            f"log compaction stalled on {', '.join(sorted(stalled))}: "
            f"garbage ratio >={self.min_ratio:.2f} for "
            f"{self.window:.0f}s with no compactions",
            osds=stalled, window=self.window)


class ChaosNemesisCheck(HealthCheck):
    """A nemesis schedule is armed against this cluster.

    Chaos runs are deliberate, but an operator looking at a sick
    cluster should see at a glance that faults are being *injected*
    rather than organic — the same reason Ceph surfaces ``noout`` and
    friends as health warnings.  Reads the engine status the sampler
    captured out-of-band; clusters without an engine never fire it.
    """

    name = "CHAOS_NEMESIS_ACTIVE"

    def evaluate(self, sample: ClusterSample
                 ) -> Optional[HealthCheckResult]:
        chaos = sample.chaos
        if not chaos or not chaos.get("armed"):
            return None
        return self.result(
            HEALTH_WARN,
            f"nemesis schedule {chaos.get('schedule')!r} is armed: "
            f"{chaos.get('ops', 0)} ops, "
            f"{chaos.get('injector_faults', 0)} injector faults, "
            f"{chaos.get('store_faults', 0)} store faults so far",
            **chaos)


def default_checks() -> List[HealthCheck]:
    """The standard check set the mgr evaluates every scrape."""
    return [
        OsdDownCheck(),
        DaemonUnreachableCheck(),
        PaxosStallCheck(),
        MdsLatencyRegressionCheck(),
        CapRevokeStuckCheck(),
        SequencerChurnCheck(),
        SubtreeImbalanceCheck(),
        ChangelogConsumerLagCheck(),
        ChangelogTrimStalledCheck(),
        CacheTierFullCheck(),
        CompactionStalledCheck(),
        ChaosNemesisCheck(),
    ]


def evaluate_health(checks: List[HealthCheck],
                    sample: ClusterSample) -> HealthReport:
    """Run every check against the sample; silent checks mean healthy."""
    results = []
    for check in checks:
        outcome = check.evaluate(sample)
        if outcome is not None:
            results.append(outcome)
    return HealthReport(time=sample.time, results=results)


def sample_cluster(cluster: Any,
                   series: Optional[Dict[str, DaemonSeries]] = None
                   ) -> ClusterSample:
    """Assemble a sample out-of-band from a booted cluster object.

    Uses the admin-socket path (no messages, no simulated time), so
    benchmarks can grab an end-of-run health snapshot without changing
    the run they just measured.  ``series`` carries history across
    repeated calls if the caller wants trend checks to participate.
    """
    sample = ClusterSample(time=cluster.sim.now,
                           series=series if series is not None else {})
    changelog = getattr(cluster, "changelog_daemons", None)
    extra = changelog() if callable(changelog) else []
    for role, daemons in (("mon", cluster.mons), ("osd", cluster.osds),
                          ("mds", cluster.mdss),
                          ("changelog", extra)):
        for d in daemons:
            sample.roles[d.name] = role
            dump = d.admin_command("telemetry.dump")
            sample.dumps[d.name] = dump
            sample.series_of(d.name).observe_dump(sample.time, dump)
    best_osd, best_mds = None, None
    for mon in cluster.mons:
        osdmap = mon.store.osdmap
        mdsmap = mon.store.mdsmap
        if best_osd is None or osdmap.epoch > best_osd.epoch:
            best_osd = osdmap
        if best_mds is None or mdsmap.epoch > best_mds.epoch:
            best_mds = mdsmap
    sample.osdmap = best_osd
    sample.mdsmap = best_mds
    engine = getattr(cluster.sim, "chaos", None)
    if engine is not None:
        sample.chaos = engine.status()
    sample.netstats = cluster.net.stats()
    return sample
