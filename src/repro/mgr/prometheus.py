"""Prometheus text exposition of scraped telemetry.

``metrics.export`` on the mgr renders the latest scrape of every
daemon in the Prometheus text format (version 0.0.4): one metric
family per kind, with ``daemon`` and ``name`` labels carrying the
registry structure::

    # TYPE repro_counter_total counter
    repro_counter_total{daemon="mon0",name="paxos.commit"} 42

Latency trackers expand into the conventional summary triplet
(``_count`` / ``_sum``) plus min/mean/max gauges.  The module also
ships :func:`parse_prometheus_text` — a strict parser used by the
tests to prove the export round-trips, and handy for consumers that
want the samples back as Python values.
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple, Tuple

#: (family name, prometheus type) for each registry section.
_FAMILIES = {
    "counter": ("repro_counter_total", "counter"),
    "gauge": ("repro_gauge", "gauge"),
    "rate": ("repro_rate", "gauge"),
}

_LATENCY_FIELDS = (
    ("count", "repro_latency_count", "counter"),
    ("sum", "repro_latency_sum", "counter"),
    ("mean", "repro_latency_mean", "gauge"),
    ("min", "repro_latency_min", "gauge"),
    ("max", "repro_latency_max", "gauge"),
)


class PromSample(NamedTuple):
    """One parsed exposition line."""

    metric: str
    labels: Dict[str, str]
    value: float


def _escape(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _fmt(value: float) -> str:
    # repr() keeps full precision; integers render without the ".0"
    # noise so counters look like counters.
    if float(value).is_integer() and abs(value) < 2 ** 53:
        return str(int(value))
    return repr(float(value))


def prometheus_export(dumps: Dict[str, Dict[str, Any]]) -> str:
    """Render every daemon's dump as Prometheus exposition text.

    ``dumps`` maps daemon name to its ``telemetry.dump`` payload.
    Non-numeric gauges are skipped; every numeric metric in every
    registry section is exported, which is what the round-trip test
    asserts.
    """
    lines: List[str] = []
    by_family: Dict[Tuple[str, str], List[str]] = {}

    def add(family: str, ptype: str, labels: Dict[str, str],
            value: float) -> None:
        label_text = ",".join(
            f'{k}="{_escape(v)}"' for k, v in sorted(labels.items()))
        by_family.setdefault((family, ptype), []).append(
            f"{family}{{{label_text}}} {_fmt(value)}")

    for daemon in sorted(dumps):
        dump = dumps[daemon]
        if dump is None:
            continue
        sections = (("counter", dump.get("counters", {})),
                    ("gauge", dump.get("gauges", {})),
                    ("rate", dump.get("rates", {})))
        for kind, section in sections:
            family, ptype = _FAMILIES[kind]
            for name in sorted(section):
                value = section[name]
                if isinstance(value, bool) or not isinstance(
                        value, (int, float)):
                    continue
                add(family, ptype, {"daemon": daemon, "name": name},
                    float(value))
        latency = dump.get("latency", {})
        for name in sorted(latency):
            tracker = latency[name]
            for field, family, ptype in _LATENCY_FIELDS:
                if field in tracker:
                    add(family, ptype,
                        {"daemon": daemon, "name": name},
                        float(tracker[field]))

    for (family, ptype), samples in sorted(by_family.items()):
        lines.append(f"# TYPE {family} {ptype}")
        lines.extend(samples)
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus_text(text: str) -> List[PromSample]:
    """Parse exposition text back into samples (strict).

    Raises ``ValueError`` on any malformed line, undeclared metric
    family, or unparsable value — the tests lean on that strictness to
    certify the exporter's output.
    """
    samples: List[PromSample] = []
    declared: Dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                if parts[3] not in ("counter", "gauge", "summary",
                                    "histogram", "untyped"):
                    raise ValueError(
                        f"line {lineno}: bad TYPE {parts[3]!r}")
                declared[parts[2]] = parts[3]
            continue
        metric, labels, value = _parse_sample(line, lineno)
        if metric not in declared:
            raise ValueError(
                f"line {lineno}: metric {metric!r} has no TYPE "
                f"declaration")
        samples.append(PromSample(metric, labels, value))
    return samples


def _parse_sample(line: str, lineno: int
                  ) -> Tuple[str, Dict[str, str], float]:
    brace = line.find("{")
    if brace == -1:
        parts = line.rsplit(None, 1)
        if len(parts) != 2:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        return parts[0], {}, _parse_value(parts[1], lineno)
    close = line.rfind("}")
    if close == -1 or close < brace:
        raise ValueError(f"line {lineno}: unbalanced braces in {line!r}")
    metric = line[:brace]
    if not metric or not all(c.isalnum() or c in "_:" for c in metric):
        raise ValueError(f"line {lineno}: bad metric name {metric!r}")
    labels = _parse_labels(line[brace + 1:close], lineno)
    return metric, labels, _parse_value(line[close + 1:].strip(), lineno)


def _parse_labels(body: str, lineno: int) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    i = 0
    while i < len(body):
        eq = body.find("=", i)
        if eq == -1:
            raise ValueError(f"line {lineno}: bad label segment "
                             f"{body[i:]!r}")
        key = body[i:eq].strip()
        if body[eq + 1] != '"':
            raise ValueError(f"line {lineno}: label {key!r} value is "
                             f"not quoted")
        j = eq + 2
        out = []
        while j < len(body):
            c = body[j]
            if c == "\\":
                nxt = body[j + 1]
                out.append({"n": "\n", '"': '"', "\\": "\\"}.get(
                    nxt, "\\" + nxt))
                j += 2
                continue
            if c == '"':
                break
            out.append(c)
            j += 1
        else:
            raise ValueError(f"line {lineno}: unterminated label value")
        labels[key] = "".join(out)
        i = j + 1
        if i < len(body) and body[i] == ",":
            i += 1
    return labels


def _parse_value(token: str, lineno: int) -> float:
    try:
        return float(token)
    except ValueError:
        raise ValueError(
            f"line {lineno}: bad sample value {token!r}") from None
