"""Fixed-capacity time series the manager keeps per scraped daemon.

The mgr's job is trend detection — "is the commit rate still moving?",
"did op latency regress against its own history?" — which needs a
bounded window of (simulated time, value) samples per metric, not an
unbounded log.  A :class:`MetricSeries` is a ring buffer over such
samples with rate/derivative queries; a :class:`DaemonSeries` holds one
ring per metric path, fed from successive ``telemetry.dump`` scrapes.

Metric paths are flat strings namespaced by kind, mirroring the dump
layout::

    counter:paxos.commit          gauge:pg.count
    rate:rpc.rx                   latency:rpc.mds_req:mean

Everything here is plain arithmetic on scraped values: no RNG, no
simulated time consumed — observing the cluster must never perturb it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

Sample = Tuple[float, float]


class MetricSeries:
    """Ring buffer of (time, value) samples for one metric.

    Capacity-bounded: recording the ``capacity+1``-th sample drops the
    oldest.  Times must be non-decreasing (the mgr scrapes on a fixed
    period of the simulated clock, so they always are).
    """

    __slots__ = ("capacity", "_samples", "_start")

    def __init__(self, capacity: int = 256):
        if capacity < 2:
            raise ValueError("a series needs capacity >= 2")
        self.capacity = capacity
        self._samples: List[Sample] = []
        self._start = 0  # ring head index into _samples

    def __len__(self) -> int:
        return len(self._samples)

    def record(self, t: float, value: float) -> None:
        last = self.latest()
        if last is not None and t < last[0]:
            raise ValueError(
                f"series time went backwards: {t} < {last[0]}")
        if len(self._samples) < self.capacity:
            self._samples.append((t, value))
        else:
            self._samples[self._start] = (t, value)
            self._start = (self._start + 1) % self.capacity

    def samples(self) -> List[Sample]:
        """All retained samples, oldest first."""
        return self._samples[self._start:] + self._samples[:self._start]

    def latest(self) -> Optional[Sample]:
        if not self._samples:
            return None
        return self._samples[self._start - 1]

    def oldest(self) -> Optional[Sample]:
        if not self._samples:
            return None
        return self._samples[self._start % len(self._samples)]

    def window(self, since: float) -> List[Sample]:
        """Samples with time >= ``since``, oldest first."""
        return [s for s in self.samples() if s[0] >= since]

    # ------------------------------------------------------------------
    # Derivative queries
    # ------------------------------------------------------------------
    def delta(self, window: Optional[float] = None) -> float:
        """Change in value across the window (newest - oldest).

        For monotonic counters this is "events in the window"; for
        gauges it is the net drift.  ``window=None`` spans the whole
        ring.
        """
        pts = self._span(window)
        if pts is None:
            return 0.0
        (t0, v0), (t1, v1) = pts
        return v1 - v0

    def rate(self, window: Optional[float] = None) -> float:
        """Per-second derivative across the window (0.0 if degenerate)."""
        pts = self._span(window)
        if pts is None:
            return 0.0
        (t0, v0), (t1, v1) = pts
        if t1 <= t0:
            return 0.0
        return (v1 - v0) / (t1 - t0)

    def mean(self, window: Optional[float] = None) -> float:
        """Mean sample value across the window (0.0 when empty)."""
        latest = self.latest()
        if latest is None:
            return 0.0
        pts = (self.samples() if window is None
               else self.window(latest[0] - window))
        if not pts:
            return 0.0
        return sum(v for _, v in pts) / len(pts)

    def min_over(self, window: Optional[float] = None) -> float:
        """Smallest sample value across the window (0.0 when empty)."""
        latest = self.latest()
        if latest is None:
            return 0.0
        pts = (self.samples() if window is None
               else self.window(latest[0] - window))
        if not pts:
            return 0.0
        return min(v for _, v in pts)

    def _span(self, window: Optional[float]) -> Optional[Tuple[Sample,
                                                               Sample]]:
        if len(self._samples) < 2:
            return None
        pts = self.samples()
        if window is not None:
            pts = [s for s in pts if s[0] >= pts[-1][0] - window]
        if len(pts) < 2:
            return None
        return pts[0], pts[-1]


class DaemonSeries:
    """All retained series for one scraped daemon.

    ``observe_dump`` flattens one ``telemetry.dump`` payload into the
    per-path rings; non-numeric gauges are skipped (they are state, not
    signal).  Latency trackers contribute their mean, count, and max —
    the three numbers the regression checks need.
    """

    def __init__(self, capacity: int = 256):
        self.capacity = capacity
        self._series: Dict[str, MetricSeries] = {}

    def paths(self) -> List[str]:
        return sorted(self._series)

    def series(self, path: str) -> MetricSeries:
        s = self._series.get(path)
        if s is None:
            s = self._series[path] = MetricSeries(self.capacity)
        return s

    def maybe(self, path: str) -> Optional[MetricSeries]:
        return self._series.get(path)

    def observe_dump(self, t: float, dump: Dict[str, Any]) -> None:
        for name, value in dump.get("counters", {}).items():
            self.series(f"counter:{name}").record(t, float(value))
        for name, value in dump.get("gauges", {}).items():
            if isinstance(value, bool) or not isinstance(value,
                                                         (int, float)):
                continue
            self.series(f"gauge:{name}").record(t, float(value))
        for name, value in dump.get("rates", {}).items():
            self.series(f"rate:{name}").record(t, float(value))
        for name, tracker in dump.get("latency", {}).items():
            for field in ("mean", "count", "max"):
                if field in tracker:
                    self.series(f"latency:{name}:{field}").record(
                        t, float(tracker[field]))
