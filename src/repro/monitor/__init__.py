"""Monitor subsystem: Paxos consensus, cluster maps, service metadata.

The monitor cluster is the consistency anchor of the storage system
(paper section 4.1).  A Paxos quorum serializes *transactions* —
cluster-map updates, service-metadata key-value writes, and cluster-log
appends — into a single replicated log, then applies them to versioned
maps.  Daemons and clients learn of new epochs through subscriptions and
through epoch gossip piggybacked on regular traffic.

Malacology exposes this machinery as the **Service Metadata interface**:
a strongly-consistent key-value store in which higher-level services
register, version, and propagate dynamic code (object interface classes
and Mantle load-balancer policies).
"""

from repro.monitor.maps import ClusterMap, MDSMap, MonMap, OSDMap
from repro.monitor.paxos import Acceptor, Proposal, ProposalId
from repro.monitor.monitor import Monitor, MonitorClient
from repro.monitor.cluster_log import ClusterLogEntry

__all__ = [
    "ClusterMap",
    "MonMap",
    "OSDMap",
    "MDSMap",
    "Acceptor",
    "Proposal",
    "ProposalId",
    "Monitor",
    "MonitorClient",
    "ClusterLogEntry",
]
