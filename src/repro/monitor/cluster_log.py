"""Centralized cluster log entries.

Mantle re-uses the monitor's centralized logging so operators watch one
stream instead of visiting every metadata server (paper section 5.1.3).
Entries are committed through Paxos like any other monitor transaction,
so the log is consistent across the quorum and survives monitor
failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

#: Severities, lowest to highest.
DEBUG = "DBG"
INFO = "INF"
WARN = "WRN"
ERROR = "ERR"

_LEVELS = {DEBUG: 0, INFO: 1, WARN: 2, ERROR: 3}


def severity_level(severity: str) -> int:
    """Numeric rank of a severity (higher is worse); raises on unknown."""
    try:
        return _LEVELS[severity]
    except KeyError:
        raise ValueError(f"unknown severity {severity!r}") from None


def max_severity(*severities: str) -> str:
    """The worst of the given severities (at least one required)."""
    if not severities:
        raise ValueError("max_severity needs at least one severity")
    return max(severities, key=severity_level)


@dataclass(frozen=True)
class ClusterLogEntry:
    """One line in the monitor cluster log."""

    time: float
    severity: str
    who: str
    message: str

    def __post_init__(self) -> None:
        if self.severity not in _LEVELS:
            raise ValueError(f"unknown severity {self.severity!r}")

    def at_least(self, severity: str) -> bool:
        return _LEVELS[self.severity] >= _LEVELS[severity]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "time": self.time,
            "severity": self.severity,
            "who": self.who,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClusterLogEntry":
        return cls(time=data["time"], severity=data["severity"],
                   who=data["who"], message=data["message"])

    def format(self) -> str:
        return f"{self.time:10.3f} {self.severity} [{self.who}] {self.message}"
