"""Versioned cluster maps: MonMap, OSDMap, MDSMap.

Ceph records cluster state in per-subsystem "maps" identified by a
monotonically increasing *epoch*.  Every daemon and client caches the
maps it cares about and compares epochs piggybacked on incoming
messages to discover staleness (paper sections 4.1 and 4.4).

Maps here are plain data (dicts all the way down) so they can cross the
simulated wire by deep copy.  Mutation happens only inside the monitor
quorum's state machine, one committed transaction at a time; everyone
else sees immutable snapshots.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Optional

from repro.errors import InvalidArgument, NotFound


class ClusterMap:
    """Base class: an epoch plus subsystem-specific content.

    Subclasses define ``KIND`` and their content schema.  ``to_dict`` /
    ``from_dict`` round-trip the full state for wire transfer and for
    durable storage in the monitor store.
    """

    KIND = "base"

    def __init__(self, epoch: int = 0):
        if epoch < 0:
            raise InvalidArgument(f"negative epoch {epoch}")
        self.epoch = epoch

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.KIND, "epoch": self.epoch}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClusterMap":
        m = cls(epoch=data["epoch"])
        return m

    def copy(self) -> "ClusterMap":
        return type(self).from_dict(copy.deepcopy(self.to_dict()))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(epoch={self.epoch})"


class MonMap(ClusterMap):
    """Membership of the monitor quorum itself.

    Fixed for the lifetime of a simulation (monitor membership changes
    are out of the paper's scope); still versioned for uniformity.
    """

    KIND = "mon"

    def __init__(self, epoch: int = 0, mons: Optional[List[str]] = None):
        super().__init__(epoch)
        self.mons: List[str] = sorted(mons or [])

    @property
    def quorum_size(self) -> int:
        return len(self.mons) // 2 + 1

    def rank_of(self, name: str) -> int:
        try:
            return self.mons.index(name)
        except ValueError:
            raise NotFound(f"{name} not in monmap") from None

    def to_dict(self) -> Dict[str, Any]:
        d = super().to_dict()
        d["mons"] = list(self.mons)
        return d

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MonMap":
        return cls(epoch=data["epoch"], mons=list(data["mons"]))


class OSDMap(ClusterMap):
    """Object-storage-daemon membership, pools, and installed interfaces.

    Two Malacology-relevant pieces live here:

    * ``pools`` — name -> {size (replication), pg_num}; placement is
      computed from this map alone (clients never ask a central broker
      where an object lives — CRUSH-style).
    * ``interfaces`` — the registry of dynamically installed object
      interface classes: name -> {version, source_ref, categories}.
      Interface *code* is stored durably in RADOS; the map records the
      authoritative version so OSDs know when to (re)load (paper
      sections 4.2 and 4.4).  Embedding only a reference keeps maps
      small, per the guidance that monitor values stay compact.
    """

    KIND = "osd"

    def __init__(self, epoch: int = 0,
                 osds: Optional[Dict[str, str]] = None,
                 pools: Optional[Dict[str, Dict[str, Any]]] = None,
                 interfaces: Optional[Dict[str, Dict[str, Any]]] = None):
        super().__init__(epoch)
        #: name -> "up" | "down"
        self.osds: Dict[str, str] = dict(osds or {})
        self.pools: Dict[str, Dict[str, Any]] = dict(pools or {})
        self.interfaces: Dict[str, Dict[str, Any]] = dict(interfaces or {})

    # -- membership ----------------------------------------------------
    def up_osds(self) -> List[str]:
        return sorted(n for n, st in self.osds.items() if st == "up")

    def all_osds(self) -> List[str]:
        return sorted(self.osds)

    def is_up(self, name: str) -> bool:
        return self.osds.get(name) == "up"

    # -- pools ----------------------------------------------------------
    def pool(self, name: str) -> Dict[str, Any]:
        if name not in self.pools:
            raise NotFound(f"pool {name!r} does not exist")
        return self.pools[name]

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        d = super().to_dict()
        d["osds"] = dict(self.osds)
        d["pools"] = copy.deepcopy(self.pools)
        d["interfaces"] = copy.deepcopy(self.interfaces)
        return d

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "OSDMap":
        return cls(epoch=data["epoch"], osds=data["osds"],
                   pools=data["pools"], interfaces=data["interfaces"])


class MDSMap(ClusterMap):
    """Metadata-server cluster state.

    Holds rank assignments (which MDS daemon serves which rank), the
    authoritative Mantle balancer version (paper section 5.1.1 — the
    version names a RADOS object holding the policy source), and the
    lease policy knobs for the Shared Resource interface.
    """

    KIND = "mds"

    def __init__(self, epoch: int = 0,
                 ranks: Optional[Dict[int, str]] = None,
                 state: Optional[Dict[str, str]] = None,
                 balancer_version: str = "",
                 lease_policy: Optional[Dict[str, Any]] = None,
                 routing_mode: str = "client",
                 subtrees: Optional[Dict[str, int]] = None):
        super().__init__(epoch)
        #: rank (int) -> daemon name currently holding it.
        self.ranks: Dict[int, str] = dict(ranks or {})
        #: daemon name -> "up" | "down" | "standby"
        self.state: Dict[str, str] = dict(state or {})
        #: Name of the RADOS object holding the active balancer policy;
        #: empty string means "use the built-in default balancer".
        self.balancer_version = balancer_version
        #: Shared Resource interface policy parameters (section 4.3.1):
        #: mode, min_hold, quota, max_hold — consumed by the MDS Locker.
        self.lease_policy: Dict[str, Any] = dict(
            lease_policy or {"mode": "best-effort"})
        #: How a wrong MDS handles a request after migration (Figure
        #: 11): "proxy" forwards internally and relays the reply;
        #: "client" redirects so the client contacts the owner directly.
        self.routing_mode = routing_mode
        #: Subtree authority: path prefix -> owning rank (dynamic
        #: subtree partitioning's unit of delegation).
        self.subtrees: Dict[str, int] = dict(subtrees or {"/": 0})

    def owner_of(self, path: str) -> int:
        """Rank owning ``path`` by longest-prefix subtree match."""
        best_rank = 0
        best_len = -1
        for prefix, rank in self.subtrees.items():
            if _path_has_prefix(path, prefix) and len(prefix) > best_len:
                best_rank = rank
                best_len = len(prefix)
        return best_rank

    def rank_holder(self, rank: int) -> Optional[str]:
        return self.ranks.get(rank)

    def rank_of(self, name: str) -> Optional[int]:
        for rank, holder in self.ranks.items():
            if holder == name:
                return rank
        return None

    def active_ranks(self) -> List[int]:
        return sorted(self.ranks)

    def to_dict(self) -> Dict[str, Any]:
        d = super().to_dict()
        # JSON-style dicts keyed by int survive deepcopy fine; keep ints.
        d["ranks"] = dict(self.ranks)
        d["state"] = dict(self.state)
        d["balancer_version"] = self.balancer_version
        d["lease_policy"] = copy.deepcopy(self.lease_policy)
        d["routing_mode"] = self.routing_mode
        d["subtrees"] = dict(self.subtrees)
        return d

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MDSMap":
        return cls(epoch=data["epoch"], ranks=data["ranks"],
                   state=data["state"],
                   balancer_version=data["balancer_version"],
                   lease_policy=data["lease_policy"],
                   routing_mode=data["routing_mode"],
                   subtrees=data["subtrees"])


def _path_has_prefix(path: str, prefix: str) -> bool:
    """Component-wise prefix test: "/a" covers "/a/b" but not "/ab"."""
    if prefix == "/":
        return True
    return path == prefix or path.startswith(prefix + "/")


#: kind -> class, for generic map hydration on clients.
MAP_CLASSES = {cls.KIND: cls for cls in (MonMap, OSDMap, MDSMap)}


def map_from_dict(data: Dict[str, Any]) -> ClusterMap:
    """Hydrate any map snapshot received over the wire."""
    kind = data.get("kind")
    cls = MAP_CLASSES.get(kind)
    if cls is None:
        raise InvalidArgument(f"unknown map kind {kind!r}")
    return cls.from_dict(data)
