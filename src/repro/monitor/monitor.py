"""Monitor daemon: rank-based election + multi-Paxos + client API.

Behavioural notes tied to the paper:

* **Proposal batching** — the leader accumulates transactions and
  proposes a batch every ``proposal_interval`` (default 1.0 s, matching
  Ceph's default accumulation interval; section 6.1.2 notes a tuned
  3-monitor quorum reaches ~222 ms average commit latency, which the
  Figure 8 benchmark reproduces by lowering this knob).
* **Subscriptions** — daemons subscribe for map kinds and get pushed
  new epochs after each applied batch; OSDs additionally gossip epochs
  among themselves (section 4.4), which is what the interface
  propagation experiment measures.
* **Durability** — acceptor state, the chosen log, and the applied
  store survive a crash (a real monitor persists them); leadership and
  in-flight client requests do not.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from repro.errors import (
    InvalidArgument,
    MalacologyError,
    QuorumLost,
    TimeoutError_,
)
from repro.monitor.cluster_log import ClusterLogEntry, INFO
from repro.monitor.paxos import (
    Acceptor,
    ChosenLog,
    LeaderBook,
    NO_PROPOSAL,
    Proposal,
    ProposalId,
)
from repro.monitor.store import MonitorStore
from repro.msg import Daemon
from repro.sim.event import Future, Timeout
from repro.sim.kernel import Simulator
from repro.sim.network import Network


class Monitor(Daemon):
    """One member of the monitor quorum."""

    #: Default timing knobs (simulated seconds).
    HEARTBEAT_INTERVAL = 0.25
    LEASE_TIMEOUT = 1.0
    ELECTION_RETRY = 0.6
    RPC_TIMEOUT = 0.5
    #: Per-commit local store sync cost: "hdd" in the paper's minimum
    #: realistic quorum, "ram" for the idealized runs.
    STORE_SYNC = {"ram": 0.0002, "hdd": 0.005}

    def __init__(self, sim: Simulator, network: Network, name: str,
                 mon_names: List[str], proposal_interval: float = 1.0,
                 backing: str = "ram"):
        super().__init__(sim, network, name)
        if name not in mon_names:
            raise InvalidArgument(f"{name} not in monitor list")
        self.mon_names = sorted(mon_names)
        self.rank = self.mon_names.index(name)
        self.proposal_interval = proposal_interval
        if backing not in self.STORE_SYNC:
            raise InvalidArgument(f"unknown backing {backing!r}")
        self.store_sync = self.STORE_SYNC[backing]

        # Durable state (survives crash).
        self.acceptor = Acceptor()
        self.chosen = ChosenLog()
        self.store = MonitorStore(self.mon_names)
        self.max_term_seen = 0

        # Volatile state.
        self.leader: Optional[str] = None
        self.is_leader = False
        self.current_pid: ProposalId = NO_PROPOSAL
        self.book: Optional[LeaderBook] = None
        self.last_heartbeat = 0.0
        self._last_sync = -1.0
        self._campaigning = False
        self._pending_txns: List[Tuple[Dict[str, Any], Future]] = []
        self._inflight_instance: Optional[int] = None
        self._batch_seq = 0
        # Waiters are keyed by *batch id*, not instance: if leadership
        # changes, a different batch may be chosen at the instance we
        # proposed at, and results must never be delivered to the wrong
        # submitters.
        self._applied_waiters: Dict[str, List[Future]] = {}
        #: subscriber daemon name -> set of map kinds.
        self.subscribers: Dict[str, Set[str]] = {}

        # Health-facing gauges (pure reads: the mgr scrapes these on a
        # fixed period and sampling must never change monitor state).
        # ``paxos.pending_txns`` counts consensus work still owed to
        # clients: queued transactions plus proposed-but-unapplied
        # batches — the quantity whose failure to drain while commits
        # stand still is the PAXOS_STALL signal.
        self.perf.gauge_fn(
            "paxos.pending_txns",
            lambda: len(self._pending_txns) + sum(
                len(w) for w in self._applied_waiters.values()))
        self.perf.gauge_fn("mon.is_leader",
                           lambda: 1 if self.is_leader else 0)
        self.perf.gauge_fn("log.entries",
                           lambda: len(self.store.cluster_log))

        self._register_handlers()
        self._start_loops()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _register_handlers(self) -> None:
        rh = self.register_handler
        # Intra-quorum protocol.
        rh("election_claim", self._h_election_claim)
        rh("mon_heartbeat", self._h_heartbeat)
        rh("paxos_prepare", self._h_prepare)
        rh("paxos_accept", self._h_accept)
        rh("paxos_commit", self._h_commit)
        rh("paxos_sync", self._h_sync)
        # Client API.
        rh("mon_submit", self._h_submit)
        rh("mon_get_map", self._h_get_map)
        rh("mon_kv_get", self._h_kv_get)
        rh("mon_kv_list", self._h_kv_list)
        # Debug/tooling surface: tests and operator scripts query
        # these directly; no shipped daemon calls them.
        rh("mon_log_tail", self._h_log_tail)  # mal: disable=MAL011 -- test/tooling query surface, no in-tree caller
        rh("mon_subscribe", self._h_subscribe)
        rh("mon_leader", lambda src, p: self.leader)  # mal: disable=MAL011 -- test/tooling query surface, no in-tree caller

    def _start_loops(self) -> None:
        self.every(self.HEARTBEAT_INTERVAL, self._heartbeat_tick,
                   name=f"{self.name}:hb")
        self.every(self.proposal_interval, self._proposal_tick,
                   name=f"{self.name}:propose")

    # ------------------------------------------------------------------
    # Election: lowest reachable rank wins
    # ------------------------------------------------------------------
    def _heartbeat_tick(self) -> Optional[Generator]:
        if self.is_leader:
            for peer in self.mon_names:
                if peer != self.name:
                    self.cast(peer, "mon_heartbeat", {
                        "term": self.max_term_seen,
                        "applied_through": self.chosen.applied_through,
                    })
            return None
        # Rank-staggered campaign trigger: lower ranks time out first,
        # so the lowest live rank claims leadership before higher ranks
        # even notice the lease expired.  This avoids same-term election
        # collisions without randomized timeouts.
        patience = self.LEASE_TIMEOUT + self.rank * 0.3
        if (self.sim.now - self.last_heartbeat > patience
                and not self._campaigning):
            return self._campaign()
        return None

    def _campaign(self) -> Generator:
        """Try to become leader; yields until resolved or abandoned."""
        self._campaigning = True
        try:
            term = self.max_term_seen + 1
            self.max_term_seen = term
            acks = 1  # self
            futs = [
                (peer, self.call(peer, "election_claim",
                                 {"term": term, "rank": self.rank},
                                 timeout=self.RPC_TIMEOUT))
                for peer in self.mon_names if peer != self.name
            ]
            for peer, fut in futs:
                try:
                    reply = yield fut
                except MalacologyError:
                    continue
                if reply["ok"]:
                    acks += 1
                else:
                    self.max_term_seen = max(self.max_term_seen,
                                             reply["term"])
                    if reply["rank"] < self.rank:
                        # Defer to a lower-ranked live monitor and reset
                        # our patience so we don't immediately re-claim.
                        self.last_heartbeat = self.sim.now
                        return
            if acks >= self.store.monmap.quorum_size:
                yield from self._take_office(term)
        finally:
            self._campaigning = False

    def _h_election_claim(self, src: str, payload: Dict[str, Any]) -> Dict:
        term, rank = payload["term"], payload["rank"]
        if term > self.max_term_seen and rank <= self.rank:
            # Yield to the claimant.
            self.max_term_seen = term
            self.is_leader = False
            self.leader = src
            self.last_heartbeat = self.sim.now
            return {"ok": True, "term": self.max_term_seen,
                    "rank": self.rank}
        return {"ok": False, "term": self.max_term_seen, "rank": self.rank}

    def _h_heartbeat(self, src: str, payload: Dict[str, Any]) -> None:
        if payload["term"] >= self.max_term_seen:
            self.max_term_seen = payload["term"]
            self.leader = src
            self.is_leader = self.is_leader and src == self.name
            self.last_heartbeat = self.sim.now
            if (payload["applied_through"] > self.chosen.applied_through
                    and self.sim.now - self._last_sync >= 0.5):
                self._last_sync = self.sim.now
                self.spawn(self._sync_from(src), name=f"{self.name}:sync")

    # ------------------------------------------------------------------
    # Paxos: leader takeover (Phase 1 over an open range)
    # ------------------------------------------------------------------
    def _take_office(self, term: int) -> Generator:
        pid: ProposalId = (term, self.rank)
        start = self.chosen.applied_through + 1
        replies = [self.acceptor.handle_prepare(pid, start)]
        if not replies[0].ok:
            return
        futs = [self.call(p, "paxos_prepare",
                          {"pid": pid, "start": start},
                          timeout=self.RPC_TIMEOUT)
                for p in self.mon_names if p != self.name]
        for fut in futs:
            try:
                raw = yield fut
            except MalacologyError:
                continue
            if not raw["ok"]:
                self.max_term_seen = max(self.max_term_seen,
                                         raw["promised"][0])
                return
            replies.append(raw_to_reply(raw))
        if len(replies) < self.store.monmap.quorum_size:
            return
        # Adopt the highest-pid accepted value for every open instance.
        adopted: Dict[int, Tuple[ProposalId, Any]] = {}
        for rep in replies:
            for inst, (apid, aval) in rep.accepted.items():
                if inst not in adopted or apid > adopted[inst][0]:
                    adopted[inst] = (apid, aval)
        self.current_pid = pid
        self.is_leader = True
        self.leader = self.name
        self.book = LeaderBook(self.store.monmap.quorum_size)
        self.perf.incr("election.won")
        self.log_local(INFO, f"mon.{self.name} won election term {term}")
        # Re-drive adopted values in instance order, filling gaps with
        # no-ops so the log stays contiguous.
        if adopted:
            top = max(adopted)
            for inst in range(start, top + 1):
                if self.chosen.known(inst):
                    continue
                _, value = adopted.get(
                    inst, (pid, {"id": f"noop:{term}:{inst}", "txns": []}))
                yield from self._drive_instance(inst, value)

    # ------------------------------------------------------------------
    # Paxos: steady-state proposing
    # ------------------------------------------------------------------
    def _proposal_tick(self) -> Optional[Generator]:
        if (not self.is_leader or not self._pending_txns
                or self._inflight_instance is not None):
            return None
        return self._propose_pending()

    def _propose_pending(self) -> Generator:
        batch_pairs = self._pending_txns
        self._pending_txns = []
        self._batch_seq += 1
        batch = {
            "id": f"{self.name}:{self._batch_seq}",
            "txns": [txn for txn, _ in batch_pairs],
        }
        instance = self.chosen.next_instance
        for _, fut in batch_pairs:
            self._applied_waiters.setdefault(batch["id"], []).append(fut)
        yield from self._drive_instance(instance, batch)

    def _drive_instance(self, instance: int, value: Any) -> Generator:
        """Phase 2 for one instance; retries are the next election's job."""
        if self.book is None:
            return
        self._inflight_instance = instance
        proposed_at = self.sim.now
        self.perf.incr("paxos.propose")
        try:
            self.book.start(instance, value)
            proposal = {"instance": instance, "pid": self.current_pid,
                        "value": value}
            # Local accept first (we are also an acceptor).
            if self.acceptor.handle_accept(
                    Proposal(instance, self.current_pid, value)):
                self.book.record_ack(instance, self.name)
            futs = [(p, self.call(p, "paxos_accept", proposal,
                                  timeout=self.RPC_TIMEOUT))
                    for p in self.mon_names if p != self.name]
            chosen = self.book.quorum <= 1
            rejected = False
            for peer, fut in futs:
                if chosen:
                    break  # quorum reached; stragglers can be ignored
                try:
                    ok = yield fut
                except MalacologyError:
                    continue
                if ok and self.book.record_ack(instance, peer):
                    chosen = True
                elif not ok:
                    rejected = True
            if rejected and not chosen:
                # A higher proposal exists: abdicate.
                self.is_leader = False
                self.book = None
                return
            if not chosen:
                return  # could not reach quorum; stay leader, retry later
            self.book.finish(instance)
            # Model the local store sync before acking the commit.
            if self.store_sync:
                yield Timeout(self.store_sync)
            self.perf.incr("paxos.commit")
            self.perf.time("paxos.commit", self.sim.now - proposed_at)
            san = getattr(self.sim, "sanitizers", None)
            if san is not None:
                san.paxos.on_learn(self.name, instance, value,
                                   daemon=self)
            self.chosen.learn(instance, value)
            for peer in self.mon_names:
                if peer != self.name:
                    self.cast(peer, "paxos_commit",
                              {"instance": instance, "value": value})
            self._apply_ready()
        finally:
            self._inflight_instance = None

    def _h_prepare(self, src: str, payload: Dict[str, Any]) -> Dict:
        pid = tuple(payload["pid"])
        self.max_term_seen = max(self.max_term_seen, pid[0])
        rep = self.acceptor.handle_prepare(pid, payload["start"])
        return {
            "ok": rep.ok,
            "promised": list(rep.promised),
            "accepted": {i: [list(p), v]
                         for i, (p, v) in rep.accepted.items()},
        }

    def _h_accept(self, src: str, payload: Dict[str, Any]) -> bool:
        pid = tuple(payload["pid"])
        ok = self.acceptor.handle_accept(
            Proposal(payload["instance"], pid, payload["value"]))
        return ok

    def _h_commit(self, src: str, payload: Dict[str, Any]) -> None:
        san = getattr(self.sim, "sanitizers", None)
        if san is not None:
            san.paxos.on_learn(self.name, payload["instance"],
                               payload["value"], daemon=self)
        self.chosen.learn(payload["instance"], payload["value"])
        self._apply_ready()

    # ------------------------------------------------------------------
    # State transfer for lagging/restarted monitors
    # ------------------------------------------------------------------
    def _h_sync(self, src: str, payload: Any) -> Dict[str, Any]:
        return {
            "snapshot": self.store.snapshot(),
            "applied_through": self.chosen.applied_through,
            "max_term_seen": self.max_term_seen,
        }

    def _sync_from(self, peer: str) -> Generator:
        try:
            reply = yield self.call(peer, "paxos_sync", None,
                                    timeout=self.RPC_TIMEOUT)
        except MalacologyError:
            return
        if reply["applied_through"] > self.chosen.applied_through:
            self.store.restore(reply["snapshot"])
            self.chosen.applied_through = reply["applied_through"]
            self.chosen.take_ready()
            san = getattr(self.sim, "sanitizers", None)
            if san is not None:
                # The restore jumps every map epoch at once; the
                # monotone-epochs checker must see the new watermarks,
                # or a snapshot that regressed a map would go unseen.
                for kind in ("mds", "mon", "osd"):
                    san.paxos.on_epoch(self.name, kind,
                                       self.store.get_map(kind).epoch,
                                       daemon=self)
            self.max_term_seen = max(self.max_term_seen,
                                     reply["max_term_seen"])
            self._notify_subscribers({"osd", "mds", "mon"})

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def _apply_ready(self) -> None:
        changed_kinds: Set[str] = set()
        for instance, batch in self.chosen.take_ready():
            self.perf.incr("paxos.apply")
            epochs_before = self._epochs()
            results = self.store.apply_batch(batch["txns"])
            for kind, before in epochs_before.items():
                if self.store.get_map(kind).epoch != before:
                    changed_kinds.add(kind)
            waiters = self._applied_waiters.pop(batch["id"], [])
            for fut, result in zip(waiters, results):
                if isinstance(result, MalacologyError):
                    fut.fail_if_pending(result)
                else:
                    fut.resolve_if_pending(result)
            self.acceptor.forget_below(instance + 1)
        if changed_kinds:
            san = getattr(self.sim, "sanitizers", None)
            if san is not None:
                for kind in sorted(changed_kinds):
                    san.paxos.on_epoch(self.name, kind,
                                       self.store.get_map(kind).epoch,
                                       daemon=self)
            self._notify_subscribers(changed_kinds)

    def _epochs(self) -> Dict[str, int]:
        return {k: self.store.get_map(k).epoch for k in ("mon", "osd",
                                                         "mds")}

    #: How many random OSDs the leader seeds with a new OSD map; the
    #: rest of the cluster learns through peer-to-peer gossip (paper
    #: section 4.4) — monitors stay out of the fan-out.
    OSD_PUSH_SAMPLE = 3

    def _notify_subscribers(self, kinds: Set[str]) -> None:
        for sub, wanted in self.subscribers.items():
            # sorted(): set-intersection order depends on the string
            # hash seed; casting in it would break seeded replay.
            for kind in sorted(kinds & wanted):
                m = self.store.get_map(kind)
                self.cast(sub, "map_notify",
                          {"kind": kind, "epoch": m.epoch,
                           "map": m.to_dict()})
        if "osd" in kinds and self.is_leader:
            m = self.store.osdmap
            up = [o for o in m.up_osds() if o not in self.subscribers]
            if up:
                rng = self.sim.rng(f"mon-push:{self.name}")
                sample = rng.sample(up, min(self.OSD_PUSH_SAMPLE, len(up)))
                for osd in sample:
                    self.cast(osd, "map_notify",
                              {"kind": "osd", "epoch": m.epoch,
                               "map": m.to_dict()})

    # ------------------------------------------------------------------
    # Client API handlers
    # ------------------------------------------------------------------
    def _h_submit(self, src: str, payload: Dict[str, Any]) -> Any:
        txns = payload["txns"]
        self.perf.incr("mon.submit", len(txns))
        if not self.is_leader:
            if self.leader is None or self.leader == self.name:
                raise QuorumLost(f"mon.{self.name} knows no leader")
            self.perf.incr("mon.submit.proxied")
            # Proxy to the leader and relay its answer.
            return self.call(self.leader, "mon_submit", payload,
                             timeout=self.RPC_TIMEOUT * 4)
        results_fut = Future(name=f"submit:{self.name}")
        single_futs = []
        for txn in txns:
            fut = Future()
            self._pending_txns.append((txn, fut))
            single_futs.append(fut)

        def _collect() -> Generator:
            out = []
            for f in single_futs:
                out.append((yield f))
            return out

        proc = self.spawn(_collect(), name=f"{self.name}:submit")
        proc.completion.add_callback(
            lambda f: results_fut.fail_if_pending(f.error)
            if f.failed else results_fut.resolve_if_pending(f.result()))
        return results_fut

    def _h_get_map(self, src: str, payload: Dict[str, Any]) -> Dict:
        return self.store.get_map(payload["kind"]).to_dict()

    def _h_kv_get(self, src: str, payload: Dict[str, Any]) -> Dict:
        return self.store.kv_get(payload["key"])

    def _h_kv_list(self, src: str, payload: Dict[str, Any]) -> Dict:
        return self.store.kv_list(payload.get("prefix", ""))

    def _h_log_tail(self, src: str, payload: Dict[str, Any]) -> List:
        return [e.to_dict()
                for e in self.store.log_tail(payload.get("count", 100))]

    def _h_subscribe(self, src: str, payload: Dict[str, Any]) -> bool:
        kinds = set(payload["kinds"])
        unknown = kinds - {"mon", "osd", "mds"}
        if unknown:
            raise InvalidArgument(f"unknown map kinds {sorted(unknown)}")
        self.subscribers.setdefault(src, set()).update(kinds)
        return True

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def log_local(self, severity: str, message: str) -> None:
        """Append to the cluster log through consensus (leader only)."""
        entry = ClusterLogEntry(time=self.sim.now, severity=severity,
                                who=f"mon.{self.name}", message=message)
        if self.is_leader:
            self._pending_txns.append(
                ({"op": "log", "entry": entry.to_dict()}, Future()))

    # ------------------------------------------------------------------
    # Crash / restart semantics
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        super().on_crash()  # telemetry is volatile
        # Durable: acceptor, chosen log, store, max_term_seen.
        self.is_leader = False
        self.leader = None
        self.book = None
        self.current_pid = NO_PROPOSAL
        self._campaigning = False
        for _, fut in self._pending_txns:
            fut.fail_if_pending(QuorumLost(f"mon.{self.name} crashed"))
        self._pending_txns = []
        self._inflight_instance = None
        for waiters in self._applied_waiters.values():
            for fut in waiters:
                fut.fail_if_pending(QuorumLost(f"mon.{self.name} crashed"))
        self._applied_waiters = {}
        self.subscribers = {}

    def on_restart(self) -> None:
        self.last_heartbeat = self.sim.now  # grace period before campaign
        self._start_loops()


def raw_to_reply(raw: Dict[str, Any]):
    """Rehydrate a PrepareReply that crossed the wire as plain dicts."""
    from repro.monitor.paxos import PrepareReply

    return PrepareReply(
        ok=raw["ok"],
        promised=tuple(raw["promised"]),
        accepted={int(i): (tuple(pv[0]), pv[1])
                  for i, pv in raw["accepted"].items()},
    )


class MonitorClient:
    """Mixin for daemons/clients that talk to the monitor quorum.

    Handles leader discovery, retries on quorum churn, and caching of
    maps.  Mix into any :class:`Daemon` subclass and call
    :meth:`init_mon_client` from ``__init__``.
    """

    MON_RETRIES = 5
    MON_TIMEOUT = 4.0

    def init_mon_client(self: Any, mon_names: List[str]) -> None:
        self.mon_names = list(mon_names)
        self._mon_cursor = 0
        self.cached_maps: Dict[str, Any] = {}
        if "map_notify" not in self._handlers:
            self.register_handler("map_notify", self._h_map_notify)

    def _h_map_notify(self: Any, src: str, payload: Dict[str, Any]) -> None:
        kind = payload["kind"]
        cached = self.cached_maps.get(kind)
        if cached is None or payload["epoch"] > cached.epoch:
            from repro.monitor.maps import map_from_dict

            self.cached_maps[kind] = map_from_dict(payload["map"])
            self.on_map_update(kind, self.cached_maps[kind])

    def on_map_update(self: Any, kind: str, new_map: Any) -> None:
        """Hook: subclasses react to fresh maps."""

    def _pick_mon(self: Any) -> str:
        mon = self.mon_names[self._mon_cursor % len(self.mon_names)]
        return mon

    def _advance_mon(self: Any) -> None:
        self._mon_cursor += 1

    def mon_request(self: Any, method: str, payload: Any) -> Generator:
        """Issue a monitor RPC with leader-failover retry."""
        last_error: Optional[MalacologyError] = None
        for _ in range(self.MON_RETRIES * len(self.mon_names)):
            mon = self._pick_mon()
            try:
                reply = yield self.call(mon, method, payload,
                                        timeout=self.MON_TIMEOUT)
                return reply
            except (TimeoutError_, QuorumLost) as exc:
                last_error = exc
                self._advance_mon()
                yield Timeout(0.1)
        raise last_error or QuorumLost("no monitor reachable")

    def mon_submit(self: Any, txns: List[Dict[str, Any]]) -> Generator:
        results = yield from self.mon_request("mon_submit", {"txns": txns})
        return results

    def mon_kv_put(self: Any, key: str, value: Any) -> Generator:
        results = yield from self.mon_submit(
            [{"op": "kv_put", "key": key, "value": value}])
        return results[0]

    def mon_kv_get(self: Any, key: str) -> Generator:
        entry = yield from self.mon_request("mon_kv_get", {"key": key})
        return entry

    def mon_kv_list(self: Any, prefix: str = "") -> Generator:
        entries = yield from self.mon_request("mon_kv_list",
                                              {"prefix": prefix})
        return entries

    def mon_get_map(self: Any, kind: str) -> Generator:
        from repro.monitor.maps import map_from_dict

        raw = yield from self.mon_request("mon_get_map", {"kind": kind})
        m = map_from_dict(raw)
        cached = self.cached_maps.get(kind)
        if cached is None or m.epoch > cached.epoch:
            self.cached_maps[kind] = m
        return self.cached_maps[kind]

    def mon_log(self: Any, severity: str, message: str) -> Generator:
        entry = ClusterLogEntry(time=self.sim.now, severity=severity,
                                who=self.name, message=message)
        yield from self.mon_submit([{"op": "log",
                                     "entry": entry.to_dict()}])

    def mon_subscribe(self: Any, kinds: List[str]) -> Generator:
        # Subscribe on every monitor so notifications survive any single
        # monitor failure; duplicates are deduped by epoch.
        for mon in self.mon_names:
            try:
                yield self.call(mon, "mon_subscribe", {"kinds": kinds},
                                timeout=self.MON_TIMEOUT)
            except MalacologyError:
                continue
        return None
