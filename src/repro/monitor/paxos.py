"""Pure Paxos state machines (no I/O) used by the monitor quorum.

The monitor daemon (:mod:`repro.monitor.monitor`) drives these over the
simulated network; keeping the algorithm side-effect free makes the
safety properties unit- and property-testable in isolation, which is
how we check *agreement* (no two monitors ever learn different values
for the same log instance) under message loss, reordering, and leader
churn.

The structure is multi-Paxos: one acceptor log of numbered *instances*,
each deciding one value (a batch of monitor transactions).  A stable
leader skips Phase 1 in the steady state by preparing an open-ended
range of instances when it takes office (its proposal id then covers
every later instance until a higher id is seen).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Proposal ids order first by round (election term) then by proposer
#: rank, so ids are unique across proposers and totally ordered.
ProposalId = Tuple[int, int]

NO_PROPOSAL: ProposalId = (-1, -1)


@dataclass
class Proposal:
    """A value offered for one log instance."""

    instance: int
    pid: ProposalId
    value: Any


@dataclass
class PrepareReply:
    """Acceptor's answer to a prepare covering instances >= ``start``.

    ``accepted`` carries, for every instance at or after ``start`` where
    this acceptor has accepted something, the (pid, value) pair — the
    new leader must re-propose the highest-pid value per instance.
    """

    ok: bool
    promised: ProposalId
    accepted: Dict[int, Tuple[ProposalId, Any]] = field(default_factory=dict)


class Acceptor:
    """Single-acceptor state: one promise watermark, per-instance accepts.

    A real Ceph monitor persists this to its local store; the monitor
    daemon treats this object as durable across crash/restart (volatile
    leadership state lives elsewhere).
    """

    def __init__(self) -> None:
        #: Highest proposal id promised; covers ALL instances (leader
        #: lease style multi-Paxos promise).
        self.promised: ProposalId = NO_PROPOSAL
        #: instance -> (pid, value) accepted.
        self.accepted: Dict[int, Tuple[ProposalId, Any]] = {}

    def handle_prepare(self, pid: ProposalId, start: int) -> PrepareReply:
        """Phase 1b: promise if ``pid`` beats anything seen."""
        if pid <= self.promised:
            return PrepareReply(ok=False, promised=self.promised)
        self.promised = pid
        relevant = {i: pv for i, pv in self.accepted.items() if i >= start}
        return PrepareReply(ok=True, promised=pid, accepted=relevant)

    def handle_accept(self, proposal: Proposal) -> bool:
        """Phase 2b: accept unless a higher prepare has been promised."""
        if proposal.pid < self.promised:
            return False
        self.promised = proposal.pid
        self.accepted[proposal.instance] = (proposal.pid, proposal.value)
        return True

    def forget_below(self, instance: int) -> None:
        """Garbage-collect accepts for instances already chosen/applied."""
        for i in [i for i in self.accepted if i < instance]:
            del self.accepted[i]


class ChosenLog:
    """The learner side: contiguous application of chosen values.

    Values may be *learned* out of order (commit messages reorder on the
    wire) but are *applied* strictly in instance order; ``take_ready``
    hands back the next contiguous run.
    """

    def __init__(self) -> None:
        self._chosen: Dict[int, Any] = {}
        self.applied_through = -1  # highest instance applied

    def learn(self, instance: int, value: Any) -> None:
        existing = self._chosen.get(instance)
        if existing is not None and existing != value:
            raise AssertionError(
                f"paxos agreement violated at instance {instance}: "
                f"{existing!r} vs {value!r}")
        if instance > self.applied_through:
            self._chosen[instance] = value

    def known(self, instance: int) -> bool:
        return instance <= self.applied_through or instance in self._chosen

    def take_ready(self) -> List[Tuple[int, Any]]:
        """Pop the next contiguous run of chosen-but-unapplied values."""
        out = []
        nxt = self.applied_through + 1
        while nxt in self._chosen:
            out.append((nxt, self._chosen.pop(nxt)))
            self.applied_through = nxt
            nxt += 1
        return out

    @property
    def next_instance(self) -> int:
        """First instance with no locally known decision."""
        candidate = self.applied_through + 1
        while candidate in self._chosen:
            candidate += 1
        return candidate


class LeaderBook:
    """Leader-side bookkeeping for in-flight instances.

    Tracks per-instance accept quorums.  Not a safety component — the
    acceptors are — just the tally a leader keeps so it knows when an
    instance is chosen.
    """

    def __init__(self, quorum: int):
        self.quorum = quorum
        self._acks: Dict[int, set] = {}
        self._values: Dict[int, Any] = {}

    def start(self, instance: int, value: Any) -> None:
        self._acks[instance] = set()
        self._values[instance] = value

    def value_of(self, instance: int) -> Any:
        return self._values.get(instance)

    def record_ack(self, instance: int, who: str) -> bool:
        """Record one acceptor's ack; True when quorum first reached."""
        if instance not in self._acks:
            return False
        acks = self._acks[instance]
        before = len(acks) >= self.quorum
        acks.add(who)
        after = len(acks) >= self.quorum
        return after and not before

    def finish(self, instance: int) -> None:
        self._acks.pop(instance, None)
        self._values.pop(instance, None)

    def pending_instances(self) -> List[int]:
        return sorted(self._acks)
