"""The monitor's replicated state machine: maps, KV store, cluster log.

Every committed Paxos value is a *batch* of transactions; applying a
batch is deterministic, so all monitors converge on identical state.
Transactions:

``{"op": "kv_put", "key": k, "value": v}``
    Service-metadata write; bumps the key's version.
``{"op": "kv_del", "key": k}``
``{"op": "map_update", "kind": "osd"|"mds", "actions": [...]}``
    Structured delta against a cluster map; bumps the map epoch once
    per transaction regardless of how many actions it carries.
``{"op": "log", "entry": {...}}``
    Centralized cluster-log append (paper section 5.1.3).
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import InvalidArgument, NotFound, NotPermitted
from repro.monitor.cluster_log import ClusterLogEntry
from repro.monitor.maps import MDSMap, MonMap, OSDMap
from repro.store.base import normalize_backend, normalize_cache

#: Service-metadata keys can carry a registered guard; see
#: :meth:`MonitorStore.register_kv_guard`.
KvGuard = Callable[[str, Any], Any]


class MonitorStore:
    """Applied state shared by the monitor quorum.

    Guards (authorization / sanitization hooks, paper section 4.1) are
    code, not data — they are registered identically on every monitor at
    cluster build time so application stays deterministic.
    """

    MAX_LOG_ENTRIES = 10_000

    def __init__(self, mons: List[str]):
        self.monmap = MonMap(epoch=1, mons=mons)
        self.osdmap = OSDMap(epoch=1)
        self.mdsmap = MDSMap(epoch=1)
        #: key -> {"value": v, "version": n}
        self.kv: Dict[str, Dict[str, Any]] = {}
        self.cluster_log: List[ClusterLogEntry] = []
        self._kv_guards: List[Tuple[str, KvGuard]] = []

    # ------------------------------------------------------------------
    # Guards: the programmable hooks of the Service Metadata interface
    # ------------------------------------------------------------------
    def register_kv_guard(self, prefix: str, guard: KvGuard) -> None:
        """Install a guard for keys under ``prefix``.

        The guard receives ``(key, value)`` and either returns a
        (possibly sanitized) value or raises :class:`NotPermitted`.
        This implements the paper's "authorization control / trigger
        actions based on specific values" examples.
        """
        self._kv_guards.append((prefix, guard))

    def _apply_guards(self, key: str, value: Any) -> Any:
        for prefix, guard in self._kv_guards:
            if key.startswith(prefix):
                value = guard(key, value)
        return value

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get_map(self, kind: str):
        if kind == "mon":
            return self.monmap
        if kind == "osd":
            return self.osdmap
        if kind == "mds":
            return self.mdsmap
        raise InvalidArgument(f"unknown map kind {kind!r}")

    def kv_get(self, key: str) -> Dict[str, Any]:
        entry = self.kv.get(key)
        if entry is None:
            raise NotFound(f"service-metadata key {key!r} not found")
        return copy.deepcopy(entry)

    def kv_list(self, prefix: str = "") -> Dict[str, Dict[str, Any]]:
        return {k: copy.deepcopy(v) for k, v in self.kv.items()
                if k.startswith(prefix)}

    def log_tail(self, count: int) -> List[ClusterLogEntry]:
        if count <= 0:
            return []
        return list(self.cluster_log[-count:])

    # ------------------------------------------------------------------
    # Transaction application
    # ------------------------------------------------------------------
    def apply_batch(self, batch: List[Dict[str, Any]]) -> List[Any]:
        """Apply one committed batch; returns per-txn results.

        A transaction that fails validation yields its exception as the
        result rather than aborting the batch — the batch was already
        committed by consensus, so every replica must take the same
        deterministic path through it.
        """
        results: List[Any] = []
        for txn in batch:
            try:
                results.append(self._apply_one(txn))
            except (InvalidArgument, NotFound, NotPermitted) as exc:
                results.append(exc)
        return results

    def _apply_one(self, txn: Dict[str, Any]) -> Any:
        op = txn.get("op")
        if op == "kv_put":
            return self._kv_put(txn["key"], txn["value"])
        if op == "kv_del":
            self.kv.pop(txn["key"], None)
            return None
        if op == "map_update":
            return self._map_update(txn["kind"], txn["actions"])
        if op == "log":
            return self._log_append(txn["entry"])
        raise InvalidArgument(f"unknown monitor txn op {op!r}")

    def _kv_put(self, key: str, value: Any) -> int:
        value = self._apply_guards(key, value)
        entry = self.kv.get(key)
        version = (entry["version"] + 1) if entry else 1
        self.kv[key] = {"value": copy.deepcopy(value), "version": version}
        return version

    def _log_append(self, entry_dict: Dict[str, Any]) -> None:
        entry = ClusterLogEntry.from_dict(entry_dict)
        self.cluster_log.append(entry)
        if len(self.cluster_log) > self.MAX_LOG_ENTRIES:
            del self.cluster_log[: len(self.cluster_log) // 2]

    # ------------------------------------------------------------------
    # Map deltas
    # ------------------------------------------------------------------
    def _map_update(self, kind: str, actions: List[Dict[str, Any]]) -> int:
        if kind == "osd":
            new_epoch = self._update_osdmap(actions)
        elif kind == "mds":
            new_epoch = self._update_mdsmap(actions)
        else:
            raise InvalidArgument(f"cannot update map kind {kind!r}")
        return new_epoch

    def _update_osdmap(self, actions: List[Dict[str, Any]]) -> int:
        m = self.osdmap
        for act in actions:
            what = act["action"]
            if what == "set_osd_state":
                m.osds[act["name"]] = act["state"]
            elif what == "create_pool":
                if act["name"] in m.pools:
                    raise InvalidArgument(f"pool {act['name']!r} exists")
                cfg = {
                    "size": act.get("size", 2),
                    "pg_num": act.get("pg_num", 64),
                }
                ec = act.get("ec")
                if ec is not None:
                    k, em = int(ec["k"]), int(ec["m"])
                    if k < 1 or em < 1:
                        raise InvalidArgument(f"bad EC profile {ec!r}")
                    cfg["ec"] = {"k": k, "m": em}
                    cfg["size"] = k + em  # acting set spans all shards
                backend = act.get("backend")
                cache = act.get("cache")
                if ec is not None and (backend is not None
                                       or cache is not None):
                    # EC pools have their own shard path; a local
                    # backend/cache tier would not see the shards.
                    raise InvalidArgument(
                        f"pool {act['name']!r}: 'ec' cannot be "
                        "combined with 'backend' or 'cache'")
                if backend is not None:
                    cfg["backend"] = normalize_backend(backend)
                if cache is not None:
                    cfg["cache"] = normalize_cache(cache)
                m.pools[act["name"]] = cfg
            elif what == "set_pool_pg_num":
                self.get_map("osd").pool(act["name"])["pg_num"] = act["pg_num"]
            elif what == "set_interface":
                # Interface source is embedded in the map itself (the
                # paper's Lua scripts travel the same way, section
                # 6.1.2); keep sources small per monitor guidance.
                m.interfaces[act["name"]] = {
                    "version": act["version"],
                    "source": act["source"],
                    "category": act.get("category", "other"),
                }
            elif what == "remove_interface":
                m.interfaces.pop(act["name"], None)
            else:
                raise InvalidArgument(f"unknown osdmap action {what!r}")
        m.epoch += 1
        return m.epoch

    def _update_mdsmap(self, actions: List[Dict[str, Any]]) -> int:
        m = self.mdsmap
        for act in actions:
            what = act["action"]
            if what == "set_rank":
                m.ranks[int(act["rank"])] = act["name"]
            elif what == "remove_rank":
                m.ranks.pop(int(act["rank"]), None)
            elif what == "set_state":
                m.state[act["name"]] = act["state"]
            elif what == "set_balancer_version":
                m.balancer_version = act["version"]
            elif what == "set_lease_policy":
                m.lease_policy = copy.deepcopy(act["policy"])
            elif what == "set_routing_mode":
                if act["mode"] not in ("client", "proxy"):
                    raise InvalidArgument(
                        f"bad routing mode {act['mode']!r}")
                m.routing_mode = act["mode"]
            elif what == "set_subtree_auth":
                m.subtrees[act["path"]] = int(act["rank"])
            elif what == "remove_subtree_auth":
                if act["path"] != "/":
                    m.subtrees.pop(act["path"], None)
            else:
                raise InvalidArgument(f"unknown mdsmap action {what!r}")
        m.epoch += 1
        return m.epoch

    # ------------------------------------------------------------------
    # Snapshots (for monitor restart)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        return {
            "monmap": self.monmap.to_dict(),
            "osdmap": self.osdmap.to_dict(),
            "mdsmap": self.mdsmap.to_dict(),
            "kv": copy.deepcopy(self.kv),
            "log": [e.to_dict() for e in self.cluster_log],
        }

    def restore(self, snap: Dict[str, Any]) -> None:
        self.monmap = MonMap.from_dict(snap["monmap"])
        self.osdmap = OSDMap.from_dict(snap["osdmap"])
        self.mdsmap = MDSMap.from_dict(snap["mdsmap"])
        self.kv = copy.deepcopy(snap["kv"])
        self.cluster_log = [
            ClusterLogEntry.from_dict(d) for d in snap["log"]]
