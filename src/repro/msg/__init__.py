"""Typed message envelopes and the daemon/RPC layer.

All daemons in the system (monitors, OSDs, metadata servers, clients)
derive from :class:`Daemon`, which provides registered RPC handlers,
request/response correlation with timeouts, one-way casts, periodic
tick processes, and crash/restart semantics used by failure injection.
"""

from repro.msg.message import Envelope
from repro.msg.daemon import Daemon, RpcTimeout

__all__ = ["Envelope", "Daemon", "RpcTimeout"]
