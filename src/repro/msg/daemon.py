"""Daemon base class: RPC handlers, casts, tickers, crash/restart.

Handler model
-------------
A handler registered with :meth:`Daemon.register_handler` receives
``(src, payload)`` and may return:

* a plain value — replied immediately;
* a :class:`Future` — replied when it settles;
* a generator — spawned as a process, replied when it completes.

Raising a :class:`MalacologyError` (or failing the future/process with
one) produces an error response which re-raises on the caller side with
its wire code intact.  Any other exception is a programming error and
propagates loudly through the simulator.
"""

from __future__ import annotations

import copy
import inspect
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.errors import (
    DaemonDown,
    MalacologyError,
    TimeoutError_,
    error_from_code,
)
from repro.msg.message import CAST, REQUEST, RESPONSE, Envelope
from repro.profiling import install_profile_commands
from repro.sim.event import Future, Timeout
from repro.sim.kernel import Process, Simulator
from repro.sim.network import Network
from repro.telemetry import (
    PerfCounters,
    SpanContext,
    TraceCollector,
    install_telemetry_commands,
)

#: Re-exported alias: what an RPC caller catches on deadline expiry.
RpcTimeout = TimeoutError_


class Daemon:
    """A network-visible process with registered RPC methods.

    Subclasses register handlers in ``__init__`` and may override
    :meth:`on_crash` / :meth:`on_restart` to model volatile vs durable
    state.  Volatile state must live on the instance and be reset in
    ``on_crash``; anything that should survive belongs in RADOS or the
    monitor store, never on the daemon — the same discipline the paper's
    services follow (section 5.1.2).
    """

    def __init__(self, sim: Simulator, network: Network, name: str):
        self.sim = sim
        self.network = network
        self.name = name
        self.alive = True
        self._handlers: Dict[str, Callable[[str, Any], Any]] = {}
        self._pending: Dict[int, Future] = {}
        self._next_id = 0
        self._procs: List[Process] = []
        #: Gray-failure switch: while True, ``every`` tickers keep
        #: their cadence but skip the work (see pause_tickers).
        self._tickers_paused = False
        #: Telemetry: every daemon owns a perf registry and shares the
        #: simulator-wide trace collector.  ``_trace_ctx`` is the span
        #: context of the handler currently executing on this daemon;
        #: outgoing call/cast stamp it onto the envelope.
        self.perf = PerfCounters(owner=name, clock=lambda: sim.now)
        self.tracer = TraceCollector.of(sim)
        self._trace_ctx: Optional[SpanContext] = None
        self._admin_commands: Dict[str, Callable[[Any], Any]] = {}
        self.perf.gauge_fn("rpc.pending", lambda: len(self._pending))
        self.perf.gauge_fn(
            "procs.active",
            lambda: sum(1 for p in self._procs if not p.done))
        install_telemetry_commands(self)
        install_profile_commands(self)
        profiler = sim.profiler
        if profiler is not None:
            # Profiled clusters surface per-daemon handler totals as
            # telemetry gauges, which the mgr's scrapes then carry
            # into the Prometheus export.  Gauges are evaluated only
            # at dump time, so registration never touches the
            # schedule.
            self.perf.gauge_fn(
                "profile.handler_events",
                lambda: profiler.daemon_totals(self.name)["events"])
            self.perf.gauge_fn(
                "profile.handler_sim_time",
                lambda: profiler.daemon_totals(self.name)["sim_time"])
        network.register(self)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_handler(self, method: str,
                         fn: Callable[[str, Any], Any]) -> None:
        if method in self._handlers:
            raise ValueError(f"{self.name}: duplicate handler {method!r}")
        self._handlers[method] = fn

    def register_admin_command(self, name: str,
                               fn: Callable[[Any], Any]) -> None:
        """Register an out-of-band admin command (Ceph admin socket).

        Commands take one ``args`` dict (may be None) and return a
        JSON-safe value.  They are invoked directly on the daemon
        object — no simulated time passes — so they work even when the
        cluster is wedged, like Ceph's UNIX-socket surface.  Each
        command is also exposed as an RPC handler of the same name so
        peers and tests can query it in-band.
        """
        if name in self._admin_commands:
            raise ValueError(f"{self.name}: duplicate admin cmd {name!r}")
        self._admin_commands[name] = fn
        self.register_handler(
            name, lambda src, args: self.admin_command(name, args))

    def admin_command(self, name: str, args: Any = None) -> Any:
        """Invoke an admin command by name (raises on unknown names)."""
        fn = self._admin_commands.get(name)
        if fn is None:
            raise MalacologyError(
                f"{self.name}: no admin command {name!r}")
        return fn(args)

    def has_admin_command(self, name: str) -> bool:
        return name in self._admin_commands

    def admin_commands(self) -> List[str]:
        """The names this daemon's admin socket answers (sorted)."""
        return sorted(self._admin_commands)

    # ------------------------------------------------------------------
    # Outbound
    # ------------------------------------------------------------------
    def call(self, dst: str, method: str, payload: Any = None,
             timeout: Optional[float] = None) -> Future:
        """Send a request; returns a future for the response value."""
        if not self.alive:
            fut = Future(name=f"{self.name}->{dst}:{method}")
            fut.fail(DaemonDown(f"{self.name} is down"))
            return fut
        msg_id = self._next_id
        self._next_id += 1
        fut = Future(name=f"{self.name}->{dst}:{method}#{msg_id}")
        self._pending[msg_id] = fut
        self.perf.incr("rpc.tx")
        self._post(Envelope(kind=REQUEST, src=self.name, dst=dst,
                            method=method, msg_id=msg_id, payload=payload,
                            trace=self._trace_wire()))
        if timeout is not None:
            self.sim.schedule(timeout, self._expire, msg_id)
        return fut

    def cast(self, dst: str, method: str, payload: Any = None) -> None:
        """Fire-and-forget one-way message (gossip, notifications)."""
        if not self.alive:
            return
        msg_id = self._next_id
        self._next_id += 1
        self.perf.incr("rpc.tx")
        self._post(Envelope(kind=CAST, src=self.name, dst=dst,
                            method=method, msg_id=msg_id, payload=payload,
                            trace=self._trace_wire()))

    def _trace_wire(self) -> Optional[Dict[str, int]]:
        ctx = self._trace_ctx
        return ctx.wire() if ctx is not None else None

    @property
    def trace_context(self) -> Optional[SpanContext]:
        """The span context of the handler currently executing here.

        Public read-only view for passive observers (protocol
        sanitizers attach the causal trace to violation reports).
        """
        return self._trace_ctx

    def broadcast(self, dsts: List[str], method: str,
                  payload: Any = None) -> None:
        for dst in dsts:
            self.cast(dst, method, payload)

    def _post(self, env: Envelope) -> None:
        # Deep-copy the payload so sender and receiver never alias
        # mutable state; the wire is a value boundary.
        env.payload = copy.deepcopy(env.payload)
        self.stamp_epochs(env)
        self.network.send(self.name, env.dst, env)

    def stamp_epochs(self, env: Envelope) -> None:
        """Hook: subclasses piggyback map epochs on outgoing messages."""

    def _expire(self, msg_id: int) -> None:
        fut = self._pending.pop(msg_id, None)
        if fut is not None:
            fut.fail_if_pending(
                RpcTimeout(f"rpc #{msg_id} from {self.name} timed out"))

    # ------------------------------------------------------------------
    # Inbound
    # ------------------------------------------------------------------
    def deliver(self, envelope: Envelope) -> None:
        if not self.alive:
            return  # a dead daemon drops traffic; callers time out
        self.observe_epochs(envelope)
        if envelope.kind == RESPONSE:
            self._on_response(envelope)
        elif envelope.kind in (REQUEST, CAST):
            self._on_request(envelope)
        else:
            raise ValueError(f"unknown envelope kind {envelope.kind!r}")

    def observe_epochs(self, env: Envelope) -> None:
        """Hook: subsystems react to piggybacked epochs (gossip pull)."""

    def _on_response(self, env: Envelope) -> None:
        fut = self._pending.pop(env.msg_id, None)
        if fut is None:
            return  # late reply after timeout; drop
        if env.error is not None:
            code, message = env.error
            fut.fail_if_pending(error_from_code(code, message))
        else:
            fut.resolve_if_pending(env.payload)

    def _on_request(self, env: Envelope) -> None:
        handler = self._handlers.get(env.method)
        if handler is None:
            if env.kind == REQUEST:
                self._reply_error(env, MalacologyError(
                    f"{self.name}: no handler for {env.method!r}"))
            return
        self.perf.incr("rpc.rx")
        profiler = self.sim.profiler
        if profiler is not None:
            profiler.on_handler(self.name, env.method)
        span = None
        ctx = None
        if env.trace is not None:
            span = self.tracer.start_span(
                env.method, daemon=self.name,
                trace_id=env.trace["trace"], parent_id=env.trace["span"],
                src=env.src, kind=env.kind)
            ctx = SpanContext(span.trace_id, span.span_id)
        started = self.sim.now
        try:
            result = self._invoke_timed(handler, env, ctx)
        except MalacologyError as exc:
            self._finish_rpc(env, span, started, error=exc)
            if env.kind == REQUEST:
                self._reply_error(env, exc)
            return
        if env.kind == CAST:
            if inspect.isgenerator(result):
                proc = self.spawn(result, name=f"{self.name}:{env.method}")
                proc.completion.add_callback(
                    lambda fut: self._finish_rpc(env, span, started,
                                                 error=fut.error))
            else:
                self._finish_rpc(env, span, started)
            return
        if inspect.isgenerator(result):
            proc = self.spawn(result, name=f"{self.name}:{env.method}")
            # Finish the span before the reply goes out so the handler
            # span never outlives the response that settles it.
            proc.completion.add_callback(
                lambda fut: self._finish_rpc(env, span, started,
                                             error=fut.error))
            proc.completion.add_callback(
                lambda fut: self._reply_future(env, fut))
        elif isinstance(result, Future):
            result.add_callback(
                lambda fut: self._finish_rpc(env, span, started,
                                             error=fut.error))
            result.add_callback(lambda fut: self._reply_future(env, fut))
        else:
            self._finish_rpc(env, span, started)
            self._reply_value(env, result)

    def _invoke_timed(self, handler: Callable[[str, Any], Any],
                      env: Envelope, ctx: Optional[SpanContext]) -> Any:
        """Run :meth:`_invoke`, charging the synchronous portion to the
        wall-clock profiler when one is installed.

        Generator handlers only execute up to their first yield here;
        later resumptions are attributed by the kernel dispatch loop
        through the process's name, so the whole trampoline is covered
        without double counting.
        """
        wall = self.sim.wall_profiler
        if wall is None:
            return self._invoke(handler, env, ctx)
        token = wall.begin()
        try:
            return self._invoke(handler, env, ctx)
        finally:
            wall.end_handler(token, self.name, env.method)

    def _invoke(self, handler: Callable[[str, Any], Any], env: Envelope,
                ctx: Optional[SpanContext]) -> Any:
        """Run a handler with the trace context active.

        The context is installed around the *synchronous* portion here,
        and — for generator handlers — around every later resumption
        via :meth:`_run_traced`, so outgoing call/cast between yields
        inherit the right span even when many handlers interleave.
        """
        if ctx is None:
            return handler(env.src, env.payload)
        prev, self._trace_ctx = self._trace_ctx, ctx
        try:
            result = handler(env.src, env.payload)
        finally:
            self._trace_ctx = prev
        if inspect.isgenerator(result):
            result = self._run_traced(result, ctx)
        return result

    def _run_traced(self, body: Generator, ctx: SpanContext) -> Generator:
        """Pass-through trampoline keeping ``_trace_ctx`` set per step.

        Adds no simulated events and no extra yields — determinism is
        untouched; it only brackets each ``send``/``throw`` into the
        wrapped generator with a context swap.
        """
        to_send: Any = None
        to_throw: Optional[BaseException] = None
        while True:
            prev, self._trace_ctx = self._trace_ctx, ctx
            try:
                if to_throw is not None:
                    err, to_throw = to_throw, None
                    yielded = body.throw(err)
                else:
                    yielded = body.send(to_send)
            except StopIteration as stop:
                return getattr(stop, "value", None)
            finally:
                self._trace_ctx = prev
            try:
                to_send = yield yielded
            except GeneratorExit:
                body.close()
                raise
            # mal: disable=MAL004 -- trampoline: re-thrown into the
            # wrapped generator on the next step, never swallowed
            except BaseException as exc:
                to_send, to_throw = None, exc

    def traced(self, body: Generator, name: str) -> Generator:
        """Wrap a client-side generator op under a new root span.

        Usage::

            proc = client.do(client.traced(log.append(data), "zlog.append"))

        Every RPC the op issues (and every hop those trigger) lands in
        the same trace; dump it with ``telemetry.trace`` afterwards.
        """
        ctx = self.tracer.begin_trace(name, daemon=self.name)

        def _root() -> Generator:
            error: Optional[BaseException] = None
            try:
                result = yield from self._run_traced(body, ctx)
                return result
            # mal: disable=MAL004 -- records the error on the span and
            # immediately re-raises
            except BaseException as exc:
                error = exc
                raise
            finally:
                self.tracer.finish(ctx.span_id, error=error)

        return _root()

    def _finish_rpc(self, env: Envelope, span: Any, started: float,
                    error: Optional[BaseException] = None) -> None:
        self.perf.time(f"rpc.{env.method}", self.sim.now - started)
        profiler = self.sim.profiler
        if profiler is not None:
            profiler.on_handler_done(self.name, env.method,
                                     self.sim.now - started,
                                     error=error is not None)
        if span is not None:
            self.tracer.finish(span.span_id, error=error)

    def _reply_future(self, env: Envelope, fut: Future) -> None:
        if not self.alive:
            return
        if fut.failed:
            err = fut.error
            if isinstance(err, MalacologyError):
                self._reply_error(env, err)
            else:
                # Programming error: surface it, don't mask as EIO.
                raise err  # type: ignore[misc]
        else:
            self._reply_value(env, fut.result())

    def _reply_value(self, env: Envelope, value: Any) -> None:
        self._post(Envelope(kind=RESPONSE, src=self.name, dst=env.src,
                            method=env.method, msg_id=env.msg_id,
                            payload=value))

    def _reply_error(self, env: Envelope, exc: MalacologyError) -> None:
        self._post(Envelope(kind=RESPONSE, src=self.name, dst=env.src,
                            method=env.method, msg_id=env.msg_id,
                            error=(exc.code, str(exc))))

    # ------------------------------------------------------------------
    # Processes and timers
    # ------------------------------------------------------------------
    def spawn(self, body: Generator, name: str = "") -> Process:
        """Start a process that dies with the daemon on crash."""
        proc = self.sim.spawn(body, name=name or f"{self.name}:proc")
        self._procs.append(proc)
        if len(self._procs) > 64:
            self._procs = [p for p in self._procs if not p.done]
        return proc

    def every(self, interval: float, fn: Callable[[], Any],
              jitter: float = 0.0, name: str = "") -> Process:
        """Run ``fn`` every ``interval`` simulated seconds while alive.

        ``fn`` may return a generator, which is run to completion before
        the next tick is scheduled (ticks never overlap — matching how
        the MDS balancer tick works).
        """
        rng = self.sim.rng(f"ticker:{self.name}:{name}")

        def _loop() -> Generator:
            while True:
                delay = interval
                if jitter > 0.0:
                    delay += rng.uniform(0.0, jitter)
                yield Timeout(delay)
                if not self.alive:
                    return
                if self._tickers_paused:
                    continue
                result = fn()
                if inspect.isgenerator(result):
                    yield self.sim.spawn(result, name=f"{name}:tick")

        return self.spawn(_loop(), name=name or f"{self.name}:ticker")

    def pause_tickers(self) -> None:
        """Freeze periodic work without killing the daemon (gray failure).

        Tickers keep waking on schedule — so their jitter RNG streams
        stay in lockstep with an unpaused run — but skip the tick body:
        no heartbeats, no scrubs, no balancer passes.  In-flight RPC
        handling is unaffected; the daemon looks alive and idle.
        """
        self._tickers_paused = True

    def resume_tickers(self) -> None:
        self._tickers_paused = False

    # ------------------------------------------------------------------
    # Crash / restart
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Hard failure: kill processes, drop in-flight RPC state."""
        if not self.alive:
            return
        self.alive = False
        for proc in self._procs:
            proc.cancel()
        self._procs.clear()
        for fut in self._pending.values():
            fut.fail_if_pending(DaemonDown(f"{self.name} crashed"))
        self._pending.clear()
        self.on_crash()

    def restart(self) -> None:
        if self.alive:
            return
        self.alive = True
        self._tickers_paused = False  # a reboot clears the stall
        self.on_restart()

    def on_crash(self) -> None:
        """Subclass hook: discard volatile state.

        The base implementation clears the perf counter registry —
        telemetry is volatile daemon state and must not survive a
        crash unless something durably stored it.  Subclasses that
        override this must call ``super().on_crash()``.
        """
        self.perf.reset()

    def on_restart(self) -> None:
        """Subclass hook: re-spawn tickers, reload durable state."""

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"{type(self).__name__}({self.name!r}, {state})"
