"""Wire envelope shared by all daemon-to-daemon traffic.

Payloads are plain Python objects (dicts, tuples, dataclasses).  We
deliberately deep-copy payloads at send time (see ``Daemon._post``) so
daemons cannot accidentally share mutable state through the "network" —
a classic simulation bug that would make protocols look more consistent
than they are.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

#: Envelope kinds.
REQUEST = "request"
RESPONSE = "response"
CAST = "cast"


@dataclass
class Envelope:
    """One message on the wire.

    ``error`` is a (code, message) pair on failed responses; ``payload``
    carries the request arguments or the successful response value.
    """

    kind: str
    src: str
    dst: str
    method: str
    msg_id: int
    payload: Any = None
    error: Optional[Tuple[str, str]] = None
    #: RPC trace context ``{"trace": id, "span": id}``, stamped by the
    #: sender when the sending code runs under an active span (see
    #: ``repro.telemetry.trace``); None for untraced traffic.  The
    #: receiving daemon opens a child span under ``span``.
    trace: Optional[Dict[str, int]] = None
    #: Epoch piggybacking: daemons stamp outgoing messages with the map
    #: epochs they know about, which is how peers discover they are
    #: stale and trigger gossip fetches (paper section 4.4).
    epochs: dict = field(default_factory=dict)

    def __repr__(self) -> str:
        return (f"Envelope({self.kind} {self.src}->{self.dst} "
                f"{self.method}#{self.msg_id})")
