"""Object interface classes — the Data I/O interface (paper section 4.2).

Ceph lets developers install *object classes*: named groups of methods
that execute on the OSD holding an object, transactionally composing
native interfaces (bytestream, key-value omap, xattrs).  Malacology
makes these classes dynamic: source code (Lua in the paper, sandboxed
Python here) is embedded in the OSD cluster map, versioned through the
monitor's consensus, gossiped peer-to-peer, and loaded into running
OSDs without a restart.

Layout:

* :mod:`repro.objclass.context` — the transactional method context
  handed to class methods (the "native interfaces").
* :mod:`repro.objclass.loader` — restricted compilation of dynamic
  class source.
* :mod:`repro.objclass.registry` — per-OSD registry of loaded classes,
  both compiled-in (bundled) and dynamic.
* :mod:`repro.objclass.bundled` — classes shipped with the system,
  including ``zlog`` (the CORFU storage interface), ``lock``, ``log``,
  ``numops``, ``version``, and ``kvstore``.
"""

from repro.objclass.context import MethodContext
from repro.objclass.loader import compile_class_source
from repro.objclass.registry import ClassRegistry

__all__ = ["MethodContext", "compile_class_source", "ClassRegistry"]
