"""Bundled ("compiled-in") object classes shipped with every OSD.

These model the object classes that exist in the Ceph tree (Figure 2 /
Table 1): logging, metadata/management, locking, and other categories.
:func:`register_all` installs them into a fresh :class:`ClassRegistry`
at OSD construction, mirroring static C++ class loading; dynamic
classes then layer on top at runtime.
"""

from __future__ import annotations

from repro.objclass.bundled import (
    cls_changelog,
    cls_kvstore,
    cls_lock,
    cls_log,
    cls_numops,
    cls_refcount,
    cls_snapshot,
    cls_version,
    cls_zlog,
)
from repro.objclass.registry import ClassRegistry

#: name -> module; the name is what clients pass to exec ops.
BUNDLED_CLASSES = {
    "zlog": cls_zlog,
    "lock": cls_lock,
    "log": cls_log,
    "numops": cls_numops,
    "version": cls_version,
    "kvstore": cls_kvstore,
    "snapshot": cls_snapshot,
    "refcount": cls_refcount,
    "changelog": cls_changelog,
}


def register_all(registry: ClassRegistry) -> None:
    """Install every bundled class into ``registry``."""
    for name, module in BUNDLED_CLASSES.items():
        registry.register_bundled(name, module.METHODS,
                                  category=module.CATEGORY)
