"""Changelog shard class: fenced append, cursors, guarded trim.

One changelog stream is striped over several shard objects (see
:mod:`repro.changelog.shards`); each shard runs this class
independently, the same division of labor as ``cls_zlog``.  The class
composes the native interfaces transactionally (paper section 4.2):

* ``append`` — epoch-fenced batch append.  The *class* assigns the
  monotone per-shard sequence number and deduplicates by the caller's
  ``(producer, pseq)`` stamp, so a writer that retries after a timeout
  can never create gaps or duplicates in the shard;
* ``list`` — bounded pagination by sequence number (``from_seq``
  exclusive), mirroring the guard on ``cls_log.list_entries``;
* ``seal`` — CORFU-style epoch install: a recovering writer fences
  every stale predecessor in one round;
* ``cursor_set`` / ``cursor_get`` / ``cursor_list`` — durable named
  consumer positions stored in the shard's omap;
* ``trim`` — reclaims acknowledged records, refusing to pass the
  slowest registered cursor.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.errors import (
    InvalidArgument,
    NotPermitted,
    StaleEpoch,
    TryAgain,
)
from repro.objclass.context import MethodContext

CATEGORY = "logging"

#: Pagination guard: one ``list`` reply never carries more than this.
MAX_LIST_ENTRIES = 256
_DEFAULT_LIST = 100

_EPOCH_XATTR = "chlog.epoch"
_LASTSEQ_XATTR = "chlog.last_seq"
_PSEQ_XATTR = "chlog.pseq"

_KEY_WIDTH = 16


def _rec_key(seq: int) -> str:
    return f"rec.{seq:0{_KEY_WIDTH}d}"


def _cursor_key(name: str) -> str:
    return f"cursor.{name}"


def _check_epoch(ctx: MethodContext, args: Dict[str, Any]) -> int:
    """Write ops require the shard sealed at *exactly* their epoch.

    ``epoch < sealed`` is a fenced predecessor (permanent, CORFU
    semantics).  ``epoch > sealed`` means this object was never sealed
    for the writer's epoch — which is how a *split-brain impostor*
    looks: a size-1 PG whose sole OSD flaps gets remapped to a peer
    that starts an empty shard object (sealed 0).  Accepting writes
    there would fork the history and lose records when the map flips
    back, so the class refuses with a retryable error and the writer
    replays the batch until the sealed shard is reachable again.
    """
    epoch = args.get("epoch")
    if epoch is None:
        raise InvalidArgument("changelog write ops require an epoch tag")
    sealed = ctx.xattr_get(_EPOCH_XATTR, 0)
    if epoch < sealed:
        raise StaleEpoch(
            f"epoch {epoch} < sealed epoch {sealed} on {ctx.oid}")
    if epoch > sealed:
        raise TryAgain(
            f"{ctx.oid} not sealed at epoch {epoch} (sealed {sealed}); "
            "unsealed or impostor shard — retry after recovery")
    return epoch


def _clamp_max(args: Dict[str, Any]) -> int:
    raw = args.get("max", _DEFAULT_LIST)
    if not isinstance(raw, int) or raw < 1:
        raise InvalidArgument(f"bad list max {raw!r}")
    return min(raw, MAX_LIST_ENTRIES)


def append(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    """Epoch-fenced, idempotent batch append.

    ``{"epoch": e, "records": [{"producer": p, "pseq": n, ...}, ...]}``.
    Records whose ``(producer, pseq)`` was already applied are skipped,
    so redelivery after an ack was lost is harmless.  Returns
    ``{"appended", "skipped", "last_seq"}``.
    """
    _check_epoch(ctx, args)
    records = args.get("records")
    if not isinstance(records, list) or not records:
        raise InvalidArgument("changelog.append requires records")
    ctx.create(exclusive=False)
    last_seq = ctx.xattr_get(_LASTSEQ_XATTR, -1)
    pseq_map = dict(ctx.xattr_get(_PSEQ_XATTR, {}))
    appended = 0
    skipped = 0
    for rec in records:
        producer = rec.get("producer")
        pseq = rec.get("pseq")
        if not isinstance(producer, str) or not isinstance(pseq, int):
            raise InvalidArgument("record needs producer (str) and "
                                  "pseq (int)")
        if pseq <= pseq_map.get(producer, 0):
            skipped += 1
            continue
        last_seq += 1
        stored = dict(rec)
        stored["seq"] = last_seq
        ctx.omap_set(_rec_key(last_seq), stored)
        pseq_map[producer] = pseq
        appended += 1
    if appended:
        ctx.xattr_set(_LASTSEQ_XATTR, last_seq)
        ctx.xattr_set(_PSEQ_XATTR, pseq_map)
    return {"appended": appended, "skipped": skipped,
            "last_seq": last_seq}


def list_records(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    """Paginated scan: records with seq > ``from_seq``, bounded."""
    from_seq = args.get("from_seq", -1)
    if not isinstance(from_seq, int):
        raise InvalidArgument(f"bad from_seq {from_seq!r}")
    limit = _clamp_max(args)
    start = _rec_key(from_seq) if from_seq >= 0 else ""
    items = ctx.omap_list(start=start, max_items=limit, prefix="rec.")
    entries = [v for _, v in items]
    cursor = entries[-1]["seq"] if entries else from_seq
    return {
        "entries": entries,
        "cursor": cursor,
        "truncated": len(items) == limit,
        "last_seq": ctx.xattr_get(_LASTSEQ_XATTR, -1),
    }


def get_state(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    """Shard summary: epoch, bounds, retained count, cursors."""
    first = ctx.omap_list(max_items=1, prefix="rec.")
    retained = len(ctx.omap_list(prefix="rec."))
    return {
        "epoch": ctx.xattr_get(_EPOCH_XATTR, 0),
        "last_seq": ctx.xattr_get(_LASTSEQ_XATTR, -1),
        "first_seq": first[0][1]["seq"] if first else None,
        "entries": retained,
        "cursors": _cursors(ctx),
    }


def seal(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    """Install a new epoch, fencing every older writer.

    Like ``cls_zlog.seal``: sealing with epoch <= the current one is
    rejected, so concurrent writer recoveries serialize.
    """
    epoch = args.get("epoch")
    if epoch is None:
        raise InvalidArgument("seal requires an epoch")
    sealed = ctx.xattr_get(_EPOCH_XATTR, 0)
    if epoch <= sealed:
        raise StaleEpoch(f"seal epoch {epoch} <= sealed {sealed}")
    ctx.create(exclusive=False)
    ctx.xattr_set(_EPOCH_XATTR, epoch)
    return {"last_seq": ctx.xattr_get(_LASTSEQ_XATTR, -1)}


def cursor_set(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    """Advance a durable named cursor (monotone; regressions ignored)."""
    name = args.get("name")
    seq = args.get("seq")
    if not isinstance(name, str) or not name:
        raise InvalidArgument("cursor_set requires a name")
    if not isinstance(seq, int) or seq < -1:
        raise InvalidArgument(f"bad cursor seq {seq!r}")
    ctx.create(exclusive=False)
    key = _cursor_key(name)
    current = ctx.omap_get(key)["seq"] if ctx.omap_has(key) else -1
    new = max(current, seq)
    ctx.omap_set(key, {"seq": new, "updated": ctx.now})
    return {"seq": new}


def cursor_get(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    name = args.get("name")
    if not isinstance(name, str) or not name:
        raise InvalidArgument("cursor_get requires a name")
    key = _cursor_key(name)
    if not ctx.omap_has(key):
        return {"seq": -1}
    return {"seq": ctx.omap_get(key)["seq"]}


def cursor_list(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    return {"cursors": _cursors(ctx)}


def _cursors(ctx: MethodContext) -> Dict[str, int]:
    return {k[len("cursor."):]: v["seq"]
            for k, v in ctx.omap_list(prefix="cursor.")}


def trim(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    """Reclaim records with seq <= ``to_seq``.

    Fenced like ``append``; refuses to pass the slowest registered
    cursor (and refuses entirely when no consumer registered — trimming
    unconsumed history is what cursors exist to prevent).
    """
    _check_epoch(ctx, args)
    to_seq = args.get("to_seq")
    if not isinstance(to_seq, int):
        raise InvalidArgument(f"bad trim to_seq {to_seq!r}")
    cursors = _cursors(ctx)
    if not cursors:
        raise NotPermitted(f"no cursors registered on {ctx.oid}; "
                           "refusing to trim unconsumed records")
    floor = min(cursors.values())
    if to_seq > floor:
        raise NotPermitted(
            f"trim to {to_seq} would pass slowest cursor at {floor}")
    victims: List[Tuple[str, Any]] = [
        (k, v) for k, v in ctx.omap_list(prefix="rec.")
        if v["seq"] <= to_seq]
    for k, _ in victims:
        ctx.omap_del(k)
    return {"trimmed": len(victims)}


METHODS = {
    "append": append,
    "list": list_records,
    "get_state": get_state,
    "seal": seal,
    "cursor_set": cursor_set,
    "cursor_get": cursor_get,
    "cursor_list": cursor_list,
    "trim": trim,
}
