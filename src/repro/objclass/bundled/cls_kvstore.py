"""Multi-key transactional key-value class over an object's omap.

The "atomically update a matrix in the bytestream and its index in the
key-value database" example from section 4.2 generalizes to this: a
batch of conditional puts/deletes applied all-or-nothing on the OSD.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.errors import InvalidArgument, StaleEpoch
from repro.objclass.context import MethodContext

CATEGORY = "metadata"


def get(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    keys: List[str] = args.get("keys", [])
    out = {}
    for key in keys:
        if ctx.omap_has(key):
            out[key] = ctx.omap_get(key)
    return {"values": out}


def put(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    """Apply a batch with optional preconditions.

    ``expect`` maps key -> required current value (absent key expected
    when the required value is None); any mismatch aborts the whole
    batch with ESTALE — the method context's clone-and-commit protocol
    guarantees nothing partial lands.
    """
    expect: Dict[str, Any] = args.get("expect", {})
    for key, want in expect.items():
        have = ctx.omap_get(key) if ctx.omap_has(key) else None
        if have != want:
            raise StaleEpoch(
                f"kvstore precondition failed on {key!r}: "
                f"have {have!r}, want {want!r}")
    ctx.create(exclusive=False)
    puts: Dict[str, Any] = args.get("set", {})
    dels: List[str] = args.get("delete", [])
    if not puts and not dels:
        raise InvalidArgument("kvstore.put with nothing to do")
    for key, value in puts.items():
        ctx.omap_set(key, value)
    for key in dels:
        ctx.omap_del(key) if ctx.omap_has(key) else None
    return {"applied": len(puts) + len(dels)}


def scan(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    items = ctx.omap_list(start=args.get("start", ""),
                          max_items=args.get("max", 100),
                          prefix=args.get("prefix", ""))
    return {
        "items": items,
        "truncated": len(items) == args.get("max", 100),
    }


METHODS = {"get": get, "put": put, "scan": scan}
