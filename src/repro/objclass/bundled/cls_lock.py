"""Cooperative lock class — grants clients exclusive/shared access.

Mirrors Ceph's ``cls_lock`` (the "Locking" category in Table 1): locks
live in an object xattr, carry an owner cookie and an optional expiry,
and can be broken explicitly after expiry.  Lease expiry uses the
context's simulated clock.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import AlreadyExists, InvalidArgument, NotFound, NotPermitted
from repro.objclass.context import MethodContext

CATEGORY = "locking"

_LOCK_XATTR = "lock.state"

EXCLUSIVE = "exclusive"
SHARED = "shared"


def _state(ctx: MethodContext) -> Dict[str, Any]:
    return ctx.xattr_get(_LOCK_XATTR, {"mode": None, "holders": {}})


def _prune_expired(ctx: MethodContext, state: Dict[str, Any]) -> None:
    holders = state["holders"]
    for owner in [o for o, h in holders.items()
                  if h["expires"] is not None and h["expires"] <= ctx.now]:
        del holders[owner]
    if not holders:
        state["mode"] = None


def lock(ctx: MethodContext, args: Dict[str, Any]) -> None:
    """Acquire; ``owner`` required, ``mode`` exclusive|shared,
    ``duration`` seconds (None = until released)."""
    owner = args.get("owner")
    mode = args.get("mode", EXCLUSIVE)
    duration = args.get("duration")
    if not owner:
        raise InvalidArgument("lock requires an owner")
    if mode not in (EXCLUSIVE, SHARED):
        raise InvalidArgument(f"bad lock mode {mode!r}")
    ctx.create(exclusive=False)
    state = _state(ctx)
    _prune_expired(ctx, state)
    holders = state["holders"]
    if owner in holders:
        pass  # re-acquire refreshes the lease below
    elif state["mode"] == EXCLUSIVE or (holders and mode == EXCLUSIVE):
        raise AlreadyExists(f"{ctx.oid} locked by {sorted(holders)}")
    expires = None if duration is None else ctx.now + duration
    holders[owner] = {"expires": expires}
    state["mode"] = mode
    ctx.xattr_set(_LOCK_XATTR, state)


def unlock(ctx: MethodContext, args: Dict[str, Any]) -> None:
    owner = args.get("owner")
    state = _state(ctx)
    if owner not in state["holders"]:
        raise NotFound(f"{owner!r} does not hold a lock on {ctx.oid}")
    del state["holders"][owner]
    if not state["holders"]:
        state["mode"] = None
    ctx.xattr_set(_LOCK_XATTR, state)


def break_lock(ctx: MethodContext, args: Dict[str, Any]) -> None:
    """Forcibly remove an *expired* holder's lock (admin recovery)."""
    owner = args.get("owner")
    state = _state(ctx)
    holder = state["holders"].get(owner)
    if holder is None:
        raise NotFound(f"{owner!r} holds no lock on {ctx.oid}")
    if holder["expires"] is None or holder["expires"] > ctx.now:
        raise NotPermitted(f"lock of {owner!r} has not expired")
    del state["holders"][owner]
    if not state["holders"]:
        state["mode"] = None
    ctx.xattr_set(_LOCK_XATTR, state)


def info(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    state = _state(ctx)
    _prune_expired(ctx, state)
    return {"mode": state["mode"], "holders": sorted(state["holders"])}


METHODS = {
    "lock": lock,
    "unlock": unlock,
    "break_lock": break_lock,
    "info": info,
}
