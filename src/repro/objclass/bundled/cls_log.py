"""Timestamped entry log class (Table 1's "Logging" category).

Mirrors Ceph's ``cls_log``, used in production for e.g. geographically
distributing replica logs: entries are appended with a timestamp key
and listed/trimmed by range.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import InvalidArgument
from repro.objclass.context import MethodContext

CATEGORY = "logging"

_SEQ_XATTR = "log.seq"

#: Pagination guard: one ``list`` reply never carries more than this,
#: however large a ``max`` the caller asks for.
MAX_ENTRIES = 256
_DEFAULT_LIST = 100


def _entry_key(ts: float, seq: int) -> str:
    return f"entry.{ts:020.6f}.{seq:012d}"


def add(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    """Append one entry: {"payload": ..., "ts": optional}."""
    if "payload" not in args:
        raise InvalidArgument("log.add requires a payload")
    ts = args.get("ts", ctx.now)
    ctx.create(exclusive=False)
    seq = ctx.xattr_get(_SEQ_XATTR, 0)
    ctx.xattr_set(_SEQ_XATTR, seq + 1)
    key = _entry_key(ts, seq)
    ctx.omap_set(key, {"ts": ts, "seq": seq, "payload": args["payload"]})
    return {"seq": seq}


def list_entries(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    """List entries after a cursor (exclusive), bounded pagination.

    The continuation cursor may be passed as ``from_key`` (preferred)
    or the legacy ``start``; ``max`` is clamped to ``MAX_ENTRIES`` so
    an unbounded scan can't balloon a single reply.  Callers resume
    from the returned ``cursor`` while ``truncated`` is set.
    """
    raw_max = args.get("max", _DEFAULT_LIST)
    if not isinstance(raw_max, int) or raw_max < 1:
        raise InvalidArgument(f"bad list max {raw_max!r}")
    limit = min(raw_max, MAX_ENTRIES)
    start = args.get("from_key", args.get("start", ""))
    items = ctx.omap_list(start=start, max_items=limit, prefix="entry.")
    return {
        "entries": [v for _, v in items],
        "cursor": items[-1][0] if items else start,
        "truncated": len(items) == limit,
    }


def trim(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    """Drop entries with key <= ``to_cursor``."""
    to_cursor = args.get("to_cursor")
    if not to_cursor:
        raise InvalidArgument("log.trim requires to_cursor")
    victims = [k for k, _ in ctx.omap_list(prefix="entry.")
               if k <= to_cursor]
    for k in victims:
        ctx.omap_del(k)
    return {"trimmed": len(victims)}


METHODS = {
    "add": add,
    "list": list_entries,
    "trim": trim,
}
