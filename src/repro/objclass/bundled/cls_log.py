"""Timestamped entry log class (Table 1's "Logging" category).

Mirrors Ceph's ``cls_log``, used in production for e.g. geographically
distributing replica logs: entries are appended with a timestamp key
and listed/trimmed by range.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import InvalidArgument
from repro.objclass.context import MethodContext

CATEGORY = "logging"

_SEQ_XATTR = "log.seq"


def _entry_key(ts: float, seq: int) -> str:
    return f"entry.{ts:020.6f}.{seq:012d}"


def add(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    """Append one entry: {"payload": ..., "ts": optional}."""
    if "payload" not in args:
        raise InvalidArgument("log.add requires a payload")
    ts = args.get("ts", ctx.now)
    ctx.create(exclusive=False)
    seq = ctx.xattr_get(_SEQ_XATTR, 0)
    ctx.xattr_set(_SEQ_XATTR, seq + 1)
    key = _entry_key(ts, seq)
    ctx.omap_set(key, {"ts": ts, "seq": seq, "payload": args["payload"]})
    return {"seq": seq}


def list_entries(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    """List entries after cursor ``start`` (exclusive), up to ``max``."""
    items = ctx.omap_list(start=args.get("start", ""),
                          max_items=args.get("max", 100),
                          prefix="entry.")
    return {
        "entries": [v for _, v in items],
        "cursor": items[-1][0] if items else args.get("start", ""),
        "truncated": len(items) == args.get("max", 100),
    }


def trim(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    """Drop entries with key <= ``to_cursor``."""
    to_cursor = args.get("to_cursor")
    if not to_cursor:
        raise InvalidArgument("log.trim requires to_cursor")
    victims = [k for k, _ in ctx.omap_list(prefix="entry.")
               if k <= to_cursor]
    for k in victims:
        ctx.omap_del(k)
    return {"trimmed": len(victims)}


METHODS = {
    "add": add,
    "list": list_entries,
    "trim": trim,
}
