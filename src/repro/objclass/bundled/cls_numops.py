"""Remote numeric operations on omap values (Ceph's ``cls_numops``).

Lets clients atomically add/subtract/multiply numbers held in an
object's omap without a read-modify-write round trip — the classic
"push computation to the data" example of the Data I/O interface.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import InvalidArgument
from repro.objclass.context import MethodContext

CATEGORY = "metadata"


def _get_number(ctx: MethodContext, key: str) -> float:
    if not ctx.omap_has(key):
        return 0
    value = ctx.omap_get(key)
    if not isinstance(value, (int, float)):
        raise InvalidArgument(f"omap key {key!r} is not numeric")
    return value


def _apply(ctx: MethodContext, args: Dict[str, Any], op) -> Dict[str, Any]:
    key = args.get("key")
    delta = args.get("value")
    if not key or not isinstance(delta, (int, float)):
        raise InvalidArgument("numops require key and numeric value")
    ctx.create(exclusive=False)
    result = op(_get_number(ctx, key), delta)
    ctx.omap_set(key, result)
    return {"value": result}


def add(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    return _apply(ctx, args, lambda a, b: a + b)


def sub(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    return _apply(ctx, args, lambda a, b: a - b)


def mul(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    return _apply(ctx, args, lambda a, b: a * b)


def get(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    key = args.get("key")
    if not key:
        raise InvalidArgument("numops.get requires key")
    return {"value": _get_number(ctx, key)}


METHODS = {"add": add, "sub": sub, "mul": mul, "get": get}
