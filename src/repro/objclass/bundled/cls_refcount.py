"""Reference counting class (Ceph's ``cls_refcount`` — Table 1 "Other").

Objects shared by multiple logical owners (e.g. deduplicated chunks)
carry a set of reference tags; the object is removed when the last
reference is dropped.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import InvalidArgument, NotFound
from repro.objclass.context import MethodContext

CATEGORY = "other"

_REFS_XATTR = "refcount.refs"


def get_refs(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    return {"refs": sorted(ctx.xattr_get(_REFS_XATTR, []))}


def take(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    tag = args.get("tag")
    if not tag:
        raise InvalidArgument("refcount.take requires a tag")
    ctx.create(exclusive=False)
    refs = set(ctx.xattr_get(_REFS_XATTR, []))
    refs.add(tag)
    ctx.xattr_set(_REFS_XATTR, sorted(refs))
    return {"count": len(refs)}


def put(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    """Drop a reference; removes the object at zero references."""
    tag = args.get("tag")
    refs = set(ctx.xattr_get(_REFS_XATTR, []))
    if tag not in refs:
        raise NotFound(f"no reference {tag!r} on {ctx.oid}")
    refs.discard(tag)
    if refs:
        ctx.xattr_set(_REFS_XATTR, sorted(refs))
        return {"count": len(refs), "removed": False}
    ctx.remove()
    return {"count": 0, "removed": True}


METHODS = {"get_refs": get_refs, "take": take, "put": put}
