"""Object snapshot class (Table 1's "Snapshots in the block device").

Snapshots capture the object's user-visible state (bytestream, xattrs,
and non-snapshot omap keys) under a name; rollback restores it
atomically — the whole capture/restore runs inside one transactional
method context, so a half-taken snapshot can never be observed.
Snapshots live in reserved ``snap.`` omap keys of the same object.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.errors import AlreadyExists, InvalidArgument, NotFound
from repro.objclass.context import MethodContext

CATEGORY = "metadata"

_PREFIX = "snap."


def _snap_key(name: str) -> str:
    if not name or "." in name:
        raise InvalidArgument(f"bad snapshot name {name!r}")
    return _PREFIX + name


def _capture(ctx: MethodContext) -> Dict[str, Any]:
    omap = {k: v for k, v in ctx.omap_list()
            if not k.startswith(_PREFIX)}
    xattrs = {}
    obj, _ = ctx.outcome()
    if obj is not None:
        xattrs = dict(obj.xattrs)
    return {
        "data": ctx.read() if ctx.exists else b"",
        "omap": omap,
        "xattrs": xattrs,
    }


def create(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    key = _snap_key(args.get("name", ""))
    if ctx.omap_has(key):
        raise AlreadyExists(f"snapshot {args['name']!r} exists")
    ctx.create(exclusive=False)
    ctx.omap_set(key, _capture(ctx))
    return {"snapshots": _names(ctx)}


def rollback(ctx: MethodContext, args: Dict[str, Any]) -> None:
    key = _snap_key(args.get("name", ""))
    if not ctx.omap_has(key):
        raise NotFound(f"no snapshot {args['name']!r}")
    snap = ctx.omap_get(key)
    ctx.write_full(bytes(snap["data"]))
    for k, _ in ctx.omap_list():
        if not k.startswith(_PREFIX):
            ctx.omap_del(k)
    for k, v in snap["omap"].items():
        ctx.omap_set(k, v)
    for k, v in snap["xattrs"].items():
        ctx.xattr_set(k, v)


def remove(ctx: MethodContext, args: Dict[str, Any]) -> None:
    key = _snap_key(args.get("name", ""))
    if not ctx.omap_has(key):
        raise NotFound(f"no snapshot {args['name']!r}")
    ctx.omap_del(key)


def list_snaps(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    return {"snapshots": _names(ctx)}


def _names(ctx: MethodContext) -> List[str]:
    return [k[len(_PREFIX):] for k, _ in ctx.omap_list(prefix=_PREFIX)]


METHODS = {
    "create": create,
    "rollback": rollback,
    "remove": remove,
    "list": list_snaps,
}
