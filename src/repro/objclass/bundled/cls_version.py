"""Object versioning class (Ceph's ``cls_version``).

Maintains an application-visible version in an xattr with
compare-and-fail guards, so optimistic concurrency can be composed
into larger transactions (Table 1's "Metadata" category).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import InvalidArgument, StaleEpoch
from repro.objclass.context import MethodContext

CATEGORY = "metadata"

_VER_XATTR = "user.version"


def read(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    return {"version": ctx.xattr_get(_VER_XATTR, 0)}


def bump(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    ctx.create(exclusive=False)
    version = ctx.xattr_get(_VER_XATTR, 0) + 1
    ctx.xattr_set(_VER_XATTR, version)
    return {"version": version}


def set_version(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    version = args.get("version")
    if not isinstance(version, int) or version < 0:
        raise InvalidArgument(f"bad version {version!r}")
    ctx.create(exclusive=False)
    ctx.xattr_set(_VER_XATTR, version)
    return {"version": version}


def check(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    """Fail with ESTALE unless the stored version equals ``expect``.

    Composed before other ops in a transaction, this aborts the whole
    op list when the caller's view is stale.
    """
    expect = args.get("expect")
    actual = ctx.xattr_get(_VER_XATTR, 0)
    if actual != expect:
        raise StaleEpoch(f"version is {actual}, expected {expect}")
    return {"version": actual}


METHODS = {
    "read": read,
    "bump": bump,
    "set": set_version,
    "check": check,
}
