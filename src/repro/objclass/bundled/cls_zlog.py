"""The CORFU storage interface (paper section 5.2.2).

Storage devices in CORFU expose an intelligent *write-once, random
read* interface over log positions, fenced by epochs:

* every client I/O carries an epoch tag; requests tagged with an epoch
  older than the object's sealed epoch are rejected with ``ESTALE``
  (the client must refresh its view and retry);
* ``seal`` atomically installs a new epoch and returns the maximum log
  position written — the primitive the sequencer-recovery protocol
  uses to recompute its counter;
* ``write`` is write-once: a written or filled position can never be
  overwritten (``EROFS``);
* ``fill`` marks a hole as junk so readers do not wait on it; it never
  clobbers real data;
* ``trim`` marks a position as garbage-collected.

One log is striped over many objects; each object runs this class
independently (see :mod:`repro.zlog.striping`).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import (
    InvalidArgument,
    NotFound,
    ReadOnly,
    StaleEpoch,
)
from repro.objclass.context import MethodContext

CATEGORY = "logging"

#: Omap key layout: fixed-width so omap order == position order.
_KEY_WIDTH = 20

#: Position states.
WRITTEN = "written"
FILLED = "filled"
TRIMMED = "trimmed"
UNWRITTEN = "unwritten"

_EPOCH_XATTR = "zlog.epoch"
_MAXPOS_XATTR = "zlog.max_pos"


def _key(pos: int) -> str:
    return f"pos.{pos:0{_KEY_WIDTH}d}"


def _check_epoch(ctx: MethodContext, args: Dict[str, Any]) -> int:
    epoch = args.get("epoch")
    if epoch is None:
        raise InvalidArgument("zlog ops require an epoch tag")
    sealed = ctx.xattr_get(_EPOCH_XATTR, 0)
    if epoch < sealed:
        raise StaleEpoch(
            f"epoch {epoch} < sealed epoch {sealed} on {ctx.oid}")
    return epoch


def _pos_of(args: Dict[str, Any]) -> int:
    pos = args.get("pos")
    if not isinstance(pos, int) or pos < 0:
        raise InvalidArgument(f"bad log position {pos!r}")
    return pos


def seal(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    """Install a new epoch; return the max written position.

    Sealing with an epoch <= the current sealed epoch is rejected, so
    concurrent recoveries serialize: only the recovery holding the
    highest epoch proceeds.
    """
    epoch = args.get("epoch")
    if epoch is None:
        raise InvalidArgument("seal requires an epoch")
    sealed = ctx.xattr_get(_EPOCH_XATTR, 0)
    if epoch <= sealed:
        raise StaleEpoch(f"seal epoch {epoch} <= sealed {sealed}")
    ctx.create(exclusive=False)
    ctx.xattr_set(_EPOCH_XATTR, epoch)
    return {"max_pos": ctx.xattr_get(_MAXPOS_XATTR, -1)}


def write(ctx: MethodContext, args: Dict[str, Any]) -> None:
    """Write-once append of ``data`` at ``pos``."""
    _check_epoch(ctx, args)
    pos = _pos_of(args)
    key = _key(pos)
    if ctx.omap_has(key):
        state = ctx.omap_get(key)["state"]
        raise ReadOnly(f"position {pos} already {state} on {ctx.oid}")
    ctx.omap_set(key, {"state": WRITTEN, "data": args.get("data")})
    if pos > ctx.xattr_get(_MAXPOS_XATTR, -1):
        ctx.xattr_set(_MAXPOS_XATTR, pos)


def read(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    """Random read of one position.

    Unwritten positions return ENOENT (the reader may retry or fill);
    filled and trimmed positions report their state without data.
    """
    _check_epoch(ctx, args)
    pos = _pos_of(args)
    key = _key(pos)
    if not ctx.omap_has(key):
        raise NotFound(f"position {pos} unwritten on {ctx.oid}")
    entry = ctx.omap_get(key)
    if entry["state"] == WRITTEN:
        return {"state": WRITTEN, "data": entry["data"]}
    return {"state": entry["state"]}


def fill(ctx: MethodContext, args: Dict[str, Any]) -> None:
    """Mark a hole as junk; idempotent; never overwrites data."""
    _check_epoch(ctx, args)
    pos = _pos_of(args)
    key = _key(pos)
    if ctx.omap_has(key):
        state = ctx.omap_get(key)["state"]
        if state == FILLED:
            return  # idempotent
        raise ReadOnly(f"cannot fill {state} position {pos}")
    ctx.omap_set(key, {"state": FILLED})
    if pos > ctx.xattr_get(_MAXPOS_XATTR, -1):
        ctx.xattr_set(_MAXPOS_XATTR, pos)


def trim(ctx: MethodContext, args: Dict[str, Any]) -> None:
    """Mark a position as reclaimable; its data is dropped."""
    _check_epoch(ctx, args)
    pos = _pos_of(args)
    ctx.omap_set(_key(pos), {"state": TRIMMED})


def max_position(ctx: MethodContext, args: Dict[str, Any]) -> Dict[str, Any]:
    """Max written/filled position on this object (no seal required)."""
    _check_epoch(ctx, args)
    return {"max_pos": ctx.xattr_get(_MAXPOS_XATTR, -1)}


METHODS = {
    "seal": seal,
    "write": write,
    "read": read,
    "fill": fill,
    "trim": trim,
    "max_position": max_position,
}
