"""The method context: native interfaces exposed to object classes.

A class method receives a :class:`MethodContext` bound to the object it
was invoked on.  All mutations go through the context, which operates on
a private clone of the object; the OSD commits the clone back only if
the whole operation (the full op list, including any class method)
succeeds — giving the transactional all-or-nothing semantics the paper
highlights ("native interfaces may be transactionally composed along
with application-specific logic", section 4.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.errors import AlreadyExists, NotFound

if TYPE_CHECKING:  # import cycle: rados.ops imports this module
    from repro.rados.objects import StoredObject


def _new_object(oid: str) -> "StoredObject":
    from repro.rados.objects import StoredObject

    return StoredObject(oid)


class MethodContext:
    """Sandbox-facing handle on one object during one operation.

    The context also carries request metadata classes need:
    ``epoch`` — the client-supplied epoch tag (CORFU-style fencing);
    ``now`` — simulated time (read-only; classes must stay
    deterministic given the same object state and args).
    """

    def __init__(self, obj: Optional["StoredObject"], oid: str,
                 epoch: Optional[int] = None, now: float = 0.0):
        #: None means the object does not exist (yet).  The context
        #: always works on a private clone: the caller's object is
        #: untouched until it commits the outcome itself.
        self._obj = obj.clone() if obj is not None else None
        self.oid = oid
        self.epoch = epoch
        self.now = now
        self._removed = False

    # ------------------------------------------------------------------
    # Existence
    # ------------------------------------------------------------------
    @property
    def exists(self) -> bool:
        return self._obj is not None and not self._removed

    def create(self, exclusive: bool = True) -> None:
        if self.exists:
            if exclusive:
                raise AlreadyExists(f"object {self.oid!r} already exists")
            return
        self._obj = _new_object(self.oid)
        self._removed = False

    def remove(self) -> None:
        self._require()
        self._removed = True

    def _require(self) -> "StoredObject":
        if not self.exists:
            raise NotFound(f"object {self.oid!r} does not exist")
        assert self._obj is not None
        return self._obj

    def _ensure(self) -> "StoredObject":
        """Writes implicitly create the object, as RADOS writes do."""
        if not self.exists:
            self._obj = _new_object(self.oid)
            self._removed = False
        assert self._obj is not None
        return self._obj

    # ------------------------------------------------------------------
    # Bytestream
    # ------------------------------------------------------------------
    def read(self, offset: int = 0, length: Optional[int] = None) -> bytes:
        return self._require().read(offset, length)

    def write(self, offset: int, data: bytes) -> None:
        self._ensure().write(offset, data)

    def write_full(self, data: bytes) -> None:
        obj = self._ensure()
        obj.truncate(0)
        obj.write(0, data)

    def append(self, data: bytes) -> int:
        return self._ensure().append(data)

    def truncate(self, size: int) -> None:
        self._ensure().truncate(size)

    def stat(self) -> Dict[str, int]:
        obj = self._require()
        return {"size": obj.size, "version": obj.version,
                "omap_keys": len(obj.omap)}

    # ------------------------------------------------------------------
    # Omap
    # ------------------------------------------------------------------
    def omap_get(self, key: str) -> Any:
        obj = self._require()
        if key not in obj.omap:
            raise NotFound(f"omap key {key!r} not in {self.oid!r}")
        return obj.omap_get(key)

    def omap_has(self, key: str) -> bool:
        return self.exists and key in self._require().omap

    def omap_set(self, key: str, value: Any) -> None:
        self._ensure().omap_set(key, value)

    def omap_del(self, key: str) -> None:
        self._require().omap_del(key)

    def omap_list(self, start: str = "", max_items: Optional[int] = None,
                  prefix: str = "") -> List[Tuple[str, Any]]:
        if not self.exists:
            return []
        return self._require().omap_list(start, max_items, prefix)

    # ------------------------------------------------------------------
    # Xattrs
    # ------------------------------------------------------------------
    def xattr_get(self, key: str, default: Any = None) -> Any:
        if not self.exists or key not in self._require().xattrs:
            return default
        return self._require().xattr_get(key)

    def xattr_set(self, key: str, value: Any) -> None:
        self._ensure().xattr_set(key, value)

    # ------------------------------------------------------------------
    # Commit protocol (OSD-side)
    # ------------------------------------------------------------------
    def outcome(self) -> Tuple[Optional["StoredObject"], bool]:
        """(object state to commit, removed?) — consumed by the OSD."""
        if self._removed:
            return None, True
        return self._obj, False
