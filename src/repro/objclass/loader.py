"""Restricted compilation of dynamic object-class source.

The paper embeds a Lua VM in the OSD; the reproduction embeds a
restricted Python namespace.  What matters for programmability is
preserved: class source is a *string* that travels through the monitor
map, compiles inside a running daemon without restart, runs against the
sandboxed method context only, and compilation or runtime faults are
contained (surfacing as :class:`PolicyError`, never crashing the OSD —
"certain types of coding mistakes can be handled gracefully",
section 4.2).

Source convention::

    def my_method(ctx, args):
        ctx.omap_set("counter", ctx.xattr_get("base", 0) + args["n"])
        return {"ok": True}

    METHODS = {"my_method": my_method}

Every callable in the module-level ``METHODS`` dict becomes an RPC-able
class method.  The namespace offers a curated builtin set; imports,
file, and attribute escapes are unavailable.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro import errors
from repro.errors import PolicyError, sandbox_guard

#: Builtins available to dynamic class / policy code.  Deliberately has
#: no ``__import__``, ``open``, ``eval``, ``exec``, ``getattr``, or
#: ``type`` — the sandbox is for containing mistakes, matching the
#: paper's threat model ("does not prevent deployment of malicious
#: code" but handles coding errors gracefully).
SAFE_BUILTINS: Dict[str, Any] = {
    "abs": abs, "all": all, "any": any, "bool": bool, "bytes": bytes,
    "dict": dict, "divmod": divmod, "enumerate": enumerate,
    "filter": filter, "float": float, "format": format,
    "frozenset": frozenset, "int": int, "isinstance": isinstance,
    "len": len, "list": list, "map": map, "max": max, "min": min,
    "next": next, "pow": pow, "range": range, "repr": repr,
    "reversed": reversed, "round": round, "set": set, "sorted": sorted,
    "str": str, "sum": sum, "tuple": tuple, "zip": zip,
    # Exceptions class code may raise/catch.
    "Exception": Exception, "ValueError": ValueError,
    "KeyError": KeyError, "IndexError": IndexError,
    "TypeError": TypeError, "StopIteration": StopIteration,
    "True": True, "False": False, "None": None,
}

#: Storage-stack errors the sandbox may raise to signal outcomes; these
#: cross the wire with their codes (ENOENT, EEXIST, ESTALE, ...).
SANDBOX_ERRORS = {
    name: getattr(errors, name)
    for name in ("MalacologyError", "NotFound", "AlreadyExists",
                 "NotPermitted", "InvalidArgument", "StaleEpoch",
                 "ReadOnly")
}


def compile_class_source(name: str,
                         source: str) -> Dict[str, Callable[..., Any]]:
    """Compile class source, returning its method table.

    Raises :class:`PolicyError` on syntax errors, missing/invalid
    ``METHODS``, or any exception escaping module execution.
    """
    namespace: Dict[str, Any] = {"__builtins__": dict(SAFE_BUILTINS)}
    namespace.update(SANDBOX_ERRORS)
    try:
        code = compile(source, filename=f"<objclass:{name}>", mode="exec")
    except SyntaxError as exc:
        raise PolicyError(f"class {name!r} failed to compile: {exc}") from exc
    with sandbox_guard(f"class {name!r} failed during load"):
        exec(code, namespace)  # noqa: S102 - sandboxed namespace
    methods = namespace.get("METHODS")
    if not isinstance(methods, dict) or not methods:
        raise PolicyError(
            f"class {name!r} must define a non-empty METHODS dict")
    for mname, fn in methods.items():
        if not callable(fn):
            raise PolicyError(
                f"class {name!r} method {mname!r} is not callable")
    return dict(methods)


def compile_policy_source(name: str, source: str,
                          extra_env: Dict[str, Any]) -> Dict[str, Any]:
    """Compile arbitrary sandboxed policy code (Mantle balancers).

    Unlike object classes, a policy exposes whatever names the caller's
    convention requires; the caller inspects the returned namespace.
    ``extra_env`` injects the Mantle API (``mds`` table, ``whoami``,
    ``targets``, ...) before execution.
    """
    namespace: Dict[str, Any] = {"__builtins__": dict(SAFE_BUILTINS)}
    namespace.update(SANDBOX_ERRORS)
    namespace.update(extra_env)
    try:
        code = compile(source, filename=f"<policy:{name}>", mode="exec")
    except SyntaxError as exc:
        raise PolicyError(
            f"policy {name!r} failed to compile: {exc}") from exc
    with sandbox_guard(f"policy {name!r} failed to run"):
        exec(code, namespace)  # noqa: S102 - sandboxed namespace
    return namespace
