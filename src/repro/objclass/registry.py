"""Per-OSD registry of object interface classes.

Bundled classes model Ceph's compiled-in C++ classes; dynamic classes
arrive as source embedded in the OSD map (paper section 6.1.2) and can
be installed, upgraded, and removed at runtime — the core Data I/O
programmability claim.  Versions are compared so replayed or reordered
map deliveries never downgrade a class.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import NotFound, PolicyError, sandbox_guard
from repro.objclass.context import MethodContext
from repro.objclass.loader import compile_class_source


class ClassRegistry:
    """Loaded classes for one daemon."""

    def __init__(self) -> None:
        self._classes: Dict[str, Dict[str, Any]] = {}

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def register_bundled(self, name: str,
                         methods: Dict[str, Callable[..., Any]],
                         category: str = "other") -> None:
        """Install a compiled-in class (available from daemon start)."""
        if name in self._classes:
            raise ValueError(f"class {name!r} already registered")
        self._classes[name] = {
            "version": 0,
            "methods": dict(methods),
            "category": category,
            "dynamic": False,
        }

    def install_dynamic(self, name: str, version: int, source: str,
                        category: str = "other") -> bool:
        """Compile and (re)install a dynamic class.

        Returns True if the class was (re)loaded, False if the existing
        version is already >= ``version`` (stale delivery).  Compilation
        errors raise :class:`PolicyError` and leave any previous version
        installed — a broken update never takes down a working one.
        """
        existing = self._classes.get(name)
        if existing is not None:
            if not existing["dynamic"]:
                raise PolicyError(
                    f"cannot shadow bundled class {name!r} dynamically")
            if existing["version"] >= version:
                return False
        methods = compile_class_source(name, source)
        self._classes[name] = {
            "version": version,
            "methods": methods,
            "category": category,
            "dynamic": True,
        }
        return True

    def remove_dynamic(self, name: str) -> None:
        entry = self._classes.get(name)
        if entry and entry["dynamic"]:
            del self._classes[name]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def has(self, name: str) -> bool:
        return name in self._classes

    def version_of(self, name: str) -> Optional[int]:
        entry = self._classes.get(name)
        return entry["version"] if entry else None

    def catalog(self) -> List[Tuple[str, str, int]]:
        """(class name, category, method count) rows — Table 1 material."""
        return sorted(
            (name, entry["category"], len(entry["methods"]))
            for name, entry in self._classes.items()
        )

    def methods_of(self, name: str) -> List[str]:
        entry = self._classes.get(name)
        if entry is None:
            raise NotFound(f"no object class {name!r}")
        return sorted(entry["methods"])

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------
    def call(self, name: str, method: str, ctx: MethodContext,
             args: Any) -> Any:
        entry = self._classes.get(name)
        if entry is None:
            raise NotFound(f"no object class {name!r}")
        fn = entry["methods"].get(method)
        if fn is None:
            raise NotFound(f"class {name!r} has no method {method!r}")
        # A bug inside dynamic code must not crash the OSD; the guard
        # passes intended MalacologyError signalling through and turns
        # everything else into a typed PolicyError.
        with sandbox_guard(f"class {name}.{method} raised"):
            return fn(ctx, args)
