"""Kernel performance observability (``repro.profiling``).

Three planes, all built from the system's own interfaces (the
Malacology discipline: instrumentation is a service grown from
existing machinery, not a fork of it):

* **simulation plane** — :class:`SimProfiler`: deterministic
  per-daemon/per-handler event counts, simulated time consumed, queue
  and ready-batch high-water marks.  Schedule-identity pinned: a
  profiled run replays byte-identical to an unprofiled one.
* **host plane** — :class:`WallClockProfiler`: real nanoseconds and
  allocation-block deltas attributed across the heapq + generator
  trampoline (the hot path ROADMAP item 1 rewrites), with top-N
  hotspot reports and flamegraph-ready collapsed stacks.  The one
  sanctioned MAL001-waived wall-clock consumer outside the kernel.
* **export plane** — :func:`chrome_trace` / :func:`write_chrome_trace`:
  the causal span trees plus the kernel tape as a Perfetto-loadable
  ``trace.json``.

Enable with ``MalacologyCluster.build(profile=True)`` or
``MALACOLOGY_PROFILE=1`` (mirroring ``sanitize`` /
``MALACOLOGY_SANITIZE``); query anywhere via the ``profile.status`` /
``profile.dump`` admin commands; Prometheus kernel gauges ride the
mgr's ``metrics.export``.
"""

from repro.profiling.admin import (
    PROFILE_COMMANDS,
    install_profile_commands,
    profile_dump,
    profile_status,
)
from repro.profiling.hostclock import (
    host_alloc_blocks,
    host_perf_ns,
    host_process_ns,
    peak_rss_bytes,
)
from repro.profiling.perfetto import chrome_trace, write_chrome_trace
from repro.profiling.simprofiler import HandlerStat, SimProfiler
from repro.profiling.wallprofiler import WallClockProfiler, WallStat

__all__ = [
    "HandlerStat",
    "PROFILE_COMMANDS",
    "SimProfiler",
    "WallClockProfiler",
    "WallStat",
    "chrome_trace",
    "host_alloc_blocks",
    "host_perf_ns",
    "host_process_ns",
    "install_profile_commands",
    "install_profiler",
    "peak_rss_bytes",
    "profile_dump",
    "profile_status",
    "uninstall_profiler",
    "write_chrome_trace",
]


def install_profiler(sim, wall: bool = True) -> SimProfiler:
    """Attach the profiler planes to a simulator (idempotent).

    The simulation plane always installs; ``wall=False`` skips the
    host plane for runs that only want deterministic counts.  Returns
    the :class:`SimProfiler` (reused if one is already attached).
    """
    profiler = getattr(sim, "profiler", None)
    if profiler is None:
        profiler = SimProfiler(sim)
        sim.profiler = profiler
    if wall and getattr(sim, "wall_profiler", None) is None:
        sim.wall_profiler = WallClockProfiler(sim)
    return profiler


def uninstall_profiler(sim) -> None:
    """Detach both planes (the ``profile=False`` override)."""
    sim.profiler = None
    sim.wall_profiler = None
