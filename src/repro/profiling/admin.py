"""The ``profile.*`` admin-socket surface.

Mirrors the telemetry commands: every daemon answers ``profile.status``
and ``profile.dump`` both out-of-band (``daemon.admin_command``) and
in-band as RPC handlers.  The commands are registered unconditionally —
so a profiled and an unprofiled cluster expose identical handler
tables — and simply report ``enabled: false`` when no profiler is
installed on the simulator.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

#: Commands every daemon answers.
PROFILE_COMMANDS = ("profile.status", "profile.dump")


def install_profile_commands(daemon: Any) -> None:
    """Register the profiling commands on one daemon."""
    daemon.register_admin_command(
        "profile.status", lambda args: profile_status(daemon))
    daemon.register_admin_command(
        "profile.dump", lambda args: profile_dump(daemon, args))


def profile_status(daemon: Any) -> Dict[str, Any]:
    """Kernel-plane summary plus this daemon's handler totals."""
    prof = getattr(daemon.sim, "profiler", None)
    wall = getattr(daemon.sim, "wall_profiler", None)
    out: Dict[str, Any] = {
        "daemon": daemon.name,
        "enabled": prof is not None,
        "wall_enabled": wall is not None,
    }
    if prof is not None:
        out["kernel"] = prof.status()
        mine = prof.daemon_totals(daemon.name)
        out["handler_events"] = mine["events"]
        out["handler_sim_time"] = mine["sim_time"]
    return out


def profile_dump(daemon: Any,
                 args: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Full profile dump.

    Default scope is this daemon's handler stats plus the kernel
    plane; ``{"scope": "cluster"}`` widens to every daemon's handler
    stats and the wall-clock plane (hotspots, attribution stats);
    ``{"collapsed": true}`` additionally inlines the flamegraph-ready
    collapsed-stack text.
    """
    args = args or {}
    prof = getattr(daemon.sim, "profiler", None)
    wall = getattr(daemon.sim, "wall_profiler", None)
    out: Dict[str, Any] = {
        "daemon": daemon.name,
        "enabled": prof is not None,
        "wall_enabled": wall is not None,
    }
    if prof is None:
        return out
    cluster_scope = args.get("scope") == "cluster"
    out["kernel"] = prof.status()
    out["handler_stats"] = prof.handler_stats(
        None if cluster_scope else daemon.name)
    if cluster_scope:
        out["top_sim_time"] = prof.top_handlers(10, by="sim_time")
        out["queue_samples"] = [list(s) for s in prof.queue_samples]
    if wall is not None and cluster_scope:
        out["wall"] = wall.dump()
        if args.get("collapsed"):
            out["collapsed_stacks"] = wall.collapsed_stacks()
    return out
