"""The sanctioned host-clock boundary for the profiling subsystem.

Everything outside the simulation kernel is forbidden from reading the
host wall clock (lint rule MAL001): seeded replays must not depend on
how fast the host happens to run.  Profiling is the one deliberate
exception — attributing *real* time and allocations to the kernel's
hot path is its entire point — so every wall-clock read the profiler
makes funnels through this module, each carrying an explicit MAL001
waiver.  A negative test in ``tests/analysis`` pins that these waivers
are the only wall-clock uses outside ``sim/kernel.py``.

Nothing here ever feeds back into the simulation: readings are
recorded, reported, and compared, but no schedule decision consults
them — which is why a profiled run stays byte-identical in schedule to
an unprofiled one.
"""

from __future__ import annotations

import resource
import sys
import time


def host_perf_ns() -> int:
    """Monotonic host time in nanoseconds (profiler readings only)."""
    return time.perf_counter_ns()  # mal: disable=MAL001 -- sanctioned profiler wall-clock boundary; readings never feed back into the schedule


def host_process_ns() -> int:
    """CPU time of this process in nanoseconds (profiler readings only)."""
    return time.process_time_ns()  # mal: disable=MAL001 -- sanctioned profiler CPU-clock boundary; readings never feed back into the schedule


def host_alloc_blocks() -> int:
    """Currently allocated interpreter memory blocks.

    ``sys.getallocatedblocks`` is a cheap counter read (no tracemalloc
    overhead), good enough to attribute allocation churn per handler:
    the *delta* across a dispatch approximates objects the dispatch
    left alive plus transient garbage not yet collected.
    """
    return sys.getallocatedblocks()


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalize
    to bytes so ``BENCH_kernel.json`` is comparable across hosts.
    """
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(rss)
    return int(rss) * 1024
