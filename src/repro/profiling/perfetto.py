"""Chrome trace-event (Perfetto) export of causal spans + kernel tape.

Converts the cluster's existing observability state — the causal span
trees in :class:`repro.telemetry.trace.TraceCollector` plus the
deterministic kernel samples from :class:`SimProfiler` — into the
Chrome trace-event JSON format, loadable in https://ui.perfetto.dev
(or ``chrome://tracing``).  Mapping:

* each **daemon** becomes a process (``pid``, named via ``process_name``
  metadata events); the synthetic ``kernel`` process is pid 0;
* each **span** becomes a complete (``ph: "X"``) event on the daemon's
  process, with the trace id as the ``tid`` track so one RPC tree
  reads as one lane per daemon;
* the profiler's **queue-depth tape** becomes a counter (``ph: "C"``)
  track under the kernel process.

Simulated seconds map to trace microseconds directly (the format's
``ts`` unit), so a 30 s simulated run renders as 30 s in Perfetto.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

#: pid reserved for the synthetic kernel process.
KERNEL_PID = 0


def _sec_to_us(t: float) -> float:
    return t * 1e6


def chrome_trace(sim: Any) -> Dict[str, Any]:
    """Build the trace-event document for one simulator's run."""
    events: List[Dict[str, Any]] = []
    pids: Dict[str, int] = {}

    def pid_of(daemon: str) -> int:
        pid = pids.get(daemon)
        if pid is None:
            pid = pids[daemon] = len(pids) + 1  # 0 is the kernel
        return pid

    collector = getattr(sim, "trace_collector", None)
    open_spans = 0
    if collector is not None:
        for trace_id in collector.trace_ids():
            for span in collector.spans(trace_id):
                if span.end is None:
                    open_spans += 1
                    continue
                args: Dict[str, Any] = {"span_id": span.span_id,
                                        "trace_id": span.trace_id}
                if span.parent_id is not None:
                    args["parent_id"] = span.parent_id
                if span.src:
                    args["src"] = span.src
                if span.error:
                    args["error"] = span.error
                events.append({
                    "name": span.name,
                    "cat": span.kind or "rpc",
                    "ph": "X",
                    "ts": _sec_to_us(span.start),
                    "dur": _sec_to_us(span.end - span.start),
                    "pid": pid_of(span.daemon),
                    "tid": span.trace_id,
                    "args": args,
                })

    profiler = getattr(sim, "profiler", None)
    if profiler is not None:
        for when, depth in profiler.queue_samples:
            events.append({
                "name": "kernel.queue_depth",
                "ph": "C",
                "ts": _sec_to_us(when),
                "pid": KERNEL_PID,
                "args": {"depth": depth},
            })

    meta: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": KERNEL_PID,
        "args": {"name": "kernel"},
    }]
    for daemon in sorted(pids):
        meta.append({"name": "process_name", "ph": "M",
                     "pid": pids[daemon], "args": {"name": daemon}})

    other: Dict[str, Any] = {"sim_time": sim.now,
                             "open_spans_skipped": open_spans}
    if profiler is not None:
        other["kernel"] = profiler.status()
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(sim: Any, path: str,
                       doc: Optional[Dict[str, Any]] = None) -> str:
    """Serialize :func:`chrome_trace` (or a prebuilt doc) to ``path``."""
    if doc is None:
        doc = chrome_trace(sim)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path
