"""Deterministic simulation-plane profiler.

Counts what the kernel and the daemons *do* in simulated time: events
dispatched, queue-depth and ready-batch high-water marks, and
per-daemon/per-handler dispatch counts with the simulated time each
handler consumed.  Every hook only reads kernel state and bumps plain
Python integers — no RNG draws, no scheduling, no messages, no wall
clock — so a profiled run's event schedule is byte-identical to an
unprofiled one (the same contract the protocol sanitizers honor,
pinned by an integration test).

Off by default: ``Simulator.profiler`` is ``None`` and the kernel's
dispatch loop takes a single-``is``-check fast path.  Enable per
cluster with ``MalacologyCluster.build(profile=True)`` or globally
with ``MALACOLOGY_PROFILE=1``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple


class HandlerStat:
    """Dispatch count and simulated time for one (daemon, method)."""

    __slots__ = ("count", "sim_time", "errors")

    def __init__(self) -> None:
        self.count = 0
        self.sim_time = 0.0
        self.errors = 0

    def to_dict(self) -> Dict[str, Any]:
        return {"count": self.count, "sim_time": self.sim_time,
                "errors": self.errors}


class SimProfiler:
    """Kernel- and handler-plane counters on the simulated clock.

    Attached at ``sim.profiler``; the kernel calls :meth:`on_event`
    per dispatched event and daemons call :meth:`on_handler` /
    :meth:`on_handler_done` around RPC handler execution.
    """

    #: Record a (time, queue depth) sample every this many events; the
    #: tape feeds the Perfetto counter track and stays small even for
    #: multi-million-event runs.
    SAMPLE_EVERY = 256

    def __init__(self, sim: Any):
        self.sim = sim
        # Kernel plane.
        self.events_dispatched = 0
        self.events_cancelled = 0
        self.queue_hwm = 0
        self.ready_hwm = 0            # longest same-timestamp dispatch run
        self._ready_run = 0
        self._last_when: Optional[float] = None
        #: (sim time, queue depth) tape, sampled every SAMPLE_EVERY
        #: events — deterministic because event counts are.
        self.queue_samples: List[Tuple[float, int]] = []
        # Handler plane.
        self._handlers: Dict[Tuple[str, str], HandlerStat] = {}

    # ------------------------------------------------------------------
    # Kernel hooks (hot path: keep these tiny)
    # ------------------------------------------------------------------
    def on_event(self, when: float, depth: int) -> None:
        self.events_dispatched += 1
        if depth > self.queue_hwm:
            self.queue_hwm = depth
        if when == self._last_when:
            self._ready_run += 1
            if self._ready_run > self.ready_hwm:
                self.ready_hwm = self._ready_run
        else:
            self._last_when = when
            self._ready_run = 1
            if self.ready_hwm == 0:
                self.ready_hwm = 1
        if self.events_dispatched % self.SAMPLE_EVERY == 0:
            self.queue_samples.append((when, depth))

    def on_cancelled(self) -> None:
        self.events_cancelled += 1

    # ------------------------------------------------------------------
    # Daemon handler hooks
    # ------------------------------------------------------------------
    def on_handler(self, daemon: str, method: str) -> None:
        stat = self._handlers.get((daemon, method))
        if stat is None:
            stat = self._handlers[(daemon, method)] = HandlerStat()
        stat.count += 1

    def on_handler_done(self, daemon: str, method: str,
                        sim_elapsed: float, error: bool = False) -> None:
        stat = self._handlers.get((daemon, method))
        if stat is None:
            stat = self._handlers[(daemon, method)] = HandlerStat()
        stat.sim_time += sim_elapsed
        if error:
            stat.errors += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def event_rate_sim(self) -> float:
        """Events dispatched per simulated second (0 before time moves)."""
        now = self.sim.now
        return self.events_dispatched / now if now > 0 else 0.0

    def handler_stats(self, daemon: Optional[str] = None
                      ) -> Dict[str, Dict[str, Any]]:
        """``"daemon:method" -> stats`` (optionally one daemon's)."""
        out: Dict[str, Dict[str, Any]] = {}
        for (d, method), stat in sorted(self._handlers.items()):
            if daemon is not None and d != daemon:
                continue
            out[f"{d}:{method}"] = stat.to_dict()
        return out

    def daemon_totals(self, daemon: str) -> Dict[str, float]:
        """Aggregate handler events / simulated time for one daemon
        (feeds the per-daemon ``profile.*`` telemetry gauges)."""
        events = 0
        sim_time = 0.0
        for (d, _), stat in self._handlers.items():
            if d == daemon:
                events += stat.count
                sim_time += stat.sim_time
        return {"events": float(events), "sim_time": sim_time}

    def top_handlers(self, n: int = 10, by: str = "sim_time"
                     ) -> List[Dict[str, Any]]:
        """The n busiest handlers, by ``sim_time`` or ``count``."""
        if by not in ("sim_time", "count"):
            raise ValueError(f"unknown sort key {by!r}")
        ranked = sorted(self._handlers.items(),
                        key=lambda kv: (-getattr(kv[1], by), kv[0]))
        return [{"daemon": d, "method": m, **stat.to_dict()}
                for (d, m), stat in ranked[:n]]

    def status(self) -> Dict[str, Any]:
        """One-screen kernel-plane summary (``profile.status``)."""
        return {
            "time": self.sim.now,
            "events_dispatched": self.events_dispatched,
            "events_cancelled": self.events_cancelled,
            "event_rate_sim": self.event_rate_sim(),
            "queue_depth": len(self.sim._queue),
            "queue_hwm": self.queue_hwm,
            "ready_hwm": self.ready_hwm,
            "handlers": len(self._handlers),
        }

    def dump(self) -> Dict[str, Any]:
        """Full simulation-plane dump (``profile.dump``)."""
        return {
            **self.status(),
            "handler_stats": self.handler_stats(),
            "top_sim_time": self.top_handlers(10, by="sim_time"),
            "queue_samples": [list(s) for s in self.queue_samples],
        }

    def prometheus_dump(self) -> Dict[str, Any]:
        """A telemetry-dump-shaped view for the synthetic ``kernel``
        target the mgr splices into its Prometheus export."""
        return {
            "counters": {
                "kernel.events": float(self.events_dispatched),
                "kernel.events_cancelled": float(self.events_cancelled),
            },
            "gauges": {
                "kernel.event_rate_sim": self.event_rate_sim(),
                "kernel.queue_depth": float(len(self.sim._queue)),
                "kernel.queue_hwm": float(self.queue_hwm),
                "kernel.ready_hwm": float(self.ready_hwm),
            },
        }

    def reset(self) -> None:
        self.events_dispatched = 0
        self.events_cancelled = 0
        self.queue_hwm = 0
        self.ready_hwm = 0
        self._ready_run = 0
        self._last_when = None
        self.queue_samples = []
        self._handlers = {}
