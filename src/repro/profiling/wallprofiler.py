"""Host wall-clock and allocation profiler for the kernel hot path.

Where :mod:`repro.profiling.simprofiler` answers "what did the cluster
do in simulated time", this plane answers "where did the *host's* time
and memory actually go" — the question ROADMAP item 1's kernel rewrite
must be judged by.  It attributes real nanoseconds and interpreter
allocation-block deltas to:

* every **kernel dispatch** (the heapq pop + callback invocation),
  keyed by what the callback is — a process step (by process name,
  e.g. ``mds0:fs_open``), a network delivery (by RPC method), a timer
  or future callback (by qualified name);
* every **synchronous handler invocation** on a daemon (the portion of
  ``Daemon._on_request`` that runs inline, before any generator is
  handed to the trampoline), keyed by ``(daemon, method)``.

Generator handlers resumed through the trampoline surface as process
steps, so the two key spaces together cover the whole
heapq + generator trampoline hot path.

All clock reads go through :mod:`repro.profiling.hostclock` (the one
sanctioned MAL001-waived boundary).  Readings never influence the
schedule: wall profiling on/off leaves the event tape byte-identical.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.profiling.hostclock import host_alloc_blocks, host_perf_ns

#: A begin() token: (wall ns, allocated blocks) at entry.
Token = Tuple[int, int]


class WallStat:
    """Accumulated host cost for one attribution key."""

    __slots__ = ("count", "wall_ns", "alloc_blocks")

    def __init__(self) -> None:
        self.count = 0
        self.wall_ns = 0
        self.alloc_blocks = 0

    def add(self, wall_ns: int, alloc_blocks: int) -> None:
        self.count += 1
        self.wall_ns += wall_ns
        self.alloc_blocks += alloc_blocks

    def to_dict(self) -> Dict[str, Any]:
        return {"count": self.count, "wall_ns": self.wall_ns,
                "alloc_blocks": self.alloc_blocks}


class WallClockProfiler:
    """Accumulates host-time/allocation attribution; attached at
    ``sim.wall_profiler`` (``None`` when off — the kernel fast path)."""

    def __init__(self, sim: Any):
        self.sim = sim
        #: ("dispatch", kind, name) and ("handler", daemon, method).
        self._stats: Dict[Tuple[str, str, str], WallStat] = {}
        self.started_ns = host_perf_ns()

    # ------------------------------------------------------------------
    # Hot-path hooks
    # ------------------------------------------------------------------
    def begin(self) -> Token:
        return (host_perf_ns(), host_alloc_blocks())

    def end_dispatch(self, token: Token, call: Any) -> None:
        """Charge one kernel dispatch to the callback's identity."""
        self._record(self._dispatch_key(call), token)

    def end_handler(self, token: Token, daemon: str, method: str) -> None:
        """Charge one synchronous handler invocation."""
        self._record(("handler", daemon, method), token)

    def _record(self, key: Tuple[str, str, str], token: Token) -> None:
        stat = self._stats.get(key)
        if stat is None:
            stat = self._stats[key] = WallStat()
        stat.add(host_perf_ns() - token[0],
                 host_alloc_blocks() - token[1])

    def _dispatch_key(self, call: Any) -> Tuple[str, str, str]:
        fn = call.fn
        bound_to = getattr(fn, "__self__", None)
        fn_name = getattr(fn, "__name__", "callback")
        cls = type(bound_to).__name__ if bound_to is not None else ""
        if cls == "Process":
            # Process names are "<daemon>:<method>"-shaped and bounded
            # in cardinality; they are the trampoline's identity.
            return ("dispatch", "process",
                    getattr(bound_to, "name", "proc"))
        if cls == "Network" and fn_name == "_deliver":
            env = call.args[1] if len(call.args) > 1 else None
            method = getattr(env, "method", None) or "message"
            return ("dispatch", "deliver", method)
        if cls == "Future":
            return ("dispatch", "future", fn_name)
        where = f"{cls}.{fn_name}" if cls else fn_name
        return ("dispatch", "callback", where)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def total_ns(self) -> int:
        """Attributed wall nanoseconds across all dispatch keys.

        Handler keys nest inside dispatch keys (a synchronous handler
        runs within a delivery dispatch), so only the dispatch plane is
        summed to avoid double counting.
        """
        return sum(s.wall_ns for (plane, _, _), s in self._stats.items()
                   if plane == "dispatch")

    def hotspots(self, n: int = 10) -> List[Dict[str, Any]]:
        """Top-``n`` attribution keys by accumulated wall time."""
        total = self.total_ns() or 1
        ranked = sorted(self._stats.items(),
                        key=lambda kv: (-kv[1].wall_ns, kv[0]))
        out = []
        for (plane, kind, name), stat in ranked[:n]:
            out.append({
                "plane": plane, "kind": kind, "name": name,
                **stat.to_dict(),
                "share": stat.wall_ns / total if plane == "dispatch"
                else None,
                "mean_ns": stat.wall_ns / stat.count if stat.count else 0,
            })
        return out

    def collapsed_stacks(self) -> str:
        """Flamegraph-ready collapsed-stack dump.

        One ``frame;frame;frame value`` line per attribution key, value
        in integer nanoseconds — feed straight to ``flamegraph.pl`` or
        speedscope.  The synthetic root frame is ``kernel`` so both
        planes share one flame.
        """
        lines = []
        for (plane, kind, name), stat in sorted(self._stats.items()):
            frame = name.replace(";", "_").replace(" ", "_")
            lines.append(f"kernel;{plane};{kind};{frame} {stat.wall_ns}")
        return "\n".join(lines)

    def stats(self) -> Dict[str, Dict[str, Any]]:
        """``"plane:kind:name" -> stats`` for every key (sorted)."""
        return {f"{p}:{k}:{n}": s.to_dict()
                for (p, k, n), s in sorted(self._stats.items())}

    def dump(self) -> Dict[str, Any]:
        elapsed = host_perf_ns() - self.started_ns
        attributed = self.total_ns()
        return {
            "elapsed_ns": elapsed,
            "attributed_ns": attributed,
            "attributed_share": attributed / elapsed if elapsed else 0.0,
            "hotspots": self.hotspots(10),
            "stats": self.stats(),
        }

    def reset(self) -> None:
        self._stats = {}
        self.started_ns = host_perf_ns()
