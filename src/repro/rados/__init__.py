"""RADOS: the reliable autonomous distributed object store.

The durability substrate of the stack (paper section 4.4): replicated
object storage daemons with peer-to-peer map gossip, autonomous failure
detection and recovery, background scrub, and server-side object
interface classes (the Data I/O interface).
"""

from repro.rados.client import RadosClient
from repro.rados.objects import StoredObject
from repro.rados.ops import apply_ops, is_read_only
from repro.rados.osd import OSD
from repro.rados.placement import acting_set, locate, pg_of, primary_of

__all__ = [
    "RadosClient",
    "StoredObject",
    "apply_ops",
    "is_read_only",
    "OSD",
    "acting_set",
    "locate",
    "pg_of",
    "primary_of",
]
