"""librados-like client: map-driven routing with retry-on-stale.

Clients compute object placement themselves from the cached OSD map
and talk straight to the primary.  A ``NotPrimary`` rejection, daemon
failure, or timeout triggers a map refresh from the monitors and a
retry — the standard RADOS client loop.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from repro.errors import (
    DaemonDown,
    MalacologyError,
    NotPrimary,
    TimeoutError_,
)
from repro.monitor.monitor import MonitorClient
from repro.rados.placement import locate
from repro.sim.event import Timeout


class RadosClient(MonitorClient):
    """Mixin adding object I/O to a daemon (requires MonitorClient init).

    All methods are generators meant for ``yield from`` inside daemon
    processes (or driven by ``testing.run_script``).
    """

    OSD_TIMEOUT = 2.0
    OSD_RETRIES = 8
    RETRY_BACKOFF = 0.1
    #: Watch sessions are volatile on the OSD; with auto-re-watch on, a
    #: guard ticker probes each watched object's primary and silently
    #: re-establishes any watch lost to an OSD restart or failover.
    WATCH_AUTO_REWATCH = True
    WATCH_REFRESH_INTERVAL = 2.0

    # ------------------------------------------------------------------
    # Core op submission
    # ------------------------------------------------------------------
    def rados_op(self: Any, pool: str, oid: str,
                 ops: List[Dict[str, Any]],
                 epoch: Optional[int] = None) -> Generator:
        """Apply an op list to one object; returns per-op results."""
        last_error: Optional[MalacologyError] = None
        for attempt in range(self.OSD_RETRIES):
            osdmap = self.cached_maps.get("osd")
            if osdmap is None or attempt > 0:
                osdmap = yield from self.mon_get_map("osd")
            try:
                _, acting = locate(osdmap, pool, oid)
            except MalacologyError as exc:
                last_error = exc
                yield Timeout(self.RETRY_BACKOFF)
                continue
            if not acting:
                last_error = DaemonDown(f"no OSD up for {pool}/{oid}")
                yield Timeout(self.RETRY_BACKOFF)
                continue
            try:
                results = yield self.call(
                    acting[0], "osd_op",
                    {"pool": pool, "oid": oid, "ops": ops, "epoch": epoch},
                    timeout=self.OSD_TIMEOUT)
                return results
            except (NotPrimary, DaemonDown, TimeoutError_) as exc:
                last_error = exc
                yield Timeout(self.RETRY_BACKOFF)
        raise last_error or DaemonDown(f"osd op on {pool}/{oid} failed")

    # ------------------------------------------------------------------
    # Convenience wrappers
    # ------------------------------------------------------------------
    def rados_create(self: Any, pool: str, oid: str,
                     exclusive: bool = True) -> Generator:
        yield from self.rados_op(pool, oid,
                                 [{"op": "create", "exclusive": exclusive}])

    def rados_write(self: Any, pool: str, oid: str, offset: int,
                    data: bytes) -> Generator:
        yield from self.rados_op(pool, oid,
                                 [{"op": "write", "offset": offset,
                                   "data": data}])

    def rados_write_full(self: Any, pool: str, oid: str,
                         data: bytes) -> Generator:
        yield from self.rados_op(pool, oid,
                                 [{"op": "write_full", "data": data}])

    def rados_append(self: Any, pool: str, oid: str,
                     data: bytes) -> Generator:
        results = yield from self.rados_op(pool, oid,
                                           [{"op": "append", "data": data}])
        return results[0]

    def rados_read(self: Any, pool: str, oid: str, offset: int = 0,
                   length: Optional[int] = None) -> Generator:
        results = yield from self.rados_op(
            pool, oid, [{"op": "read", "offset": offset, "length": length}])
        return results[0]

    def rados_stat(self: Any, pool: str, oid: str) -> Generator:
        results = yield from self.rados_op(pool, oid, [{"op": "stat"}])
        return results[0]

    def rados_remove(self: Any, pool: str, oid: str) -> Generator:
        yield from self.rados_op(pool, oid, [{"op": "remove"}])

    def rados_omap_set(self: Any, pool: str, oid: str, key: str,
                       value: Any) -> Generator:
        yield from self.rados_op(pool, oid,
                                 [{"op": "omap_set", "key": key,
                                   "value": value}])

    def rados_omap_get(self: Any, pool: str, oid: str,
                       key: str) -> Generator:
        results = yield from self.rados_op(pool, oid,
                                           [{"op": "omap_get", "key": key}])
        return results[0]

    def rados_exec(self: Any, pool: str, oid: str, cls: str, method: str,
                   args: Optional[Dict[str, Any]] = None,
                   epoch: Optional[int] = None) -> Generator:
        """Invoke an object-class method — the Data I/O entry point."""
        results = yield from self.rados_op(
            pool, oid,
            [{"op": "exec", "cls": cls, "method": method,
              "args": args or {}}],
            epoch=epoch)
        return results[0]

    # ------------------------------------------------------------------
    # Watch / notify
    # ------------------------------------------------------------------
    def init_watch_client(self: Any) -> None:
        """Enable watch-event delivery; call once from ``__init__``.

        Registered watch callbacks receive ``(pool, oid, payload,
        notifier)``.
        """
        self._watch_callbacks = {}
        #: (pool, oid) -> OSD we believe holds our watch session.
        self._watch_primaries = {}
        self._watch_guard_on = False
        if "watch_event" not in self._handlers:
            self.register_handler("watch_event", self._h_watch_event)

    def _h_watch_event(self: Any, src: str, payload: Any) -> None:
        key = (payload["pool"], payload["oid"])
        callback = getattr(self, "_watch_callbacks", {}).get(key)
        if callback is not None:
            callback(payload["pool"], payload["oid"],
                     payload["payload"], payload["notifier"])

    def _watch_op(self: Any, method: str, pool: str,
                  oid: str) -> Generator:
        last_error: Optional[MalacologyError] = None
        for attempt in range(self.OSD_RETRIES):
            osdmap = self.cached_maps.get("osd")
            if osdmap is None or attempt > 0:
                osdmap = yield from self.mon_get_map("osd")
            _, acting = locate(osdmap, pool, oid)
            if not acting:
                yield Timeout(self.RETRY_BACKOFF)
                continue
            try:
                yield self.call(acting[0], method,
                                {"pool": pool, "oid": oid},
                                timeout=self.OSD_TIMEOUT)
                return acting[0]
            except (NotPrimary, DaemonDown, TimeoutError_) as exc:
                last_error = exc
                yield Timeout(self.RETRY_BACKOFF)
        raise last_error or DaemonDown(f"{method} on {pool}/{oid} failed")

    def rados_watch(self: Any, pool: str, oid: str,
                    callback: Any) -> Generator:
        """Subscribe to notifications on one object.

        Watches live on the object's primary and the OSD-side session
        is volatile across failover.  With ``WATCH_AUTO_REWATCH`` (the
        default) a guard ticker detects the loss and re-establishes
        the watch on the current primary, so delivery resumes after an
        OSD restart without caller involvement; with it off, callers
        must re-watch on error as classic librados applications do.
        """
        if not hasattr(self, "_watch_callbacks"):
            raise RuntimeError("call init_watch_client() first")
        self._watch_callbacks[(pool, oid)] = callback
        primary = yield from self._watch_op("osd_watch", pool, oid)
        self._watch_primaries[(pool, oid)] = primary
        self._ensure_watch_guard()
        return primary

    def rados_unwatch(self: Any, pool: str, oid: str) -> Generator:
        getattr(self, "_watch_callbacks", {}).pop((pool, oid), None)
        getattr(self, "_watch_primaries", {}).pop((pool, oid), None)
        yield from self._watch_op("osd_unwatch", pool, oid)

    # ------------------------------------------------------------------
    # Watch re-establishment guard
    # ------------------------------------------------------------------
    def _ensure_watch_guard(self: Any) -> None:
        if not self.WATCH_AUTO_REWATCH or self._watch_guard_on:
            return
        self._watch_guard_on = True
        self.every(self.WATCH_REFRESH_INTERVAL, self._watch_guard_tick,
                   name=f"{self.name}:rewatch")

    def _watch_guard_tick(self: Any) -> Optional[Generator]:
        if not self._watch_callbacks:
            return None  # nothing watched right now: zero traffic
        return self._watch_guard_pass()

    def _watch_guard_pass(self: Any) -> Generator:
        """Probe each watched object's primary; re-watch if lost.

        The probe asks the *believed* primary whether our session is
        still registered; a ``False`` (OSD restarted and forgot its
        volatile watchers) or any error (down, no longer primary)
        triggers a full re-watch through the normal map-refreshing
        retry loop.
        """
        for key in sorted(self._watch_callbacks):
            if key not in self._watch_callbacks:
                continue  # unwatched while this pass was in flight
            pool, oid = key
            primary = self._watch_primaries.get(key)
            alive = False
            if primary is not None:
                try:
                    alive = yield self.call(
                        primary, "osd_watch_check",
                        {"pool": pool, "oid": oid},
                        timeout=self.OSD_TIMEOUT)
                except MalacologyError:
                    alive = False
            if alive:
                continue
            try:
                new_primary = yield from self._watch_op("osd_watch",
                                                        pool, oid)
            except MalacologyError:
                continue  # cluster still settling; retry next tick
            self._watch_primaries[key] = new_primary
            self.perf.incr("watch.reestablished")

    def rados_notify(self: Any, pool: str, oid: str,
                     payload: Any = None) -> Generator:
        """Notify all watchers of an object; returns watcher count."""
        last_error: Optional[MalacologyError] = None
        for attempt in range(self.OSD_RETRIES):
            osdmap = self.cached_maps.get("osd")
            if osdmap is None or attempt > 0:
                osdmap = yield from self.mon_get_map("osd")
            _, acting = locate(osdmap, pool, oid)
            if not acting:
                yield Timeout(self.RETRY_BACKOFF)
                continue
            try:
                count = yield self.call(acting[0], "osd_notify",
                                        {"pool": pool, "oid": oid,
                                         "payload": payload},
                                        timeout=self.OSD_TIMEOUT)
                return count
            except (NotPrimary, DaemonDown, TimeoutError_) as exc:
                last_error = exc
                yield Timeout(self.RETRY_BACKOFF)
        raise last_error or DaemonDown(f"notify on {pool}/{oid} failed")

    # ------------------------------------------------------------------
    # Pool administration
    # ------------------------------------------------------------------
    def rados_create_pool(self: Any, name: str, size: int = 2,
                          pg_num: int = 64,
                          ec: Optional[Dict[str, int]] = None,
                          backend: Optional[Any] = None,
                          cache: Optional[Dict[str, Any]] = None
                          ) -> Generator:
        """Create a pool; pass ``ec={"k": 2, "m": 1}`` for erasure coding.

        EC pools store any object's bytestream as k data + m parity
        shards (tolerating m lost shards) but — like Ceph's — do not
        support omap or object-class execution.

        ``backend`` picks the pool's object-store profile
        (``"memstore"`` default, ``"logstructured"``, or
        ``{"profile": "coldstore", "k": 2, "m": 1}``); ``cache`` adds
        a write-back cache tier (``{"capacity": 64,
        "promote_reads": 2}``).  See :mod:`repro.store`.  ``ec`` and
        ``backend``/``cache`` are mutually exclusive.
        """
        action = {"action": "create_pool", "name": name,
                  "size": size, "pg_num": pg_num}
        if ec is not None:
            action["ec"] = {"k": int(ec["k"]), "m": int(ec["m"])}
        if backend is not None:
            action["backend"] = backend
        if cache is not None:
            action["cache"] = cache
        yield from self.mon_submit([{
            "op": "map_update", "kind": "osd", "actions": [action]}])
        yield from self.mon_get_map("osd")

    # ------------------------------------------------------------------
    # Interface installation (used by core.DataIOInterface)
    # ------------------------------------------------------------------
    def rados_install_interface(self: Any, name: str, version: int,
                                source: str,
                                category: str = "other") -> Generator:
        """Publish a dynamic object class cluster-wide via the OSD map."""
        yield from self.mon_submit([{
            "op": "map_update", "kind": "osd",
            "actions": [{"action": "set_interface", "name": name,
                         "version": version, "source": source,
                         "category": category}]}])

    def rados_ls_interfaces(self: Any) -> Generator:
        osdmap = yield from self.mon_get_map("osd")
        return dict(osdmap.interfaces)
