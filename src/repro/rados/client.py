"""librados-like client: map-driven routing with retry-on-stale.

Clients compute object placement themselves from the cached OSD map
and talk straight to the primary.  A ``NotPrimary`` rejection, daemon
failure, or timeout triggers a map refresh from the monitors and a
retry — the standard RADOS client loop.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from repro.errors import (
    DaemonDown,
    MalacologyError,
    NotPrimary,
    TimeoutError_,
)
from repro.monitor.monitor import MonitorClient
from repro.rados.placement import locate
from repro.sim.event import Timeout


class RadosClient(MonitorClient):
    """Mixin adding object I/O to a daemon (requires MonitorClient init).

    All methods are generators meant for ``yield from`` inside daemon
    processes (or driven by ``testing.run_script``).
    """

    OSD_TIMEOUT = 2.0
    OSD_RETRIES = 8
    RETRY_BACKOFF = 0.1

    # ------------------------------------------------------------------
    # Core op submission
    # ------------------------------------------------------------------
    def rados_op(self: Any, pool: str, oid: str,
                 ops: List[Dict[str, Any]],
                 epoch: Optional[int] = None) -> Generator:
        """Apply an op list to one object; returns per-op results."""
        last_error: Optional[MalacologyError] = None
        for attempt in range(self.OSD_RETRIES):
            osdmap = self.cached_maps.get("osd")
            if osdmap is None or attempt > 0:
                osdmap = yield from self.mon_get_map("osd")
            try:
                _, acting = locate(osdmap, pool, oid)
            except MalacologyError as exc:
                last_error = exc
                yield Timeout(self.RETRY_BACKOFF)
                continue
            if not acting:
                last_error = DaemonDown(f"no OSD up for {pool}/{oid}")
                yield Timeout(self.RETRY_BACKOFF)
                continue
            try:
                results = yield self.call(
                    acting[0], "osd_op",
                    {"pool": pool, "oid": oid, "ops": ops, "epoch": epoch},
                    timeout=self.OSD_TIMEOUT)
                return results
            except (NotPrimary, DaemonDown, TimeoutError_) as exc:
                last_error = exc
                yield Timeout(self.RETRY_BACKOFF)
        raise last_error or DaemonDown(f"osd op on {pool}/{oid} failed")

    # ------------------------------------------------------------------
    # Convenience wrappers
    # ------------------------------------------------------------------
    def rados_create(self: Any, pool: str, oid: str,
                     exclusive: bool = True) -> Generator:
        yield from self.rados_op(pool, oid,
                                 [{"op": "create", "exclusive": exclusive}])

    def rados_write(self: Any, pool: str, oid: str, offset: int,
                    data: bytes) -> Generator:
        yield from self.rados_op(pool, oid,
                                 [{"op": "write", "offset": offset,
                                   "data": data}])

    def rados_write_full(self: Any, pool: str, oid: str,
                         data: bytes) -> Generator:
        yield from self.rados_op(pool, oid,
                                 [{"op": "write_full", "data": data}])

    def rados_append(self: Any, pool: str, oid: str,
                     data: bytes) -> Generator:
        results = yield from self.rados_op(pool, oid,
                                           [{"op": "append", "data": data}])
        return results[0]

    def rados_read(self: Any, pool: str, oid: str, offset: int = 0,
                   length: Optional[int] = None) -> Generator:
        results = yield from self.rados_op(
            pool, oid, [{"op": "read", "offset": offset, "length": length}])
        return results[0]

    def rados_stat(self: Any, pool: str, oid: str) -> Generator:
        results = yield from self.rados_op(pool, oid, [{"op": "stat"}])
        return results[0]

    def rados_remove(self: Any, pool: str, oid: str) -> Generator:
        yield from self.rados_op(pool, oid, [{"op": "remove"}])

    def rados_omap_set(self: Any, pool: str, oid: str, key: str,
                       value: Any) -> Generator:
        yield from self.rados_op(pool, oid,
                                 [{"op": "omap_set", "key": key,
                                   "value": value}])

    def rados_omap_get(self: Any, pool: str, oid: str,
                       key: str) -> Generator:
        results = yield from self.rados_op(pool, oid,
                                           [{"op": "omap_get", "key": key}])
        return results[0]

    def rados_exec(self: Any, pool: str, oid: str, cls: str, method: str,
                   args: Optional[Dict[str, Any]] = None,
                   epoch: Optional[int] = None) -> Generator:
        """Invoke an object-class method — the Data I/O entry point."""
        results = yield from self.rados_op(
            pool, oid,
            [{"op": "exec", "cls": cls, "method": method,
              "args": args or {}}],
            epoch=epoch)
        return results[0]

    # ------------------------------------------------------------------
    # Watch / notify
    # ------------------------------------------------------------------
    def init_watch_client(self: Any) -> None:
        """Enable watch-event delivery; call once from ``__init__``.

        Registered watch callbacks receive ``(pool, oid, payload,
        notifier)``.
        """
        self._watch_callbacks = {}
        if "watch_event" not in self._handlers:
            self.register_handler("watch_event", self._h_watch_event)

    def _h_watch_event(self: Any, src: str, payload: Any) -> None:
        key = (payload["pool"], payload["oid"])
        callback = getattr(self, "_watch_callbacks", {}).get(key)
        if callback is not None:
            callback(payload["pool"], payload["oid"],
                     payload["payload"], payload["notifier"])

    def _watch_op(self: Any, method: str, pool: str,
                  oid: str) -> Generator:
        last_error: Optional[MalacologyError] = None
        for attempt in range(self.OSD_RETRIES):
            osdmap = self.cached_maps.get("osd")
            if osdmap is None or attempt > 0:
                osdmap = yield from self.mon_get_map("osd")
            _, acting = locate(osdmap, pool, oid)
            if not acting:
                yield Timeout(self.RETRY_BACKOFF)
                continue
            try:
                yield self.call(acting[0], method,
                                {"pool": pool, "oid": oid},
                                timeout=self.OSD_TIMEOUT)
                return acting[0]
            except (NotPrimary, DaemonDown, TimeoutError_) as exc:
                last_error = exc
                yield Timeout(self.RETRY_BACKOFF)
        raise last_error or DaemonDown(f"{method} on {pool}/{oid} failed")

    def rados_watch(self: Any, pool: str, oid: str,
                    callback: Any) -> Generator:
        """Subscribe to notifications on one object.

        Watches live on the object's primary and are volatile across
        OSD failover; callers should re-watch on error, as librados
        applications do.
        """
        if not hasattr(self, "_watch_callbacks"):
            raise RuntimeError("call init_watch_client() first")
        self._watch_callbacks[(pool, oid)] = callback
        primary = yield from self._watch_op("osd_watch", pool, oid)
        return primary

    def rados_unwatch(self: Any, pool: str, oid: str) -> Generator:
        getattr(self, "_watch_callbacks", {}).pop((pool, oid), None)
        yield from self._watch_op("osd_unwatch", pool, oid)

    def rados_notify(self: Any, pool: str, oid: str,
                     payload: Any = None) -> Generator:
        """Notify all watchers of an object; returns watcher count."""
        last_error: Optional[MalacologyError] = None
        for attempt in range(self.OSD_RETRIES):
            osdmap = self.cached_maps.get("osd")
            if osdmap is None or attempt > 0:
                osdmap = yield from self.mon_get_map("osd")
            _, acting = locate(osdmap, pool, oid)
            if not acting:
                yield Timeout(self.RETRY_BACKOFF)
                continue
            try:
                count = yield self.call(acting[0], "osd_notify",
                                        {"pool": pool, "oid": oid,
                                         "payload": payload},
                                        timeout=self.OSD_TIMEOUT)
                return count
            except (NotPrimary, DaemonDown, TimeoutError_) as exc:
                last_error = exc
                yield Timeout(self.RETRY_BACKOFF)
        raise last_error or DaemonDown(f"notify on {pool}/{oid} failed")

    # ------------------------------------------------------------------
    # Pool administration
    # ------------------------------------------------------------------
    def rados_create_pool(self: Any, name: str, size: int = 2,
                          pg_num: int = 64,
                          ec: Optional[Dict[str, int]] = None) -> Generator:
        """Create a pool; pass ``ec={"k": 2, "m": 1}`` for erasure coding.

        EC pools store any object's bytestream as k data + m parity
        shards (tolerating m lost shards) but — like Ceph's — do not
        support omap or object-class execution.
        """
        action = {"action": "create_pool", "name": name,
                  "size": size, "pg_num": pg_num}
        if ec is not None:
            action["ec"] = {"k": int(ec["k"]), "m": int(ec["m"])}
        yield from self.mon_submit([{
            "op": "map_update", "kind": "osd", "actions": [action]}])
        yield from self.mon_get_map("osd")

    # ------------------------------------------------------------------
    # Interface installation (used by core.DataIOInterface)
    # ------------------------------------------------------------------
    def rados_install_interface(self: Any, name: str, version: int,
                                source: str,
                                category: str = "other") -> Generator:
        """Publish a dynamic object class cluster-wide via the OSD map."""
        yield from self.mon_submit([{
            "op": "map_update", "kind": "osd",
            "actions": [{"action": "set_interface", "name": name,
                         "version": version, "source": source,
                         "category": category}]}])

    def rados_ls_interfaces(self: Any) -> Generator:
        osdmap = yield from self.mon_get_map("osd")
        return dict(osdmap.interfaces)
