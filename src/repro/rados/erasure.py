"""Erasure coding: the k+m codec used by EC pools (paper section 4.4).

RADOS protects data "using common techniques such as erasure coding,
replication, and scrubbing".  This module is the codec half: split an
object's bytestream into ``k`` data shards plus ``m`` parity shards
such that any ``k`` of the ``k+m`` shards reconstruct the original.

The implementation is a systematic XOR/Vandermonde-free scheme:

* ``m = 1`` — single parity shard = XOR of the data shards (RAID-5
  style), tolerating any one lost shard;
* ``m >= 2`` — parity shard ``j`` is the XOR of data shards weighted
  by positions over GF(256) (a Reed-Solomon-style Vandermonde code
  with generators ``1, 2, 3, ...``), tolerating any ``m`` lost shards.

GF(256) arithmetic is implemented directly (AES polynomial 0x11B); no
external dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import InvalidArgument

# ----------------------------------------------------------------------
# GF(256) arithmetic (log/antilog tables, generator 3, poly 0x11B)
# ----------------------------------------------------------------------
_EXP = [0] * 512
_LOG = [0] * 256


def _build_tables() -> None:
    x = 1
    for i in range(255):
        _EXP[i] = x
        _LOG[x] = i
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        _EXP[i] = _EXP[i - 255]


_build_tables()


def gf_mul(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def gf_inv(a: int) -> int:
    if a == 0:
        raise ZeroDivisionError("no inverse of 0 in GF(256)")
    return _EXP[255 - _LOG[a]]


def _mul_slice(chunk: bytes, coeff: int) -> bytearray:
    if coeff == 1:
        return bytearray(chunk)
    out = bytearray(len(chunk))
    if coeff == 0:
        return out
    log_c = _LOG[coeff]
    for i, byte in enumerate(chunk):
        if byte:
            out[i] = _EXP[_LOG[byte] + log_c]
    return out


def _xor_into(dst: bytearray, src: bytes) -> None:
    for i, byte in enumerate(src):
        dst[i] ^= byte


# ----------------------------------------------------------------------
# Codec
# ----------------------------------------------------------------------
class ErasureCodec:
    """Systematic k+m erasure codec over GF(256)."""

    def __init__(self, k: int, m: int):
        if k < 1 or m < 1:
            raise InvalidArgument(f"bad EC profile k={k} m={m}")
        if k + m > 255:
            raise InvalidArgument("k+m must be <= 255")
        self.k = k
        self.m = m
        # Vandermonde rows: parity j uses coefficients g_j^i where the
        # generators are distinct non-zero elements 1..m over data
        # index i.  (For m=1 this degenerates to plain XOR.)
        self._coeff = [[_EXP[(j * i) % 255] for i in range(k)]
                       for j in range(m)]

    # -- encoding -------------------------------------------------------
    def shard_size(self, length: int) -> int:
        return (length + self.k - 1) // self.k if length else 0

    def encode(self, data: bytes) -> List[bytes]:
        """Return k data shards + m parity shards (padded equal size)."""
        size = self.shard_size(len(data))
        shards: List[bytes] = []
        for i in range(self.k):
            chunk = data[i * size:(i + 1) * size]
            shards.append(chunk.ljust(size, b"\x00"))
        for j in range(self.m):
            parity = bytearray(size)
            for i in range(self.k):
                _xor_into(parity, _mul_slice(shards[i],
                                             self._coeff[j][i]))
            shards.append(bytes(parity))
        return shards

    def encode_batch(self, buffers: List[bytes]) -> List[List[bytes]]:
        """Encode a whole flush batch in one call (the hot path).

        Pads every object to its own shard boundary, concatenates the
        batch into one contiguous blob, and slices all data shards out
        of that single buffer; the parity loop then runs fused over
        the batch, reusing one accumulator allocation per parity row
        instead of reallocating per object.  Each object's shard set
        is independently decodable with :meth:`decode` — the output is
        exactly what per-object :meth:`encode` calls would produce,
        without the per-call buffer churn.
        """
        sizes = [self.shard_size(len(b)) for b in buffers]
        blob = b"".join(b.ljust(size * self.k, b"\x00")
                        for b, size in zip(buffers, sizes))
        per_object: List[List[bytes]] = []
        offset = 0
        for size in sizes:
            data_shards = [blob[offset + i * size:offset + (i + 1) * size]
                           for i in range(self.k)]
            shards = list(data_shards)
            for j in range(self.m):
                acc = bytearray(size)
                for i in range(self.k):
                    _xor_into(acc, _mul_slice(data_shards[i],
                                              self._coeff[j][i]))
                shards.append(bytes(acc))
            per_object.append(shards)
            offset += size * self.k
        return per_object

    # -- decoding -------------------------------------------------------
    def decode(self, shards: Dict[int, bytes], length: int) -> bytes:
        """Reconstruct the original from any k of the k+m shards.

        ``shards`` maps shard index -> bytes; raises if fewer than k
        shards are present.
        """
        if length == 0:
            return b""
        size = self.shard_size(length)
        have = {i: s for i, s in shards.items() if s is not None}
        if len(have) < self.k:
            raise InvalidArgument(
                f"need {self.k} shards to reconstruct, have {len(have)}")
        missing_data = [i for i in range(self.k) if i not in have]
        if missing_data:
            self._reconstruct_data(have, missing_data, size)
        data = b"".join(bytes(have[i]) for i in range(self.k))
        return data[:length]

    def _reconstruct_data(self, have: Dict[int, bytes],
                          missing: List[int], size: int) -> None:
        # Build the linear system over the available parity rows.
        parity_rows = [j for j in range(self.m)
                       if (self.k + j) in have]
        if len(parity_rows) < len(missing):
            raise InvalidArgument("not enough parity to reconstruct")
        rows = parity_rows[: len(missing)]
        # For each chosen parity row: known = parity XOR contributions
        # of present data shards; unknowns are the missing shards.
        rhs: List[bytearray] = []
        matrix: List[List[int]] = []
        for j in rows:
            acc = bytearray(have[self.k + j])
            for i in range(self.k):
                if i in have:
                    _xor_into(acc, _mul_slice(have[i],
                                              self._coeff[j][i]))
            rhs.append(acc)
            matrix.append([self._coeff[j][i] for i in missing])
        # Gaussian elimination over GF(256) on (matrix | rhs).
        n = len(missing)
        for col in range(n):
            pivot = next((r for r in range(col, n)
                          if matrix[r][col] != 0), None)
            if pivot is None:
                raise InvalidArgument("singular reconstruction matrix")
            matrix[col], matrix[pivot] = matrix[pivot], matrix[col]
            rhs[col], rhs[pivot] = rhs[pivot], rhs[col]
            inv = gf_inv(matrix[col][col])
            matrix[col] = [gf_mul(v, inv) for v in matrix[col]]
            rhs[col] = _mul_slice(bytes(rhs[col]), inv)
            for r in range(n):
                if r != col and matrix[r][col]:
                    factor = matrix[r][col]
                    matrix[r] = [a ^ gf_mul(factor, b)
                                 for a, b in zip(matrix[r], matrix[col])]
                    _xor_into(rhs[r], _mul_slice(bytes(rhs[col]),
                                                 factor))
        for idx, shard_index in enumerate(missing):
            have[shard_index] = bytes(rhs[idx])
