"""The stored object: bytestream + sorted key-value omap + xattrs.

This is RADOS's data model (paper section 4.2): every object offers a
byte stream, a sorted key-value database (the "omap"), and extended
attributes, all mutable atomically within one object operation.  Object
classes compose these native interfaces.
"""

from __future__ import annotations

import copy
import hashlib
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import InvalidArgument

#: Guardrail: a simulated object refusing absurd writes keeps runaway
#: benchmarks from eating the host's memory.
MAX_OBJECT_SIZE = 64 * 1024 * 1024


class StoredObject:
    """One object replica's full state.

    ``version`` counts mutations (like Ceph's per-object version) and
    is what scrub compares across replicas.
    """

    __slots__ = ("oid", "data", "omap", "xattrs", "version")

    def __init__(self, oid: str):
        self.oid = oid
        self.data = bytearray()
        self.omap: Dict[str, Any] = {}
        self.xattrs: Dict[str, Any] = {}
        self.version = 0

    # ------------------------------------------------------------------
    # Bytestream
    # ------------------------------------------------------------------
    def read(self, offset: int = 0, length: Optional[int] = None) -> bytes:
        if offset < 0:
            raise InvalidArgument("negative read offset")
        if length is None:
            return bytes(self.data[offset:])
        if length < 0:
            raise InvalidArgument("negative read length")
        return bytes(self.data[offset:offset + length])

    def write(self, offset: int, data: bytes) -> None:
        if offset < 0:
            raise InvalidArgument("negative write offset")
        end = offset + len(data)
        if end > MAX_OBJECT_SIZE:
            raise InvalidArgument(f"object would exceed {MAX_OBJECT_SIZE}B")
        if len(self.data) < end:
            self.data.extend(b"\x00" * (end - len(self.data)))
        self.data[offset:end] = data
        self.version += 1

    def append(self, data: bytes) -> int:
        """Append; returns the offset the data landed at."""
        offset = len(self.data)
        self.write(offset, data)
        return offset

    def truncate(self, size: int) -> None:
        if size < 0:
            raise InvalidArgument("negative truncate size")
        if size < len(self.data):
            del self.data[size:]
        else:
            self.data.extend(b"\x00" * (size - len(self.data)))
        self.version += 1

    @property
    def size(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Omap (sorted key-value database)
    # ------------------------------------------------------------------
    def omap_get(self, key: str) -> Any:
        return self.omap[key]

    def omap_set(self, key: str, value: Any) -> None:
        self.omap[key] = copy.deepcopy(value)
        self.version += 1

    def omap_del(self, key: str) -> None:
        if key in self.omap:
            del self.omap[key]
            self.version += 1

    def omap_list(self, start: str = "", max_items: Optional[int] = None,
                  prefix: str = "") -> List[Tuple[str, Any]]:
        """Sorted scan from ``start`` (exclusive), optional prefix filter."""
        keys = sorted(k for k in self.omap
                      if k > start and k.startswith(prefix))
        if max_items is not None:
            keys = keys[:max_items]
        return [(k, copy.deepcopy(self.omap[k])) for k in keys]

    # ------------------------------------------------------------------
    # Xattrs
    # ------------------------------------------------------------------
    def xattr_get(self, key: str) -> Any:
        return self.xattrs[key]

    def xattr_set(self, key: str, value: Any) -> None:
        self.xattrs[key] = copy.deepcopy(value)
        self.version += 1

    # ------------------------------------------------------------------
    # Whole-object operations
    # ------------------------------------------------------------------
    def digest(self) -> str:
        """Content fingerprint used by scrub to compare replicas."""
        h = hashlib.sha256()
        h.update(bytes(self.data))
        for k in sorted(self.omap):
            h.update(repr((k, self.omap[k])).encode())
        for k in sorted(self.xattrs):
            h.update(repr((k, self.xattrs[k])).encode())
        return h.hexdigest()

    def clone(self) -> "StoredObject":
        other = StoredObject(self.oid)
        other.data = bytearray(self.data)
        other.omap = copy.deepcopy(self.omap)
        other.xattrs = copy.deepcopy(self.xattrs)
        other.version = self.version
        return other

    def to_dict(self) -> Dict[str, Any]:
        """Wire/state-transfer form (replication, recovery, scrub repair)."""
        return {
            "oid": self.oid,
            "data": bytes(self.data),
            "omap": copy.deepcopy(self.omap),
            "xattrs": copy.deepcopy(self.xattrs),
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "StoredObject":
        obj = cls(d["oid"])
        obj.data = bytearray(d["data"])
        obj.omap = copy.deepcopy(d["omap"])
        obj.xattrs = copy.deepcopy(d["xattrs"])
        obj.version = d["version"]
        return obj

    def __repr__(self) -> str:
        return (f"StoredObject({self.oid!r}, {self.size}B, "
                f"{len(self.omap)} omap keys, v{self.version})")
