"""Object operation descriptors and their transactional application.

A client request against one object carries an ordered *op list*; the
OSD applies the whole list atomically — if any op raises, nothing
lands.  This is the substrate for Ceph's semantically rich interfaces
("native interfaces may be transactionally composed", section 4.2):
an ``exec`` op invokes an object-class method in the middle of the
same transaction.

Application is pure with respect to daemon state: it takes the current
object (or None), returns per-op results plus the new object state, and
the OSD commits.  That purity is what lets replicas apply shipped state
instead of re-executing, and lets tests drive op lists directly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import InvalidArgument, NotFound
from repro.objclass.context import MethodContext
from repro.objclass.registry import ClassRegistry
from repro.rados.objects import StoredObject

#: Ops that can never mutate — a pure-read op list skips replication.
READ_ONLY_OPS = frozenset({
    "read", "stat", "omap_get", "omap_list", "xattr_get",
    "assert_exists",
})


def is_read_only(ops: List[Dict[str, Any]]) -> bool:
    """True when no op in the list can mutate object state.

    ``exec`` is conservatively treated as mutating — the OSD compares
    object versions after execution to skip replication for read-only
    class methods.
    """
    return all(op.get("op") in READ_ONLY_OPS for op in ops)


def apply_ops(
    obj: Optional[StoredObject],
    oid: str,
    ops: List[Dict[str, Any]],
    registry: ClassRegistry,
    epoch: Optional[int] = None,
    now: float = 0.0,
) -> Tuple[List[Any], Optional[StoredObject], bool]:
    """Apply ``ops`` transactionally.

    Returns ``(results, new_object_state, removed)``.  Raises the first
    failing op's error, in which case the caller must discard any
    partial state (the input ``obj`` is never mutated — the context
    works on a clone).
    """
    ctx = MethodContext(obj, oid, epoch=epoch, now=now)  # ctx clones
    results: List[Any] = []
    for op in ops:
        results.append(_apply_one(ctx, op, registry))
    new_obj, removed = ctx.outcome()
    return results, new_obj, removed


def _apply_one(ctx: MethodContext, op: Dict[str, Any],
               registry: ClassRegistry) -> Any:
    kind = op.get("op")
    if kind == "create":
        ctx.create(exclusive=op.get("exclusive", True))
        return None
    if kind == "assert_exists":
        if not ctx.exists:
            raise NotFound(f"object {ctx.oid!r} does not exist")
        return None
    if kind == "read":
        return ctx.read(op.get("offset", 0), op.get("length"))
    if kind == "write":
        ctx.write(op["offset"], op["data"])
        return None
    if kind == "write_full":
        ctx.write_full(op["data"])
        return None
    if kind == "append":
        return ctx.append(op["data"])
    if kind == "truncate":
        ctx.truncate(op["size"])
        return None
    if kind == "stat":
        return ctx.stat()
    if kind == "remove":
        ctx.remove()
        return None
    if kind == "omap_get":
        return ctx.omap_get(op["key"])
    if kind == "omap_set":
        ctx.omap_set(op["key"], op["value"])
        return None
    if kind == "omap_del":
        ctx.omap_del(op["key"])
        return None
    if kind == "omap_list":
        return ctx.omap_list(start=op.get("start", ""),
                             max_items=op.get("max"),
                             prefix=op.get("prefix", ""))
    if kind == "xattr_get":
        return ctx.xattr_get(op["key"], op.get("default"))
    if kind == "xattr_set":
        ctx.xattr_set(op["key"], op["value"])
        return None
    if kind == "exec":
        return registry.call(op["cls"], op["method"], ctx,
                             op.get("args", {}))
    raise InvalidArgument(f"unknown object op {kind!r}")
