"""The object storage daemon (OSD).

Implements RADOS's division of labor (paper sections 2 and 4.4):

* serves client object operations for PGs it leads, applying op lists
  transactionally and replicating resulting state to the acting set
  (primary-copy replication; the primary acks only after all live
  replicas ack);
* participates in peer-to-peer map gossip: epochs piggyback on every
  message, new maps are pushed to a random fanout of peers, so a map
  committed by the monitors reaches the whole cluster without the
  monitors contacting every OSD;
* dynamically installs object interface classes embedded in the OSD
  map (the Data I/O interface) — with a modelled install cost, which is
  what the Figure 8 propagation experiment measures;
* detects peer failures via pings and reports them to the monitors;
* re-replicates PGs when the acting set changes (recovery/backfill)
  and scrubs replicas for silent divergence.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.errors import (
    DaemonDown,
    InvalidArgument,
    MalacologyError,
    NotPrimary,
    TimeoutError_,
)
from repro.monitor.maps import OSDMap, map_from_dict
from repro.monitor.monitor import MonitorClient
from repro.msg import Daemon, Envelope
from repro.objclass.bundled import register_all
from repro.objclass.registry import ClassRegistry
from repro.rados.objects import StoredObject
from repro.rados.ops import apply_ops
from repro.rados.placement import acting_set, pg_of
from repro.sim.event import Timeout, gather
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.store import CacheTier, FaultInjectingStore, \
    LogStructuredStore, ObjectStore, StoreFaultPlane, make_store, \
    unwrap_store

PgId = Tuple[str, int]  # (pool, pg)

#: Pools whose mutations never emit changelog records: the changelog's
#: own pool (self-feedback loop) and the metadata pool (the MDS already
#: emits the namespace-level record; its dir objects and journals would
#: only duplicate it at object granularity).
CHANGELOG_EXCLUDED_POOLS = frozenset({"changelog", "metadata"})


class OSD(Daemon, MonitorClient):
    """One object storage daemon."""

    PING_INTERVAL = 1.0
    PING_TIMEOUT = 0.5
    SCRUB_INTERVAL = 30.0
    #: Store-maintenance cadence (compaction, cache write-back).  The
    #: ticker is lazy: it only starts once this OSD hosts a store with
    #: ``needs_maintenance`` — pure-MemStore clusters schedule zero
    #: extra events, which is what keeps pre-refactor schedules
    #: byte-identical.
    STORE_TICK_INTERVAL = 1.0
    REPOP_TIMEOUT = 1.0
    #: Delay before retrying a rebalance whose pg_push was lost.
    REBALANCE_RETRY = 5.0
    GOSSIP_FANOUT = 3
    #: Modelled cost of making a new interface version live (loading the
    #: interpreter state, registering methods).  Median/sigma of a
    #: lognormal draw; this is the dominant term in Figure 8.
    INTERFACE_INSTALL_MEDIAN = 0.020
    INTERFACE_INSTALL_SIGMA = 0.6
    INTERFACE_INSTALL_CAP = 0.18

    def __init__(self, sim: Simulator, network: Network, name: str,
                 mon_names: List[str]):
        super().__init__(sim, network, name)
        self.init_mon_client(mon_names)
        # "Disk": survives crash/restart.  One ObjectStore per PG,
        # typed by the pool's backend/cache declaration (see
        # ``repro.store``); default pools get MemStore, the
        # pre-refactor semantics.
        self.pgs: Dict[PgId, ObjectStore] = {}
        self._store_ticker_started = False
        self.registry = ClassRegistry()
        register_all(self.registry)
        self._installed_versions: Dict[str, int] = {}
        self._install_rng = sim.rng(f"osd-install:{name}")
        self._gossip_rng = sim.rng(f"osd-gossip:{name}")
        self._reported_down: set = set()
        self._reasserting = False
        self._rebalance_retry_pending = False
        self._scrub_cursor = 0
        self.booted = False
        #: Bench hook: fn(class_name, version, sim_time) when an
        #: interface version becomes live on this OSD.
        self.interface_live_hook: Optional[
            Callable[[str, int, float], None]] = None
        #: Changelog producer shim (``repro.changelog.ChangelogProducer``)
        #: attached by ``cluster.enable_changelog``; None = no changelog.
        self.changelog: Optional[Any] = None
        self.perf.gauge_fn("pg.count", lambda: len(self.pgs))
        self.perf.gauge_fn(
            "object.count",
            lambda: sum(len(objs) for objs in self.pgs.values()))
        self.perf.gauge_fn("peers.reported_down",
                           lambda: len(self._reported_down))
        # Store-tier gauges feed the CACHE_TIER_FULL and
        # COMPACTION_STALLED health checks; None (skipped by the
        # exporter and the checks) when this OSD hosts no such store.
        self.perf.gauge_fn("store.cache.utilization",
                           self._gauge_cache_utilization)
        self.perf.gauge_fn("store.cache.dirty", self._gauge_cache_dirty)
        self.perf.gauge_fn("store.log.garbage_ratio",
                           self._gauge_log_garbage)
        self.perf.gauge_fn("store.log.compactions",
                           self._gauge_log_compactions)
        self.register_admin_command("store.status",
                                    self._admin_store_status)
        self.register_admin_command("scrub.trigger",
                                    self._admin_scrub_trigger)
        #: Chaos-engine fault plane (``repro.store.faults``); when set,
        #: every PG store is wrapped in a :class:`FaultInjectingStore`.
        self.store_faults: Optional[StoreFaultPlane] = None

        rh = self.register_handler
        #: (pool, oid) -> set of watcher client names (volatile; clients
        #: re-watch after OSD failover, as librados watchers do).
        self.watchers: Dict[Tuple[str, str], set] = {}

        rh("osd_op", self._h_osd_op)
        rh("osd_repop", self._h_repop)
        rh("osd_ping", lambda src, p: "pong")
        rh("osd_map_push", self._h_map_push)
        rh("pg_push", self._h_pg_push)
        rh("pg_digest", self._h_pg_digest)
        #: EC shard store: (pool, oid, shard index) -> {"shard", "version"}.
        #: Kept outside the PG store: shard placement is by acting-set
        #: position, not by shard-oid hashing.
        self.ec_shards: Dict[Tuple[str, str, int], Dict[str, Any]] = {}

        rh("osd_watch", self._h_watch)
        rh("osd_unwatch", self._h_unwatch)
        rh("osd_watch_check", self._h_watch_check)
        rh("osd_notify", self._h_notify)
        rh("ec_shard_put", self._h_ec_shard_put)
        rh("ec_shard_get", self._h_ec_shard_get)
        rh("ec_shard_del", self._h_ec_shard_del)
        self.spawn(self._boot(), name=f"{self.name}:boot")

    # ------------------------------------------------------------------
    # Boot and map plumbing
    # ------------------------------------------------------------------
    def _boot(self) -> Generator:
        yield from self.mon_submit([{
            "op": "map_update", "kind": "osd",
            "actions": [{"action": "set_osd_state", "name": self.name,
                         "state": "up"}]}])
        # Fetch the post-boot map so we see ourselves up.
        m = yield from self.mon_get_map("osd")
        self._adopt_osdmap(m)
        self.booted = True
        self.every(self.PING_INTERVAL, self._ping_tick,
                   name=f"{self.name}:ping")
        self.every(self.SCRUB_INTERVAL, self._scrub_tick,
                   name=f"{self.name}:scrub")
        # After a restart the surviving "disk" may already hold stores
        # with background duties (the ticker itself is volatile).
        if any(s.needs_maintenance for s in self.pgs.values()):
            self._ensure_store_ticker()

    @property
    def osdmap(self) -> Optional[OSDMap]:
        return self.cached_maps.get("osd")

    def stamp_epochs(self, env: Envelope) -> None:
        if self.osdmap is not None:
            env.epochs["osd"] = self.osdmap.epoch

    def observe_epochs(self, env: Envelope) -> None:
        peer_epoch = env.epochs.get("osd")
        if (peer_epoch is not None and self.osdmap is not None
                and peer_epoch > self.osdmap.epoch
                and env.src in self.osdmap.all_osds()):
            # Pull the newer map from the peer that advertised it.
            self.spawn(self._pull_map(env.src),
                       name=f"{self.name}:pullmap")

    def _pull_map(self, peer: str) -> Generator:
        try:
            raw = yield self.call(peer, "osd_map_push", None, timeout=0.5)
        except MalacologyError:
            return
        if raw is not None:
            self._maybe_adopt(raw)

    def _h_map_push(self, src: str, payload: Any) -> Optional[Dict]:
        """Both a getter (payload None) and a push (payload = map)."""
        if payload is None:
            return self.osdmap.to_dict() if self.osdmap else None
        self._maybe_adopt(payload)
        return None

    def on_map_update(self, kind: str, new_map: Any) -> None:
        # Monitor push notification path (MonitorClient already updated
        # the cache with the newer map).
        if kind == "osd":
            self._react_to_new_map(new_map)

    def _maybe_adopt(self, raw: Dict[str, Any]) -> None:
        m = map_from_dict(raw)
        current = self.osdmap
        if current is None or m.epoch > current.epoch:
            self.cached_maps["osd"] = m
            self._adopt_osdmap(m)

    def _adopt_osdmap(self, m: OSDMap) -> None:
        self._react_to_new_map(m)

    def _react_to_new_map(self, m: OSDMap) -> None:
        self._gossip_map(m)
        self._install_interfaces(m)
        self._reconcile_store_types(m)
        if (self.booted and self.alive and not self._reasserting
                and not m.is_up(self.name)):
            # A peer falsely reported us down (a missed ping under
            # packet loss or a gray slowdown).  Tell the monitors we
            # are still here, like Ceph's post-markdown boot message.
            self._reasserting = True
            self.spawn(self._reassert_up(), name=f"{self.name}:reassert")
        self.spawn(self._rebalance_pgs(), name=f"{self.name}:rebalance")

    def _reassert_up(self) -> Generator:
        try:
            yield from self.mon_submit([{
                "op": "map_update", "kind": "osd",
                "actions": [{"action": "set_osd_state",
                             "name": self.name, "state": "up"}]}])
            m = yield from self.mon_get_map("osd")
            self._adopt_osdmap(m)
        except MalacologyError:
            pass  # map flow will trigger another attempt
        finally:
            self._reasserting = False

    # ------------------------------------------------------------------
    # Gossip (paper section 4.4 / Figure 8)
    # ------------------------------------------------------------------
    def _gossip_map(self, m: OSDMap) -> None:
        peers = [o for o in m.up_osds() if o != self.name]
        if not peers:
            return
        fanout = min(self.GOSSIP_FANOUT, len(peers))
        for peer in self._gossip_rng.sample(peers, fanout):
            # osd_map_push is dual-use: MonitorClient call()s it to
            # fetch a map (reply consumed), gossip cast()s it to push
            # one (reply meaningless by design).
            self.cast(peer, "osd_map_push", m.to_dict())  # mal: disable=MAL015 -- dual getter/push handler; gossip needs no reply

    # ------------------------------------------------------------------
    # Dynamic interface installation (Data I/O interface)
    # ------------------------------------------------------------------
    def _install_interfaces(self, m: OSDMap) -> None:
        for name, entry in m.interfaces.items():
            if self._installed_versions.get(name, -1) >= entry["version"]:
                continue
            self._installed_versions[name] = entry["version"]
            self.spawn(
                self._install_one(name, entry),
                name=f"{self.name}:install:{name}")

    def _install_one(self, name: str, entry: Dict[str, Any]) -> Generator:
        delay = min(self.INTERFACE_INSTALL_CAP,
                    self._install_rng.lognormvariate(
                        _ln(self.INTERFACE_INSTALL_MEDIAN),
                        self.INTERFACE_INSTALL_SIGMA))
        yield Timeout(delay)
        if not self.alive:
            return
        try:
            self.registry.install_dynamic(
                name, entry["version"], entry["source"],
                category=entry.get("category", "other"))
            self.perf.incr("interface.install")
        except MalacologyError as exc:
            self.spawn(self.mon_log("ERR",
                                    f"interface {name} install failed: "
                                    f"{exc}"),
                       name=f"{self.name}:logerr")
            return
        if self.interface_live_hook is not None:
            self.interface_live_hook(name, entry["version"], self.sim.now)

    # ------------------------------------------------------------------
    # Per-PG object stores (repro.store)
    # ------------------------------------------------------------------
    def _pg_store(self, pool: str, pgid: int) -> ObjectStore:
        """The PG's store, created on first touch from the pool config."""
        key = (pool, pgid)
        store = self.pgs.get(key)
        if store is None:
            store = self._wrap_store(
                self._build_store(self._pool_cfg(pool)))
            self.pgs[key] = store
            if store.needs_maintenance:
                self._ensure_store_ticker()
        return store

    def _wrap_store(self, store: ObjectStore) -> ObjectStore:
        if self.store_faults is None:
            return store
        return FaultInjectingStore(store, self.store_faults, self.name)

    def set_store_fault_plane(
            self, plane: Optional[StoreFaultPlane]) -> None:
        """Install (or remove) the chaos fault plane on every PG store.

        Wrapping is transparent to schedules — the shim adds no events
        and draws no RNG until the plane's rates are nonzero.
        """
        self.store_faults = plane
        for key in sorted(self.pgs):
            inner = unwrap_store(self.pgs[key])
            self.pgs[key] = self._wrap_store(inner)

    def _pool_cfg(self, pool: str) -> Dict[str, Any]:
        m = self.osdmap
        if m is None or pool not in m.pools:
            # No map yet (e.g. a push raced our boot): default store;
            # _reconcile_store_types migrates it once the map lands.
            return {}
        return m.pool(pool)

    def _build_store(self, cfg: Dict[str, Any]) -> ObjectStore:
        if "ec" in cfg:
            # EC pools keep plain manifests locally; the shard path is
            # its own subsystem and never combines with a backend.
            return make_store(None, None, perf=self.perf)
        return make_store(cfg.get("backend"), cfg.get("cache"),
                          perf=self.perf)

    @staticmethod
    def _store_matches(store: ObjectStore, cfg: Dict[str, Any]) -> bool:
        store = unwrap_store(store)
        backend = None if "ec" in cfg else cfg.get("backend")
        cache = None if "ec" in cfg else cfg.get("cache")
        if isinstance(store, CacheTier) != (cache is not None):
            return False
        base = store.base if isinstance(store, CacheTier) else store
        if backend is None:
            want = "memstore"
        elif isinstance(backend, str):
            want = backend
        else:
            want = backend.get("profile", "memstore")
        return base.profile == want

    def _reconcile_store_types(self, m: OSDMap) -> None:
        """Re-type any PG store that predates its pool's map entry.

        Runs synchronously on map adoption (no events, no RNG): when a
        push raced boot and a PG was materialized with the default
        store, migrate its objects — sorted-oid order — into the
        declared backend.  A no-op on every already-correct store.
        """
        for key in sorted(self.pgs):
            pool, _pgid = key
            if pool not in m.pools:
                continue
            cfg = m.pool(pool)
            store = self.pgs[key]
            if self._store_matches(store, cfg):
                continue
            replacement = self._wrap_store(self._build_store(cfg))
            for oid in sorted(store):
                replacement[oid] = store[oid]
            self.pgs[key] = replacement
            if replacement.needs_maintenance:
                self._ensure_store_ticker()

    def _ensure_store_ticker(self) -> None:
        if self._store_ticker_started or not self.alive:
            return
        self._store_ticker_started = True
        self.every(self.STORE_TICK_INTERVAL, self._store_tick,
                   name=f"{self.name}:store")

    def _store_tick(self) -> None:
        for key in sorted(self.pgs):
            store = self.pgs[key]
            if store.needs_maintenance:
                store.maintenance(self.sim.now)

    def _admin_store_status(self, args: Any) -> Dict[str, Any]:
        """``store.status``: per-PG backend status, optional pool filter."""
        pool_filter = (args or {}).get("pool")
        pgs = {}
        for pool, pgid in sorted(self.pgs):
            if pool_filter is not None and pool != pool_filter:
                continue
            pgs[f"{pool}/{pgid}"] = self.pgs[(pool, pgid)].status()
        return {
            "name": self.name,
            "pgs": pgs,
            "profiles": sorted({s["profile"] for s in pgs.values()}),
        }

    # -- health-check gauges -------------------------------------------
    def _cache_tiers(self) -> List[CacheTier]:
        out = []
        for _, s in sorted(self.pgs.items()):
            s = unwrap_store(s)
            if isinstance(s, CacheTier):
                out.append(s)
        return out

    def _log_stores(self) -> List[LogStructuredStore]:
        out = []
        for _, s in sorted(self.pgs.items()):
            s = unwrap_store(s)
            if isinstance(s, CacheTier):
                s = s.base
            if isinstance(s, LogStructuredStore):
                out.append(s)
        return out

    def _gauge_cache_utilization(self) -> Optional[float]:
        tiers = self._cache_tiers()
        return max(t.utilization() for t in tiers) if tiers else None

    def _gauge_cache_dirty(self) -> Optional[int]:
        tiers = self._cache_tiers()
        return sum(t.dirty_count() for t in tiers) if tiers else None

    def _gauge_log_garbage(self) -> Optional[float]:
        stores = self._log_stores()
        if not stores:
            return None
        return max(s.eligible_garbage_ratio() for s in stores)

    def _gauge_log_compactions(self) -> Optional[int]:
        stores = self._log_stores()
        return sum(s.compactions for s in stores) if stores else None

    # ------------------------------------------------------------------
    # Client I/O path
    # ------------------------------------------------------------------
    def _h_osd_op(self, src: str, payload: Dict[str, Any]) -> Generator:
        pool = payload["pool"]
        oid = payload["oid"]
        ops = payload["ops"]
        m = self.osdmap
        if m is None or not self.booted:
            raise DaemonDown(f"{self.name} still booting")
        if pool not in m.pools:
            raise InvalidArgument(f"pool {pool!r} does not exist")
        pgid = pg_of(oid, m.pool(pool)["pg_num"])
        acting = acting_set(m, pool, pgid)
        if not acting or acting[0] != self.name:
            self.perf.incr("op.not_primary")
            raise NotPrimary(
                f"{self.name} is not primary for {pool}/{pgid} "
                f"(epoch {m.epoch})")
        self.perf.incr("op.in")
        for op in ops:
            if op.get("op") == "exec":
                # Per-objclass accounting: the paper's argument is that
                # co-designed interfaces live *in* the OSD; count them
                # where they run.
                self.perf.incr(
                    f"objclass.{op.get('cls')}.{op.get('method')}")
            else:
                self.perf.incr(f"osdop.{op.get('op')}")
        if "ec" in m.pool(pool):
            result = yield from self._ec_op(pool, pgid, oid, ops,
                                            acting, m.pool(pool)["ec"])
            return result
        store = self._pg_store(pool, pgid)
        obj, read_delay = store.fetch(oid)
        if read_delay > 0:
            # Modeled media service time; MemStore charges 0.0, so
            # default pools add no events here (schedule identity).
            yield Timeout(read_delay)
        results, new_obj, removed = apply_ops(
            obj, oid, ops, self.registry,
            epoch=payload.get("epoch"), now=self.sim.now)
        san = getattr(self.sim, "sanitizers", None)
        if san is not None:
            # The transaction was *accepted*; the epoch-fencing
            # sanitizer checks no stale-epoch zlog op slipped through.
            san.zlog.observe_ops(pool, oid, ops, daemon=self)
        mutated = (removed
                   or (new_obj is not None
                       and (obj is None or new_obj.version != obj.version)))
        if mutated:
            if removed:
                write_delay = store.discard(oid)
            else:
                assert new_obj is not None
                write_delay = store.commit(new_obj)
            if write_delay > 0:
                yield Timeout(write_delay)
            if (self.changelog is not None
                    and pool not in CHANGELOG_EXCLUDED_POOLS):
                self.changelog.emit("object_write", src, pool=pool,
                                    oid=oid, removed=removed)
            yield from self._replicate(pool, pgid, oid, acting[1:],
                                       new_obj, removed)
        return results

    def _replicate(self, pool: str, pgid: int, oid: str,
                   replicas: List[str], new_obj: Optional[StoredObject],
                   removed: bool) -> Generator:
        if not replicas:
            return
        payload = {
            "pool": pool, "pg": pgid, "oid": oid,
            "state": None if removed else new_obj.to_dict(),
            "removed": removed,
        }
        self.perf.incr("repop.tx", len(replicas))
        futs = [self.call(r, "osd_repop", payload,
                          timeout=self.REPOP_TIMEOUT) for r in replicas]
        for rep, fut in zip(replicas, futs):
            try:
                yield fut
            except (TimeoutError_, DaemonDown):
                # Degraded write: continue, and make sure the monitor
                # hears about the unresponsive replica.
                self.spawn(self._report_failure(rep),
                           name=f"{self.name}:report")
            except NotPrimary:
                pass  # replica has a newer map; rebalance will fix us

    def _h_repop(self, src: str, payload: Dict[str, Any]) -> Any:
        m = self.osdmap
        pool, pgid = payload["pool"], payload["pg"]
        if m is not None:
            acting = acting_set(m, pool, pgid)
            if src != (acting[0] if acting else None):
                raise NotPrimary(
                    f"{src} is not primary for {pool}/{pgid} by "
                    f"epoch {m.epoch}")
        self.perf.incr("repop.rx")
        store = self._pg_store(pool, pgid)
        if payload["removed"]:
            delay = store.discard(payload["oid"])
        else:
            delay = store.commit(
                StoredObject.from_dict(payload["state"]))
        if delay > 0:
            # Non-default backends charge their write cost before the
            # ack; MemStore returns 0.0 and the reply stays synchronous.
            return self._ack_after(delay)
        return True

    def _ack_after(self, delay: float) -> Generator:
        yield Timeout(delay)
        return True

    # ------------------------------------------------------------------
    # Recovery / backfill
    # ------------------------------------------------------------------
    def _rebalance_pgs(self) -> Generator:
        """Push PG state to new acting members; drop PGs we left.

        Runs on every map change.  Merging is by per-object version, so
        races between concurrent pushers converge.
        """
        m = self.osdmap
        if m is None:
            return
        self._split_pgs(m)
        for (pool, pgid), objects in list(self.pgs.items()):
            if pool not in m.pools:
                continue
            acting = acting_set(m, pool, pgid)
            if not objects and self.name not in acting:
                # pop, not del: a concurrent rebalance (retry or a
                # newer map's run) may have dropped the key already.
                self.pgs.pop((pool, pgid), None)
                continue
            if not objects:
                continue
            targets = [o for o in acting if o != self.name]
            payload = {
                "pool": pool, "pg": pgid,
                "objects": {oid: obj.to_dict()
                            for oid, obj in objects.items()},
            }
            acked = True
            for target in targets:
                try:
                    self.perf.incr("recovery.push")
                    yield self.call(target, "pg_push", payload,
                                    timeout=self.REPOP_TIMEOUT)
                except MalacologyError:
                    acked = False
            # The map may have advanced while the pushes were in
            # flight (each one yields); re-check membership against
            # the *current* map before letting local data go, or a
            # slow push ack can delete a PG this OSD just re-joined.
            current = self.osdmap
            if current is not None and pool in current.pools:
                cur_acting = acting_set(current, pool, pgid)
            else:
                cur_acting = acting
            covered = set(cur_acting) - {self.name} <= set(targets)
            if (self.name not in cur_acting and acked and targets
                    and covered):
                # We are out of the acting set and the data is safely
                # elsewhere; let it go.
                self.pgs.pop((pool, pgid), None)
            elif not acked or not covered:
                # A push was lost: until the next map change nothing
                # else revisits this PG, so an ex-member could strand
                # acked data forever.  Re-arm one delayed retry.
                self._schedule_rebalance_retry()

    def _schedule_rebalance_retry(self) -> None:
        if self._rebalance_retry_pending or not self.alive:
            return
        self._rebalance_retry_pending = True
        self.spawn(self._rebalance_retry(),
                   name=f"{self.name}:rebalance-retry")

    def _rebalance_retry(self) -> Generator:
        yield Timeout(self.REBALANCE_RETRY)
        self._rebalance_retry_pending = False
        if self.alive:
            yield from self._rebalance_pgs()

    def _split_pgs(self, m) -> None:
        """Placement-group splitting (paper section 4.4).

        When a pool's pg_num changes, objects re-hash into new PGs;
        each OSD re-shards its local store and the normal rebalance
        push then converges the cluster on the new layout, all in the
        background and peer-to-peer — the monitors only changed a
        number in the map.
        """
        for (pool, pgid), objects in list(self.pgs.items()):
            if pool not in m.pools:
                continue
            pg_num = m.pool(pool)["pg_num"]
            for oid in list(objects):
                new_pg = pg_of(oid, pg_num)
                if new_pg != pgid:
                    self._pg_store(pool, new_pg)[oid] = objects.pop(oid)

    def _h_pg_push(self, src: str, payload: Dict[str, Any]) -> bool:
        self.perf.incr("recovery.rx")
        pg = self._pg_store(payload["pool"], payload["pg"])
        force = payload.get("force", False)
        for oid, state in payload["objects"].items():
            incoming = StoredObject.from_dict(state)
            current = pg.get(oid)
            # Normal backfill merges by version; scrub repair forces the
            # primary's state in (silent corruption keeps the version).
            if force or current is None or incoming.version > current.version:
                pg[oid] = incoming
        return True

    # ------------------------------------------------------------------
    # Erasure-coded pools (paper section 4.4)
    # ------------------------------------------------------------------
    #: Ops an EC pool supports.  Like Ceph's EC pools: bytestream only —
    #: no omap, no xattr mutation, no object-class execution.
    EC_ALLOWED_OPS = frozenset({"create", "assert_exists", "write_full",
                                "read", "stat", "remove"})

    def _ec_op(self, pool: str, pgid: int, oid: str,
               ops: List[Dict[str, Any]], acting: List[str],
               profile: Dict[str, int]) -> Generator:
        from repro.rados.erasure import ErasureCodec

        for op in ops:
            if op.get("op") not in self.EC_ALLOWED_OPS:
                raise InvalidArgument(
                    f"EC pool {pool!r} does not support op "
                    f"{op.get('op')!r} (bytestream only)")
        codec = ErasureCodec(profile["k"], profile["m"])
        pg = self._pg_store(pool, pgid)
        manifest = pg.get(oid)
        base: Optional[StoredObject] = None
        if manifest is not None:
            data = yield from self._ec_gather(pool, oid, codec, acting,
                                              manifest)
            base = StoredObject(oid)
            base.write(0, data)
            base.version = manifest.xattrs.get("ec.version", 0)
        results, new_obj, removed = apply_ops(
            base, oid, ops, self.registry, now=self.sim.now)
        mutated = (removed or (new_obj is not None and (
            base is None or new_obj.version != base.version)))
        if not mutated:
            return results
        if removed:
            pg.pop(oid, None)
            for i, member in enumerate(acting):
                self.cast(member, "ec_shard_del",
                          {"pool": pool, "oid": oid, "index": i})
            return results
        assert new_obj is not None
        data = bytes(new_obj.data)
        version = (manifest.xattrs.get("ec.version", 0) + 1
                   if manifest is not None else 1)
        shards = codec.encode(data)
        futs = []
        for i, member in enumerate(acting):
            payload = {"pool": pool, "oid": oid, "index": i,
                       "shard": shards[i], "version": version}
            if member == self.name:
                self._h_ec_shard_put(self.name, payload)
            else:
                futs.append((member, self.call(
                    member, "ec_shard_put", payload,
                    timeout=self.REPOP_TIMEOUT)))
        for member, fut in futs:
            try:
                yield fut
            except (TimeoutError_, DaemonDown):
                self.spawn(self._report_failure(member),
                           name=f"{self.name}:report")
        new_manifest = StoredObject(oid)
        new_manifest.xattr_set("ec.size", len(data))
        new_manifest.xattr_set("ec.version", version)
        pg[oid] = new_manifest
        return results

    def _ec_gather(self, pool: str, oid: str, codec, acting: List[str],
                   manifest: StoredObject) -> Generator:
        """Collect any k shards (tolerating m losses) and reconstruct."""
        length = manifest.xattrs.get("ec.size", 0)
        version = manifest.xattrs.get("ec.version", 0)
        shards: Dict[int, bytes] = {}
        mine = self.ec_shards.get((pool, oid, acting.index(self.name))) \
            if self.name in acting else None
        if mine is not None and mine["version"] == version:
            shards[acting.index(self.name)] = mine["shard"]
        for i, member in enumerate(acting):
            if len(shards) >= codec.k:
                break
            if i in shards or member == self.name:
                continue
            try:
                reply = yield self.call(
                    member, "ec_shard_get",
                    {"pool": pool, "oid": oid, "index": i},
                    timeout=self.REPOP_TIMEOUT)
            except MalacologyError:
                continue
            if reply is not None and reply["version"] == version:
                shards[i] = reply["shard"]
        return codec.decode(shards, length)

    def _h_ec_shard_put(self, src: str, payload: Dict[str, Any]) -> bool:
        key = (payload["pool"], payload["oid"], payload["index"])
        current = self.ec_shards.get(key)
        if current is None or payload["version"] > current["version"]:
            self.ec_shards[key] = {"shard": payload["shard"],
                                   "version": payload["version"]}
        return True

    def _h_ec_shard_get(self, src: str,
                        payload: Dict[str, Any]) -> Optional[Dict]:
        entry = self.ec_shards.get(
            (payload["pool"], payload["oid"], payload["index"]))
        return dict(entry) if entry is not None else None

    def _h_ec_shard_del(self, src: str, payload: Dict[str, Any]) -> None:
        self.ec_shards.pop(
            (payload["pool"], payload["oid"], payload["index"]), None)

    # ------------------------------------------------------------------
    # Watch / notify
    # ------------------------------------------------------------------
    def _require_primary(self, pool: str, oid: str) -> None:
        m = self.osdmap
        if m is None or pool not in m.pools:
            raise InvalidArgument(f"pool {pool!r} unknown")
        pgid = pg_of(oid, m.pool(pool)["pg_num"])
        acting = acting_set(m, pool, pgid)
        if not acting or acting[0] != self.name:
            raise NotPrimary(f"{self.name} not primary for {pool}/{oid}")

    def _h_watch(self, src: str, payload: Dict[str, Any]) -> bool:
        """Register the caller for notifications on one object.

        Watches are volatile (lost on OSD failover, like librados
        watch sessions) — clients re-establish after errors.
        """
        self._require_primary(payload["pool"], payload["oid"])
        key = (payload["pool"], payload["oid"])
        self.watchers.setdefault(key, set()).add(src)
        return True

    def _h_unwatch(self, src: str, payload: Dict[str, Any]) -> bool:
        key = (payload["pool"], payload["oid"])
        entry = self.watchers.get(key)
        if entry is not None:
            entry.discard(src)
            if not entry:
                del self.watchers[key]
        return True

    def _h_watch_check(self, src: str, payload: Dict[str, Any]) -> bool:
        """Is the caller currently registered as a watcher here?

        Clients' auto-re-watch guard probes this cheaply; ``False``
        (or ``NotPrimary`` after a failover) tells the client its watch
        session died and must be re-established.
        """
        self._require_primary(payload["pool"], payload["oid"])
        key = (payload["pool"], payload["oid"])
        return src in self.watchers.get(key, ())

    def _h_notify(self, src: str, payload: Dict[str, Any]) -> int:
        """Fan a notification out to every watcher; returns the count."""
        self._require_primary(payload["pool"], payload["oid"])
        key = (payload["pool"], payload["oid"])
        targets = sorted(self.watchers.get(key, ()))
        for watcher in targets:
            self.cast(watcher, "watch_event", {
                "pool": payload["pool"], "oid": payload["oid"],
                "payload": payload.get("payload"), "notifier": src,
            })
        return len(targets)

    # ------------------------------------------------------------------
    # Failure detection
    # ------------------------------------------------------------------
    def _ping_tick(self) -> Optional[Generator]:
        m = self.osdmap
        if m is None:
            return None
        peers = [o for o in m.up_osds() if o != self.name]
        if not peers:
            return None
        target = self._gossip_rng.choice(peers)
        return self._ping_one(target)

    def _ping_one(self, target: str) -> Generator:
        try:
            yield self.call(target, "osd_ping", None,
                            timeout=self.PING_TIMEOUT)
            self._reported_down.discard(target)
        except (TimeoutError_, DaemonDown):
            yield from self._report_failure(target)

    def _report_failure(self, target: str) -> Generator:
        m = self.osdmap
        if m is None or not m.is_up(target):
            return
        if target in self._reported_down:
            return
        self._reported_down.add(target)
        try:
            yield from self.mon_submit([{
                "op": "map_update", "kind": "osd",
                "actions": [{"action": "set_osd_state", "name": target,
                             "state": "down"}]}])
        except MalacologyError:
            self._reported_down.discard(target)

    # ------------------------------------------------------------------
    # Scrub
    # ------------------------------------------------------------------
    def _scrub_tick(self) -> Optional[Generator]:
        m = self.osdmap
        if m is None or not self.pgs:
            return None
        keys = sorted(self.pgs)
        key = keys[self._scrub_cursor % len(keys)]
        self._scrub_cursor += 1
        pool, pgid = key
        acting = acting_set(m, pool, pgid)
        if not acting or acting[0] != self.name:
            return None
        return self._scrub_pg(pool, pgid, acting[1:])

    def _scrub_pg(self, pool: str, pgid: int,
                  replicas: List[str]) -> Generator:
        self.perf.incr("scrub.run")
        mine = {oid: obj.digest()
                for oid, obj in self.pgs.get((pool, pgid), {}).items()}
        for rep in replicas:
            try:
                theirs = yield self.call(rep, "pg_digest",
                                         {"pool": pool, "pg": pgid},
                                         timeout=self.REPOP_TIMEOUT)
            except MalacologyError:
                continue
            if theirs != mine:
                # Repair by re-pushing authoritative (primary) state.
                yield from self._repair_replica(pool, pgid, rep)

    def _repair_replica(self, pool: str, pgid: int, rep: str) -> Generator:
        payload = {
            "pool": pool, "pg": pgid, "force": True,
            "objects": {oid: obj.to_dict()
                        for oid, obj in self.pgs.get((pool, pgid),
                                                     {}).items()},
        }
        try:
            yield self.call(rep, "pg_push", payload,
                            timeout=self.REPOP_TIMEOUT)
            self.perf.incr("scrub.repair")
            yield from self.mon_log(
                "WRN", f"scrub repaired {pool}/{pgid} on {rep}")
        except MalacologyError:
            return

    def _h_pg_digest(self, src: str, payload: Dict[str, Any]) -> Dict:
        pg = self.pgs.get((payload["pool"], payload["pg"]), {})
        return {oid: obj.digest() for oid, obj in pg.items()}

    def _admin_scrub_trigger(self, args: Any) -> Dict[str, Any]:
        """``scrub.trigger``: scrub every PG this OSD leads, now.

        The periodic ticker visits one PG per 30s tick; chaos runs
        need all replicas verified before their oracles read the end
        state.  Spawns one scrub per led PG (optional ``pool`` filter)
        and returns how many were started; callers run the sim to let
        them finish.
        """
        m = self.osdmap
        pool_filter = (args or {}).get("pool")
        started = 0
        if m is not None and self.alive:
            for pool, pgid in sorted(self.pgs):
                if pool_filter is not None and pool != pool_filter:
                    continue
                acting = acting_set(m, pool, pgid)
                if not acting or acting[0] != self.name:
                    continue
                self.spawn(self._scrub_pg(pool, pgid, acting[1:]),
                           name=f"{self.name}:scrub-trigger")
                started += 1
        return {"name": self.name, "scrubs_started": started}

    # ------------------------------------------------------------------
    # Crash / restart
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        super().on_crash()  # telemetry is volatile
        # pgs (disk) survive; everything else is volatile.
        self.booted = False
        self._store_ticker_started = False  # ticker proc died with us
        self.watchers = {}
        self._reported_down = set()
        self._reasserting = False  # the spawned procs died with us
        self._rebalance_retry_pending = False
        self.cached_maps.pop("osd", None)
        # Dynamic classes live in memory: reload on restart from the map.
        self._installed_versions = {}
        self.registry = ClassRegistry()
        register_all(self.registry)

    def on_restart(self) -> None:
        if self.changelog is not None:
            # New incarnation: fresh producer identity so the shard
            # class never mistakes the reset pseq counter for replays.
            self.changelog.on_daemon_restart()
        self.spawn(self._boot(), name=f"{self.name}:reboot")


def _ln(x: float) -> float:
    import math

    return math.log(x)
