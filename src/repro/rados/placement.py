"""Object placement: PG mapping and CRUSH-like acting-set selection.

Placement is a pure function of (OSD map, pool, object id): any client
or daemon with the same map epoch computes the same primary and
replicas, with no central lookup — the property RADOS is built on.

Objects hash into *placement groups* (PGs); each PG maps onto an
ordered *acting set* of OSDs via Highest-Random-Weight (rendezvous)
hashing, which gives CRUSH's key property: when membership changes,
only the PGs touching the changed OSD move.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Tuple

from repro.errors import InvalidArgument
from repro.monitor.maps import OSDMap


def stable_hash(text: str) -> int:
    """A process-independent 64-bit hash (Python's builtin is salted)."""
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big")


def pg_of(oid: str, pg_num: int) -> int:
    """Placement group of an object within its pool."""
    if pg_num <= 0:
        raise InvalidArgument(f"pg_num must be positive, got {pg_num}")
    return stable_hash(oid) % pg_num


def acting_set(osdmap: OSDMap, pool: str, pgid: int) -> List[str]:
    """Ordered acting set for one PG: primary first, then replicas.

    Rendezvous hashing over the *up* OSDs: each OSD scores
    ``hash(pool, pgid, osd)`` and the top ``size`` win.  Downed OSDs
    simply drop out of the ranking, promoting the next-best — the same
    "acting set" adjustment Ceph makes during failure.
    """
    cfg = osdmap.pool(pool)
    size = cfg["size"]
    candidates = osdmap.up_osds()
    scored = sorted(
        candidates,
        key=lambda osd: stable_hash(f"{pool}/{pgid}/{osd}"),
        reverse=True,
    )
    return scored[:size]


def primary_of(osdmap: OSDMap, pool: str, pgid: int) -> Optional[str]:
    acting = acting_set(osdmap, pool, pgid)
    return acting[0] if acting else None


def locate(osdmap: OSDMap, pool: str, oid: str) -> Tuple[int, List[str]]:
    """(pgid, acting set) for an object."""
    pgid = pg_of(oid, osdmap.pool(pool)["pg_num"])
    return pgid, acting_set(osdmap, pool, pgid)
