"""A block-device image layer over RADOS (the "block" API of Figure 1).

Malacology sits *alongside* the traditional user-facing APIs — file,
block, object (Figure 1).  This package is the block one: an RBD-like
thin-provisioned image striped over fixed-size RADOS objects, with its
metadata maintained by the bundled ``kvstore``/``version`` object
classes (an in-tree consumer of the Data I/O interface, like the
"Snapshots in the block device" example in Table 1).
"""

from repro.rbd.image import Image

__all__ = ["Image"]
