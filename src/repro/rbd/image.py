"""RBD-like images: thin-provisioned virtual block devices on RADOS.

Layout (mirroring librbd's):

* a *header* object ``rbd_header.<name>`` whose omap holds the image
  metadata (size, object_size), guarded by the ``version`` object
  class so concurrent administrative updates are optimistic;
* *data* objects ``rbd_data.<name>.<n>``, created lazily on first
  write (thin provisioning); reads of never-written ranges return
  zeros.

All methods are generators driven on a full-stack client.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.errors import InvalidArgument, NotFound


class Image:
    """Handle on one block image."""

    DEFAULT_OBJECT_SIZE = 64 * 1024
    POOL = "data"

    def __init__(self, client: Any, name: str):
        if not name or "/" in name:
            raise InvalidArgument(f"bad image name {name!r}")
        self.client = client
        self.name = name
        self.size = 0
        self.object_size = self.DEFAULT_OBJECT_SIZE

    @property
    def header_object(self) -> str:
        return f"rbd_header.{self.name}"

    def data_object(self, index: int) -> str:
        return f"rbd_data.{self.name}.{index:08x}"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def create(self, size: int,
               object_size: Optional[int] = None) -> Generator:
        if size < 0:
            raise InvalidArgument("negative image size")
        object_size = object_size or self.DEFAULT_OBJECT_SIZE
        if object_size <= 0:
            raise InvalidArgument("object_size must be positive")
        yield from self.client.rados_op(self.POOL, self.header_object, [
            {"op": "create", "exclusive": True},
            {"op": "exec", "cls": "kvstore", "method": "put",
             "args": {"set": {"size": size, "object_size": object_size}}},
            {"op": "exec", "cls": "version", "method": "bump", "args": {}},
        ])
        self.size = size
        self.object_size = object_size

    def open(self) -> Generator:
        results = yield from self.client.rados_op(
            self.POOL, self.header_object,
            [{"op": "exec", "cls": "kvstore", "method": "get",
              "args": {"keys": ["size", "object_size"]}}])
        values = results[0]["values"]
        if "size" not in values:
            raise NotFound(f"image {self.name!r} has no header")
        self.size = values["size"]
        self.object_size = values["object_size"]

    def resize(self, new_size: int) -> Generator:
        """Grow or shrink; shrinking trims whole objects past the end."""
        if new_size < 0:
            raise InvalidArgument("negative image size")
        old_size = self.size
        yield from self.client.rados_exec(
            self.POOL, self.header_object, "kvstore", "put",
            {"set": {"size": new_size}})
        self.size = new_size
        if new_size < old_size:
            first_dead = (new_size + self.object_size - 1) \
                // self.object_size
            last_old = (old_size - 1) // self.object_size
            for index in range(first_dead, last_old + 1):
                try:
                    yield from self.client.rados_remove(
                        self.POOL, self.data_object(index))
                except NotFound:
                    pass  # thin-provisioned hole

    def remove(self) -> Generator:
        last = (self.size - 1) // self.object_size if self.size else -1
        for index in range(last + 1):
            try:
                yield from self.client.rados_remove(
                    self.POOL, self.data_object(index))
            except NotFound:
                pass
        yield from self.client.rados_remove(self.POOL, self.header_object)
        self.size = 0

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0:
            raise InvalidArgument("negative offset/length")
        if offset + length > self.size:
            raise InvalidArgument(
                f"I/O past end of image ({offset}+{length} > {self.size})")

    def write(self, offset: int, data: bytes) -> Generator:
        self._check_range(offset, len(data))
        cursor = offset
        remaining = data
        while remaining:
            index, obj_off = divmod(cursor, self.object_size)
            chunk = remaining[: self.object_size - obj_off]
            yield from self.client.rados_write(
                self.POOL, self.data_object(index), obj_off, chunk)
            cursor += len(chunk)
            remaining = remaining[len(chunk):]

    def read(self, offset: int, length: int) -> Generator:
        self._check_range(offset, length)
        out = bytearray()
        cursor = offset
        end = offset + length
        while cursor < end:
            index, obj_off = divmod(cursor, self.object_size)
            want = min(self.object_size - obj_off, end - cursor)
            try:
                chunk = yield from self.client.rados_read(
                    self.POOL, self.data_object(index), obj_off, want)
            except NotFound:
                chunk = b""  # thin-provisioned hole reads as zeros
            out.extend(chunk)
            out.extend(b"\x00" * (want - len(chunk)))
            cursor += want
        return bytes(out)

    def __repr__(self) -> str:
        return f"Image({self.name!r}, {self.size}B/{self.object_size}B)"
