"""Deterministic discrete-event simulation kernel.

This package is the substrate substitute for the paper's physical
cluster: daemons (monitors, OSDs, metadata servers) run as cooperative
generator-based processes over a simulated clock, exchanging messages
through a latency-modelled network.  Runs are fully deterministic for a
given seed, which makes every benchmark and test reproducible.
"""

from repro.sim.event import Future, Timeout
from repro.sim.kernel import Process, Simulator
from repro.sim.network import (
    FixedLatency,
    LogNormalLatency,
    Network,
    ScaledLatency,
    UniformLatency,
)
from repro.sim.failure import FailureInjector

__all__ = [
    "Future",
    "Timeout",
    "Process",
    "Simulator",
    "Network",
    "FixedLatency",
    "UniformLatency",
    "LogNormalLatency",
    "ScaledLatency",
    "FailureInjector",
]
