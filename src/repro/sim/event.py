"""Yieldable primitives for simulation processes.

A process is a Python generator that ``yield``s one of:

* :class:`Timeout` — sleep for a span of simulated time;
* :class:`Future` — suspend until another process resolves it;
* another process — suspend until that process finishes;
* ``None`` — yield the (virtual) CPU and resume at the same instant.

The kernel (:mod:`repro.sim.kernel`) interprets these; this module has
no dependency on the kernel so daemon code can construct futures freely.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional


class Timeout:
    """Sleep for ``delay`` seconds of simulated time when yielded."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        self.delay = delay

    def __repr__(self) -> str:
        return f"Timeout({self.delay!r})"


class Future:
    """A one-shot value container that processes can wait on.

    Exactly one of :meth:`resolve` or :meth:`fail` may be called; a
    second settlement attempt raises, because double-settling almost
    always indicates a protocol bug (e.g. a duplicate RPC reply).
    ``settle_if_pending`` exists for the rare legitimate race — an RPC
    timeout firing just as the reply arrives.
    """

    __slots__ = ("_done", "_value", "_error", "_callbacks", "name",
                 "had_waiters")

    def __init__(self, name: str = ""):
        self._done = False
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self._callbacks: List[Callable[["Future"], None]] = []
        self.name = name
        #: True once any callback was ever attached; the kernel uses this
        #: to distinguish orphaned process failures from handled ones.
        self.had_waiters = False

    @property
    def done(self) -> bool:
        return self._done

    @property
    def failed(self) -> bool:
        return self._done and self._error is not None

    @property
    def error(self) -> Optional[BaseException]:
        return self._error

    def result(self) -> Any:
        """Return the value, re-raising the stored error if failed."""
        if not self._done:
            raise RuntimeError(f"future {self.name!r} not settled")
        if self._error is not None:
            raise self._error
        return self._value

    def resolve(self, value: Any = None) -> None:
        if self._done:
            raise RuntimeError(f"future {self.name!r} already settled")
        self._done = True
        self._value = value
        self._fire()

    def fail(self, error: BaseException) -> None:
        if self._done:
            raise RuntimeError(f"future {self.name!r} already settled")
        self._done = True
        self._error = error
        self._fire()

    def resolve_if_pending(self, value: Any = None) -> bool:
        """Resolve unless already settled; returns True if it acted."""
        if self._done:
            return False
        self.resolve(value)
        return True

    def fail_if_pending(self, error: BaseException) -> bool:
        """Fail unless already settled; returns True if it acted."""
        if self._done:
            return False
        self.fail(error)
        return True

    def add_callback(self, fn: Callable[["Future"], None]) -> None:
        """Invoke ``fn(self)`` once settled (immediately if already)."""
        self.had_waiters = True
        if self._done:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:
        state = "pending"
        if self._done:
            state = f"failed:{self._error!r}" if self._error else "resolved"
        return f"Future({self.name!r}, {state})"


def gather(futures: List[Future]) -> Future:
    """Return a future resolving to a list of results once all settle.

    Fails with the first error encountered (remaining results are
    discarded), mirroring ``asyncio.gather`` semantics.  Used by the
    replication layer to wait for all replica acks.
    """
    out = Future(name="gather")
    if not futures:
        out.resolve([])
        return out
    remaining = [len(futures)]

    def _one_done(_: Future) -> None:
        if out.done:
            return
        for f in futures:
            if f.done and f.failed:
                out.fail_if_pending(f.error)  # type: ignore[arg-type]
                return
        remaining[0] -= 1
        if remaining[0] == 0:
            out.resolve([f.result() for f in futures])

    for f in futures:
        f.add_callback(_one_done)
    return out
