"""Failure injection: crashes, restarts, message loss, and flapping.

The evaluation's recovery claims (sequencer recovery, Mantle policy
durability across MDS failure, OSD re-replication) are only credible if
failures are injectable and deterministic.  The injector works purely
through public daemon/network hooks so it cannot reach into state a
real fault could not destroy.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Optional, Protocol, Tuple

from repro.sim.kernel import Simulator
from repro.sim.network import Network, ScaledLatency

#: Envelope kinds safe to duplicate.  Requests are excluded: the RPC
#: layer has no request-id dedup (real messengers resend over TCP, they
#: do not re-execute), so a duplicated non-idempotent request would be
#: applied twice — a fault no real network can produce.  Duplicate
#: responses and casts are exactly what UDP-like delivery allows, and
#: the protocols must (and do) tolerate them.  String literals rather
#: than an import from ``repro.msg`` to keep ``repro.sim`` the bottom
#: layer of the package graph.
_DUP_SAFE_KINDS = ("cast", "response")


class Crashable(Protocol):
    """Daemons expose crash/restart so faults go through one interface."""

    name: str

    def crash(self) -> None: ...

    def restart(self) -> None: ...


class Pausable(Protocol):
    """Daemons whose background tickers can be frozen (gray failure)."""

    name: str

    def pause_tickers(self) -> None: ...

    def resume_tickers(self) -> None: ...


class FailureInjector:
    """Deterministic fault scheduler for a simulation run.

    All methods may be called before ``sim.run``; faults fire at their
    scheduled simulated times.  The injector records every fault it
    fires in :attr:`log` so tests can assert on exact fault timing.
    """

    def __init__(self, sim: Simulator, network: Network):
        self.sim = sim
        self.network = network
        self._drop_rates: Dict[Tuple[str, str], float] = {}
        self._rng = sim.rng("failures")
        self.log: List[Tuple[float, str, str]] = []
        self.network.drop_hook = self._should_drop
        # Chaos-plane knobs (duplication / reordering / corruption).
        # Each draws from its own named stream so enabling one cannot
        # perturb the others or the base "failures" loss sequence, and
        # the hook is installed lazily so a plain injector leaves the
        # network's fast path untouched.
        self._dup_rate = 0.0
        self._reorder_rate = 0.0
        self._reorder_spread = 0.0
        self._corrupt_rate = 0.0
        self._corrupt_detected = True
        self._dup_rng = sim.rng("failures:dup")
        self._reorder_rng = sim.rng("failures:reorder")
        self._corrupt_rng = sim.rng("failures:corrupt")
        #: Endpoints currently slowed by :meth:`slow_at` (gray failure).
        self._slowed: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Crash / restart
    # ------------------------------------------------------------------
    def crash_at(self, t: float, daemon: Crashable) -> None:
        """Hard-stop ``daemon`` at simulated time ``t``."""
        self.sim.schedule(max(0.0, t - self.sim.now), self._crash, daemon)

    def restart_at(self, t: float, daemon: Crashable) -> None:
        """Bring ``daemon`` back at simulated time ``t``."""
        self.sim.schedule(max(0.0, t - self.sim.now), self._restart, daemon)

    def flap(self, daemon: Crashable, down_at: float,
             up_at: float) -> None:
        """Crash then restart — the classic transient failure."""
        if up_at <= down_at:
            raise ValueError("restart must come after crash")
        self.crash_at(down_at, daemon)
        self.restart_at(up_at, daemon)

    def _crash(self, daemon: Crashable) -> None:
        self.log.append((self.sim.now, "crash", daemon.name))
        daemon.crash()

    def _restart(self, daemon: Crashable) -> None:
        self.log.append((self.sim.now, "restart", daemon.name))
        daemon.restart()

    # ------------------------------------------------------------------
    # Message loss
    # ------------------------------------------------------------------
    def set_loss(self, src: str, dst: str, rate: float) -> None:
        """Drop messages src->dst with the given probability.

        Unidirectional by design: asymmetric loss is the nastier and
        more realistic case for lease protocols.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0,1], got {rate}")
        if rate == 0.0:
            self._drop_rates.pop((src, dst), None)
        else:
            self._drop_rates[(src, dst)] = rate

    def set_loss_everywhere(self, rate: float) -> None:
        """Uniform background loss on every link (wildcard entry)."""
        self.set_loss("*", "*", rate)

    def clear_loss(self) -> None:
        self._drop_rates.clear()

    def _should_drop(self, src: str, dst: str) -> bool:
        # Most-specific match wins: exact pair, then per-endpoint
        # wildcards, then the global wildcard.
        for key in ((src, dst), (src, "*"), ("*", dst), ("*", "*")):
            if key in self._drop_rates:
                rate = self._drop_rates[key]
                break
        else:
            return False
        if rate <= 0.0:
            return False
        dropped = self._rng.random() < rate
        if dropped:
            self.log.append((self.sim.now, "drop", f"{src}->{dst}"))
        return dropped

    # ------------------------------------------------------------------
    # Partitions (thin wrappers so faults are logged in one place)
    # ------------------------------------------------------------------
    def partition_at(self, t: float, a: str, b: str) -> None:
        self.sim.schedule(max(0.0, t - self.sim.now),
                          self._partition, a, b)

    def heal_at(self, t: float, a: str, b: str) -> None:
        self.sim.schedule(max(0.0, t - self.sim.now), self._heal, a, b)

    def partition_oneway_at(self, t: float, src: str, dst: str) -> None:
        """Block only ``src`` -> ``dst`` at time ``t`` (asymmetric link)."""
        self.sim.schedule(max(0.0, t - self.sim.now),
                          self._partition_oneway, src, dst)

    def heal_oneway_at(self, t: float, src: str, dst: str) -> None:
        self.sim.schedule(max(0.0, t - self.sim.now),
                          self._heal_oneway, src, dst)

    def heal_all_at(self, t: float) -> None:
        self.sim.schedule(max(0.0, t - self.sim.now), self._heal_all)

    def _partition(self, a: str, b: str) -> None:
        self.log.append((self.sim.now, "partition", f"{a}|{b}"))
        self.network.partition(a, b)

    def _heal(self, a: str, b: str) -> None:
        self.log.append((self.sim.now, "heal", f"{a}|{b}"))
        self.network.heal(a, b)

    def _partition_oneway(self, src: str, dst: str) -> None:
        self.log.append((self.sim.now, "partition", f"{src}->{dst}"))
        self.network.partition_oneway(src, dst)

    def _heal_oneway(self, src: str, dst: str) -> None:
        self.log.append((self.sim.now, "heal", f"{src}->{dst}"))
        self.network.heal_oneway(src, dst)

    def _heal_all(self) -> None:
        self.log.append((self.sim.now, "heal", "*"))
        self.network.heal_all()

    # ------------------------------------------------------------------
    # Gray failures: slow-but-alive daemons
    # ------------------------------------------------------------------
    def slow_at(self, t: float, name: str, factor: float) -> None:
        """Scale all latency to/from ``name`` by ``factor`` at time ``t``.

        The daemon keeps running and answering — just late.  This is
        the failure mode detectors handle worst: nothing is down, so
        nothing is marked failed, yet every request through the slow
        node eats the scaled delay.
        """
        if factor <= 0:
            raise ValueError("slowdown factor must be positive")
        self.sim.schedule(max(0.0, t - self.sim.now),
                          self._slow, name, factor)

    def unslow_at(self, t: float, name: str) -> None:
        self.sim.schedule(max(0.0, t - self.sim.now), self._unslow, name)

    def _slow(self, name: str, factor: float) -> None:
        self.log.append((self.sim.now, "slow", f"{name}x{factor:g}"))
        self._slowed[name] = factor
        self.network.set_latency_override(
            name, ScaledLatency(self.network.latency, factor))

    def _unslow(self, name: str) -> None:
        if self._slowed.pop(name, None) is None:
            return
        self.log.append((self.sim.now, "unslow", name))
        self.network.set_latency_override(name, None)

    def clear_slowdowns(self) -> None:
        """Remove every active slowdown immediately."""
        for name in sorted(self._slowed):
            self._unslow(name)

    def pause_at(self, t: float, daemon: Pausable) -> None:
        """Freeze ``daemon``'s background tickers at time ``t``.

        Models a stalled event loop (GC pause, disk stall): the daemon
        still answers requests already in flight but stops initiating
        heartbeats, scrubs, and other periodic work.
        """
        self.sim.schedule(max(0.0, t - self.sim.now), self._pause, daemon)

    def resume_at(self, t: float, daemon: Pausable) -> None:
        self.sim.schedule(max(0.0, t - self.sim.now), self._resume, daemon)

    def _pause(self, daemon: Pausable) -> None:
        self.log.append((self.sim.now, "pause", daemon.name))
        daemon.pause_tickers()

    def _resume(self, daemon: Pausable) -> None:
        self.log.append((self.sim.now, "resume", daemon.name))
        daemon.resume_tickers()

    # ------------------------------------------------------------------
    # Message chaos: duplication, reordering, corruption
    # ------------------------------------------------------------------
    def set_duplication(self, rate: float) -> None:
        """Duplicate casts/responses with the given probability.

        The copy is delivered a little later than the original (an
        extra latency draw), which also exercises reordering between
        the twins.  Requests are never duplicated — see
        ``_DUP_SAFE_KINDS``.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"duplication rate must be in [0,1], got {rate}")
        self._dup_rate = rate
        self._sync_chaos_hook()

    def set_reorder(self, rate: float, spread: float = 4.0) -> None:
        """Delay a random ``rate`` fraction of messages by up to
        ``spread`` extra latency multiples, forcing reordering well
        beyond what the base latency jitter produces.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"reorder rate must be in [0,1], got {rate}")
        if spread < 0:
            raise ValueError("spread must be non-negative")
        self._reorder_rate = rate
        self._reorder_spread = spread
        self._sync_chaos_hook()

    def set_corruption(self, rate: float, detected: bool = True) -> None:
        """Corrupt message payloads with the given probability.

        ``detected=True`` (default) models checksummed transports: the
        receiver discards the mangled frame, so corruption degrades to
        loss — the only corruption a CRC-protected wire lets through to
        the application is none.  ``detected=False`` models the rare
        undetected flip: the payload is mutated in place and delivered,
        which no protocol here is expected to survive — it exists to
        demonstrate that the oracles catch silent wire corruption.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"corruption rate must be in [0,1], got {rate}")
        self._corrupt_rate = rate
        self._corrupt_detected = detected
        self._sync_chaos_hook()

    def clear_chaos(self) -> None:
        """Disable duplication, reordering, and corruption."""
        self._dup_rate = self._reorder_rate = self._corrupt_rate = 0.0
        self._sync_chaos_hook()

    def _sync_chaos_hook(self) -> None:
        # Install only while some knob is live: an idle injector must
        # leave the network send path byte-identical to pre-chaos runs.
        if self._dup_rate or self._reorder_rate or self._corrupt_rate:
            self.network.chaos_hook = self._chaos_plan
        elif self.network.chaos_hook == self._chaos_plan:
            # == not `is`: each attribute access builds a fresh bound
            # method, so identity would never match and the hook would
            # stay installed forever.
            self.network.chaos_hook = None

    def _chaos_plan(self, src: str, dst: str, envelope: Any,
                    delay: float) -> Optional[List[Tuple[float, Any]]]:
        """Decide this message's fate; None means deliver normally."""
        touched = False
        if self._corrupt_rate and (
                self._corrupt_rng.random() < self._corrupt_rate):
            self.network.messages_corrupted += 1
            if self._corrupt_detected:
                # Receiver-side CRC catches it; the frame is dropped.
                self.log.append(
                    (self.sim.now, "corrupt-drop", f"{src}->{dst}"))
                return []
            envelope = self._mangle(envelope)
            self.log.append((self.sim.now, "corrupt", f"{src}->{dst}"))
            touched = True
        if self._reorder_rate and (
                self._reorder_rng.random() < self._reorder_rate):
            delay += delay * self._reorder_rng.uniform(
                0.0, self._reorder_spread)
            self.log.append((self.sim.now, "reorder", f"{src}->{dst}"))
            touched = True
        plan = [(delay, envelope)]
        if (self._dup_rate
                and getattr(envelope, "kind", None) in _DUP_SAFE_KINDS
                and self._dup_rng.random() < self._dup_rate):
            extra = delay + self.network.latency.sample(
                src, dst, self._dup_rng)
            plan.append((extra, copy.deepcopy(envelope)))
            self.log.append((self.sim.now, "duplicate", f"{src}->{dst}"))
            touched = True
        return plan if touched else None

    @staticmethod
    def _mangle(envelope: Any) -> Any:
        """Flip one bit somewhere in the payload (undetected corruption).

        Works on a deep copy; integers, floats, strings, and bytes
        leaves are all fair game.  If the payload has no mutable leaf
        the message id is flipped instead — still a corrupt frame.
        """
        mangled = copy.deepcopy(envelope)

        def flip(value: Any) -> Any:
            if isinstance(value, bool):
                return not value
            if isinstance(value, int):
                return value ^ 1
            if isinstance(value, float):
                return -value if value else 1.0
            if isinstance(value, str):
                return value[:-1] + chr(ord(value[-1]) ^ 1) if value else "\x01"
            if isinstance(value, (bytes, bytearray)):
                if not value:
                    return b"\x01"
                return value[:-1] + bytes([value[-1] ^ 1])
            return value

        def walk(node: Any) -> Tuple[Any, bool]:
            if isinstance(node, dict):
                for key in sorted(node, key=repr):
                    new, done = walk(node[key])
                    if done:
                        node[key] = new
                        return node, True
                return node, False
            if isinstance(node, list):
                for i, item in enumerate(node):
                    new, done = walk(item)
                    if done:
                        node[i] = new
                        return node, True
                return node, False
            if isinstance(node, tuple):
                items = list(node)
                for i, item in enumerate(items):
                    new, done = walk(item)
                    if done:
                        items[i] = new
                        return tuple(items), True
                return node, False
            flipped = flip(node)
            if flipped is not node and flipped != node:
                return flipped, True
            return node, False

        payload, done = walk(mangled.payload)
        if done:
            mangled.payload = payload
        else:
            mangled.msg_id ^= 1
        return mangled
