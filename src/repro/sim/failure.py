"""Failure injection: crashes, restarts, message loss, and flapping.

The evaluation's recovery claims (sequencer recovery, Mantle policy
durability across MDS failure, OSD re-replication) are only credible if
failures are injectable and deterministic.  The injector works purely
through public daemon/network hooks so it cannot reach into state a
real fault could not destroy.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Protocol, Tuple

from repro.sim.kernel import Simulator
from repro.sim.network import Network


class Crashable(Protocol):
    """Daemons expose crash/restart so faults go through one interface."""

    name: str

    def crash(self) -> None: ...

    def restart(self) -> None: ...


class FailureInjector:
    """Deterministic fault scheduler for a simulation run.

    All methods may be called before ``sim.run``; faults fire at their
    scheduled simulated times.  The injector records every fault it
    fires in :attr:`log` so tests can assert on exact fault timing.
    """

    def __init__(self, sim: Simulator, network: Network):
        self.sim = sim
        self.network = network
        self._drop_rates: Dict[Tuple[str, str], float] = {}
        self._rng = sim.rng("failures")
        self.log: List[Tuple[float, str, str]] = []
        self.network.drop_hook = self._should_drop

    # ------------------------------------------------------------------
    # Crash / restart
    # ------------------------------------------------------------------
    def crash_at(self, t: float, daemon: Crashable) -> None:
        """Hard-stop ``daemon`` at simulated time ``t``."""
        self.sim.schedule(max(0.0, t - self.sim.now), self._crash, daemon)

    def restart_at(self, t: float, daemon: Crashable) -> None:
        """Bring ``daemon`` back at simulated time ``t``."""
        self.sim.schedule(max(0.0, t - self.sim.now), self._restart, daemon)

    def flap(self, daemon: Crashable, down_at: float,
             up_at: float) -> None:
        """Crash then restart — the classic transient failure."""
        if up_at <= down_at:
            raise ValueError("restart must come after crash")
        self.crash_at(down_at, daemon)
        self.restart_at(up_at, daemon)

    def _crash(self, daemon: Crashable) -> None:
        self.log.append((self.sim.now, "crash", daemon.name))
        daemon.crash()

    def _restart(self, daemon: Crashable) -> None:
        self.log.append((self.sim.now, "restart", daemon.name))
        daemon.restart()

    # ------------------------------------------------------------------
    # Message loss
    # ------------------------------------------------------------------
    def set_loss(self, src: str, dst: str, rate: float) -> None:
        """Drop messages src->dst with the given probability.

        Unidirectional by design: asymmetric loss is the nastier and
        more realistic case for lease protocols.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0,1], got {rate}")
        if rate == 0.0:
            self._drop_rates.pop((src, dst), None)
        else:
            self._drop_rates[(src, dst)] = rate

    def set_loss_everywhere(self, rate: float) -> None:
        """Uniform background loss on every link (wildcard entry)."""
        self.set_loss("*", "*", rate)

    def clear_loss(self) -> None:
        self._drop_rates.clear()

    def _should_drop(self, src: str, dst: str) -> bool:
        rate = self._drop_rates.get(
            (src, dst), self._drop_rates.get(("*", "*"), 0.0))
        if rate <= 0.0:
            return False
        dropped = self._rng.random() < rate
        if dropped:
            self.log.append((self.sim.now, "drop", f"{src}->{dst}"))
        return dropped

    # ------------------------------------------------------------------
    # Partitions (thin wrappers so faults are logged in one place)
    # ------------------------------------------------------------------
    def partition_at(self, t: float, a: str, b: str) -> None:
        self.sim.schedule(max(0.0, t - self.sim.now),
                          self._partition, a, b)

    def heal_at(self, t: float, a: str, b: str) -> None:
        self.sim.schedule(max(0.0, t - self.sim.now), self._heal, a, b)

    def _partition(self, a: str, b: str) -> None:
        self.log.append((self.sim.now, "partition", f"{a}|{b}"))
        self.network.partition(a, b)

    def _heal(self, a: str, b: str) -> None:
        self.log.append((self.sim.now, "heal", f"{a}|{b}"))
        self.network.heal(a, b)
