"""The discrete-event simulator: clock, scheduler, and processes.

Determinism contract
--------------------
Given the same seed and the same sequence of ``spawn``/``schedule``
calls, a simulation replays identically: the event queue breaks time
ties by insertion order, and all randomness flows through named RNG
streams derived from the seed (:meth:`Simulator.rng`).  Nothing in the
kernel consults wall-clock time.
"""

from __future__ import annotations

import hashlib
import heapq
import os
import random
from typing import Any, Callable, Dict, Generator, Iterator, Optional

from repro.sim.event import Future, Timeout

#: Type of a process body: a generator yielding Timeout/Future/Process/None.
ProcessBody = Generator[Any, Any, Any]


class _ScheduledCall:
    """A cancellable callback sitting in the event queue."""

    __slots__ = ("fn", "args", "cancelled")

    def __init__(self, fn: Callable[..., None], args: tuple):
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Process:
    """A running generator coroutine inside the simulator.

    The process's completion is itself a :class:`Future` (``.completion``),
    so processes can wait on each other by yielding the process object.
    A ``return value`` inside the generator becomes the completion value.
    """

    def __init__(self, sim: "Simulator", body: ProcessBody, name: str = ""):
        self.sim = sim
        self.body = body
        self.name = name or getattr(body, "__name__", "proc")
        self.completion = Future(name=f"proc:{self.name}")
        self._cancelled = False

    @property
    def done(self) -> bool:
        return self.completion.done

    def cancel(self) -> None:
        """Stop the process at its next suspension point.

        Cancellation closes the underlying generator (running its
        ``finally`` blocks) and resolves the completion future with
        ``None``.  Cancelling a finished process is a no-op.
        """
        if self.completion.done or self._cancelled:
            return
        self._cancelled = True
        self.body.close()
        self.completion.resolve(None)

    def _step(self, send_value: Any = None,
              send_error: Optional[BaseException] = None) -> None:
        if self._cancelled or self.completion.done:
            return
        try:
            if send_error is not None:
                yielded = self.body.throw(send_error)
            else:
                yielded = self.body.send(send_value)
        except StopIteration as stop:
            self.completion.resolve(getattr(stop, "value", None))
            return
        # mal: disable=MAL004 -- the process-death trap: the error is
        # delivered to the completion future's waiter or re-raised
        # from Simulator.run, never swallowed
        except Exception as exc:
            # A process dying with an unhandled exception settles its
            # completion future; if nothing is waiting, the simulator
            # records it so errors never pass silently.
            self.completion.fail(exc)
            self.sim._note_process_failure(self, exc)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if yielded is None:
            self.sim.schedule(0.0, self._step)
        elif isinstance(yielded, Timeout):
            self.sim.schedule(yielded.delay, self._step)
        elif isinstance(yielded, Future):
            yielded.add_callback(self._resume_from_future)
        elif isinstance(yielded, Process):
            yielded.completion.add_callback(self._resume_from_future)
        else:
            self._step(send_error=TypeError(
                f"process {self.name!r} yielded unsupported {yielded!r}"))

    def _resume_from_future(self, fut: Future) -> None:
        # Resume on the event queue (not inline) to keep causality:
        # a resolve() at time t wakes waiters at time t but after the
        # resolver finishes its own step.
        if fut.failed:
            self.sim.schedule(0.0, self._step, None, fut.error)
        else:
            self.sim.schedule(0.0, self._step, fut.result())

    def __repr__(self) -> str:
        state = "done" if self.done else "running"
        return f"Process({self.name!r}, {state})"


class Simulator:
    """Event loop with a virtual clock.

    Typical use::

        sim = Simulator(seed=7)
        sim.spawn(my_daemon_loop())
        sim.run(until=120.0)

    Unhandled exceptions inside processes are collected and re-raised
    from :meth:`run` unless the process's completion future had a
    waiter (in which case the error was delivered to the waiter).
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._now = 0.0
        self._queue: list = []
        self._seq: Iterator[int] = iter(range(2**62))
        self._rngs: Dict[str, random.Random] = {}
        self._failures: list = []
        self._stopped = False
        #: Telemetry attachment point: ``TraceCollector.of(sim)``
        #: installs the cluster-wide span collector here so every
        #: daemon on this simulator shares one causally-consistent
        #: trace store timed on this clock.
        self.trace_collector: Optional[Any] = None
        #: Protocol-sanitizer attachment point (repro.analysis).  The
        #: hooks daemons call are passive observers, so an installed
        #: registry never perturbs the event schedule.
        self.sanitizers: Optional[Any] = None
        #: Profiler attachment points (repro.profiling).  ``profiler``
        #: is the deterministic simulation-plane counter set,
        #: ``wall_profiler`` the host wall-clock/allocation plane.
        #: Both are ``None`` by default — the dispatch loop's fast
        #: path is a single ``is None`` check — and both are passive:
        #: enabling them leaves the event schedule byte-identical.
        self.profiler: Optional[Any] = None
        self.wall_profiler: Optional[Any] = None
        #: Chaos-engine attachment point (repro.chaos).  Set by
        #: ``NemesisEngine.arm`` so oracles, the mgr, and tests can
        #: discover the active engine from the simulator alone.
        self.chaos: Optional[Any] = None
        if os.environ.get("MALACOLOGY_SANITIZE"):
            from repro.analysis.sanitizers import install_sanitizers
            install_sanitizers(self)
        if os.environ.get("MALACOLOGY_PROFILE"):
            from repro.profiling import install_profiler
            install_profiler(self)

    # ------------------------------------------------------------------
    # Clock and randomness
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def rng(self, stream: str) -> random.Random:
        """A deterministic RNG for the named stream.

        Streams are independent: drawing from one never perturbs
        another, so adding instrumentation cannot change an experiment.
        """
        if stream not in self._rngs:
            digest = hashlib.sha256(
                f"{self.seed}:{stream}".encode()).digest()
            self._rngs[stream] = random.Random(
                int.from_bytes(digest[:8], "big"))
        return self._rngs[stream]

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None],
                 *args: Any) -> _ScheduledCall:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past: {delay}")
        call = _ScheduledCall(fn, args)
        heapq.heappush(self._queue, (self._now + delay, next(self._seq), call))
        return call

    def spawn(self, body: ProcessBody, name: str = "") -> Process:
        """Start a generator as a process; begins at the current time."""
        proc = Process(self, body, name=name)
        self.schedule(0.0, proc._step)
        return proc

    def timeout_future(self, fut: Future, delay: float,
                       error: BaseException) -> None:
        """Fail ``fut`` with ``error`` after ``delay`` unless settled."""
        self.schedule(delay, fut.fail_if_pending, error)

    def stop(self) -> None:
        """Halt :meth:`run` after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queue drains or ``until`` is reached.

        Returns the simulated time at exit.  If ``until`` is given, the
        clock is advanced to exactly ``until`` even if the queue drained
        earlier, so back-to-back ``run`` calls compose predictably.
        """
        self._stopped = False
        profiler = self.profiler
        wall = self.wall_profiler
        while self._queue and not self._stopped:
            when, _, call = self._queue[0]
            if until is not None and when > until:
                break
            heapq.heappop(self._queue)
            if call.cancelled:
                if profiler is not None:
                    profiler.on_cancelled()
                continue
            self._now = when
            if profiler is not None:
                profiler.on_event(when, len(self._queue))
            if wall is None:
                call.fn(*call.args)
            else:
                token = wall.begin()
                try:
                    call.fn(*call.args)
                finally:
                    wall.end_dispatch(token, call)
            self._raise_pending_failures()
        if until is not None and self._now < until:
            self._now = until
        self._raise_pending_failures()
        return self._now

    def run_until_complete(self, proc_or_future: Any,
                           limit: float = 1e9) -> Any:
        """Drive the simulation until the given process/future settles.

        Convenience for tests and examples: returns the settled value
        (or raises its error).  Raises ``RuntimeError`` if the event
        queue drains without settling it — that means the awaited thing
        deadlocked.
        """
        fut = (proc_or_future.completion
               if isinstance(proc_or_future, Process) else proc_or_future)
        if not isinstance(fut, Future):
            raise TypeError("expected a Process or Future")
        fut.had_waiters = True  # we are the waiter; errors reach us
        profiler = self.profiler
        wall = self.wall_profiler
        while not fut.done:
            if not self._queue:
                raise RuntimeError(
                    f"event queue drained but {fut!r} never settled "
                    "(deadlock)")
            if self._now > limit:
                raise RuntimeError(f"exceeded simulated time limit {limit}")
            when, _, call = heapq.heappop(self._queue)
            if call.cancelled:
                if profiler is not None:
                    profiler.on_cancelled()
                continue
            self._now = when
            if profiler is not None:
                profiler.on_event(when, len(self._queue))
            if wall is None:
                call.fn(*call.args)
            else:
                token = wall.begin()
                try:
                    call.fn(*call.args)
                finally:
                    wall.end_dispatch(token, call)
            self._raise_pending_failures()
        return fut.result()

    # ------------------------------------------------------------------
    # Failure bookkeeping
    # ------------------------------------------------------------------
    def _note_process_failure(self, proc: Process, exc: BaseException) -> None:
        # If someone is (or becomes) waiting on the completion future the
        # error reaches them; we only surface truly orphaned failures.
        self._failures.append((proc.name, exc, proc.completion))

    def _raise_pending_failures(self) -> None:
        if not self._failures:
            return
        still_orphaned = []
        for name, exc, fut in self._failures:
            if fut.had_waiters:  # the error was delivered to a waiter
                continue
            still_orphaned.append((name, exc))
        self._failures = []
        if still_orphaned:
            name, exc = still_orphaned[0]
            raise RuntimeError(
                f"unhandled error in process {name!r}: {exc!r}") from exc
