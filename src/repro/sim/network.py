"""Simulated network: named endpoints, latency models, partitions.

The network is the only channel between daemons — no shared state —
which keeps the simulated protocols honest about what information a
real Ceph daemon would have.  Delivery is per-message independent
(messages may reorder, as UDP-like semantics; protocols that need
ordering, e.g. Paxos, carry their own sequence numbers, as the real
implementations do).
"""

from __future__ import annotations

import math
import random
from typing import (Any, Callable, Dict, List, Optional, Protocol, Set,
                    Tuple)

from repro.sim.kernel import Simulator


class Endpoint(Protocol):
    """Anything that can receive a message envelope."""

    name: str

    def deliver(self, envelope: Any) -> None: ...


class LatencyModel:
    """Base class: draws a one-way delay for a (src, dst) message."""

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        raise NotImplementedError


class FixedLatency(LatencyModel):
    """Constant one-way delay; useful for analytically checkable tests."""

    def __init__(self, delay: float):
        if delay < 0:
            raise ValueError("negative latency")
        self.delay = delay

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        return self.delay


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from [lo, hi]."""

    def __init__(self, lo: float, hi: float):
        if lo < 0 or hi < lo:
            raise ValueError(f"bad latency range [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        return rng.uniform(self.lo, self.hi)


class LogNormalLatency(LatencyModel):
    """Heavy-tailed delay typical of a busy datacenter LAN.

    Parameterized by the median delay and a shape ``sigma``; the long
    tail is what produces the large latency outliers the paper observes
    at the 99.999th percentile (Figure 7).  An optional ``cap`` bounds
    pathological draws so experiments terminate.
    """

    def __init__(self, median: float, sigma: float = 0.5,
                 cap: Optional[float] = None):
        if median <= 0:
            raise ValueError("median must be positive")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.mu = math.log(median)
        self.sigma = sigma
        self.cap = cap

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        delay = rng.lognormvariate(self.mu, self.sigma)
        if self.cap is not None:
            delay = min(delay, self.cap)
        return delay


class ScaledLatency(LatencyModel):
    """Multiply another model's draws by a constant factor.

    The gray-failure primitive: a slow-but-alive daemon is modeled by
    overriding its traffic with its usual latency model scaled up.
    Draws pass through to the wrapped model, so the number of RNG
    samples per message is unchanged — only the magnitude differs.
    """

    def __init__(self, base: LatencyModel, factor: float):
        if factor <= 0:
            raise ValueError("factor must be positive")
        self.base = base
        self.factor = factor

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        return self.base.sample(src, dst, rng) * self.factor


#: Default LAN profile: 100us median with a modest tail, loopback-free.
def lan_latency() -> LatencyModel:
    return LogNormalLatency(median=100e-6, sigma=0.35, cap=5e-3)


class Network:
    """Message fabric connecting named endpoints.

    Supports bidirectional partitions and probabilistic loss (via the
    failure injector).  Messages to unregistered or partitioned
    endpoints are silently dropped — exactly what a real network does —
    so timeout handling in the protocols gets genuinely exercised.
    """

    def __init__(self, sim: Simulator,
                 latency: Optional[LatencyModel] = None):
        self.sim = sim
        self.latency = latency or lan_latency()
        self._endpoints: Dict[str, Endpoint] = {}
        #: Blocked *directed* links.  A bidirectional partition is the
        #: symmetric special case (both orientations present).
        self._blocked: Set[Tuple[str, str]] = set()
        self._rng = sim.rng("network")
        #: Per-endpoint latency overrides (see set_latency_override);
        #: they draw from a dedicated RNG stream so instrumentation
        #: endpoints (the mgr) never perturb the main latency sequence.
        self._latency_overrides: Dict[str, LatencyModel] = {}
        self._override_rng = sim.rng("network:overrides")
        #: Optional hook deciding per-message drops: fn(src, dst) -> bool.
        self.drop_hook: Optional[Callable[[str, str], bool]] = None
        #: Optional chaos hook consulted after the drop decision and
        #: latency sampling: fn(src, dst, envelope, delay) -> None to
        #: deliver normally, or a list of (delay, envelope) deliveries
        #: (empty = message destroyed, len > 1 = duplicates).  Chaos
        #: draws its randomness from its own streams, so an installed
        #: hook that declines every message leaves the schedule
        #: byte-identical to a run without one.
        self.chaos_hook: Optional[
            Callable[[str, str, Any, float],
                     Optional[List[Tuple[float, Any]]]]] = None
        # Counters for observability and the propagation benchmarks.
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_duplicated = 0
        self.messages_corrupted = 0
        #: Drops by cause; ``messages_dropped`` sums these.
        self.drops_by_cause: Dict[str, int] = {
            "partition": 0, "drop_hook": 0,
            "unregistered": 0, "chaos": 0,
        }

    @property
    def messages_dropped(self) -> int:
        return sum(self.drops_by_cause.values())

    def register(self, endpoint: Endpoint) -> None:
        if endpoint.name in self._endpoints:
            raise ValueError(f"endpoint {endpoint.name!r} already registered")
        self._endpoints[endpoint.name] = endpoint

    def unregister(self, name: str) -> None:
        self._endpoints.pop(name, None)

    def knows(self, name: str) -> bool:
        return name in self._endpoints

    def set_latency_override(self, name: str,
                             model: Optional[LatencyModel]) -> None:
        """Route all traffic to/from ``name`` through ``model``.

        The override samples from a dedicated RNG stream, so traffic
        of an overridden endpoint never advances the shared ``network``
        stream.  This is how observability daemons guarantee that a
        seeded run with them enabled replays the exact latency sequence
        of a run without them (the kernel's determinism contract:
        adding instrumentation cannot change an experiment).  Pass
        ``None`` to remove an override.
        """
        if model is None:
            self._latency_overrides.pop(name, None)
        else:
            self._latency_overrides[name] = model

    def endpoints(self) -> Tuple[str, ...]:
        return tuple(sorted(self._endpoints))

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def partition(self, a: str, b: str) -> None:
        """Block traffic in both directions between ``a`` and ``b``."""
        self._blocked.add((a, b))
        self._blocked.add((b, a))

    def heal(self, a: str, b: str) -> None:
        self._blocked.discard((a, b))
        self._blocked.discard((b, a))

    def partition_oneway(self, src: str, dst: str) -> None:
        """Block only ``src`` -> ``dst``; the reverse path stays up.

        Asymmetric links are the classic gray failure: ``dst`` still
        reaches ``src``, so failure detectors on one side see a healthy
        peer while the other side times out.
        """
        self._blocked.add((src, dst))

    def heal_oneway(self, src: str, dst: str) -> None:
        self._blocked.discard((src, dst))

    def heal_all(self) -> None:
        self._blocked.clear()

    def partitioned(self, src: str, dst: str) -> bool:
        """Whether traffic ``src`` -> ``dst`` is currently blocked."""
        return (src, dst) in self._blocked

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, envelope: Any) -> None:
        """Queue ``envelope`` for delivery to ``dst`` after sampled latency.

        Never raises on an unreachable destination: loss is a fact of
        networks and callers must rely on timeouts, not exceptions.
        """
        self.messages_sent += 1
        if self.partitioned(src, dst):
            self.drops_by_cause["partition"] += 1
            return
        if self.drop_hook is not None and self.drop_hook(src, dst):
            self.drops_by_cause["drop_hook"] += 1
            return
        override = self._latency_overrides.get(
            src, self._latency_overrides.get(dst))
        if src == dst:
            delay = 1e-6  # loopback: negligible but nonzero for causality
        elif override is not None:
            delay = override.sample(src, dst, self._override_rng)
        else:
            delay = self.latency.sample(src, dst, self._rng)
        if self.chaos_hook is not None:
            plan = self.chaos_hook(src, dst, envelope, delay)
            if plan is not None:
                if not plan:
                    self.drops_by_cause["chaos"] += 1
                    return
                self.messages_duplicated += len(plan) - 1
                for chaos_delay, chaos_envelope in plan:
                    self.sim.schedule(
                        chaos_delay, self._deliver, dst, chaos_envelope)
                return
        self.sim.schedule(delay, self._deliver, dst, envelope)

    def _deliver(self, dst: str, envelope: Any) -> None:
        endpoint = self._endpoints.get(dst)
        if endpoint is None:
            self.drops_by_cause["unregistered"] += 1
            return
        self.messages_delivered += 1
        endpoint.deliver(envelope)

    def stats(self) -> Dict[str, int]:
        """Flat counter snapshot for observability (mgr Prometheus)."""
        out = {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "messages_duplicated": self.messages_duplicated,
            "messages_corrupted": self.messages_corrupted,
        }
        for cause, count in sorted(self.drops_by_cause.items()):
            out[f"messages_dropped_{cause}"] = count
        return out
