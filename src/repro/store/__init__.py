"""repro.store: pluggable per-PG object-store backends.

See :mod:`repro.store.base` for the interface and determinism
contract.  Pools pick a backend (and optional cache tier) in their
pool config; :func:`make_store` is the single dispatch point the OSD
uses to build one store per PG.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.store.base import (BACKEND_PROFILES, ObjectStore,
                              normalize_backend, normalize_cache)
from repro.store.cachetier import CacheEntry, CacheTier
from repro.store.coldstore import ColdObject, ColdStore
from repro.store.faults import (FaultInjectingStore, StoreFaultPlane,
                                unwrap_store)
from repro.store.logstructured import LogRecord, LogStructuredStore
from repro.store.memstore import MemStore

__all__ = [
    "BACKEND_PROFILES",
    "CacheEntry",
    "CacheTier",
    "ColdObject",
    "ColdStore",
    "FaultInjectingStore",
    "LogRecord",
    "LogStructuredStore",
    "MemStore",
    "ObjectStore",
    "StoreFaultPlane",
    "make_store",
    "normalize_backend",
    "normalize_cache",
    "unwrap_store",
]


def make_store(backend: Optional[Any] = None,
               cache: Optional[Dict[str, Any]] = None,
               perf: Optional[Any] = None) -> ObjectStore:
    """Build one PG's store from a pool's backend/cache declaration.

    ``backend``/``cache`` are the (already normalized) values from the
    OSD map's pool config; both default to None, which yields the
    plain :class:`MemStore` — the pre-refactor semantics.
    """
    cfg = normalize_backend(backend) if backend is not None else \
        {"profile": "memstore"}
    profile = cfg["profile"]
    if profile == "memstore":
        base: ObjectStore = MemStore(perf)
    elif profile == "logstructured":
        base = LogStructuredStore(perf)
    else:
        base = ColdStore(k=cfg.get("k", 2), m=cfg.get("m", 1), perf=perf)
    if cache is not None:
        ccfg = normalize_cache(cache)
        return CacheTier(base, capacity=ccfg["capacity"],
                         promote_reads=ccfg["promote_reads"], perf=perf)
    return base
