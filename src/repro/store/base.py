"""The ObjectStore interface: pluggable per-PG storage backends.

Malacology's thesis is that storage services should be programmable
and recomposable; this module applies it to the OSD's own persistence
layer.  Before it existed, every PG stored its objects in one implicit
``Dict[str, StoredObject]`` — every pool got identical storage
semantics.  Now a pool declares a *backend profile* (and optionally a
write-back cache tier) in its pool config, and the OSD routes all PG
state through this interface:

* :class:`~repro.store.memstore.MemStore` — the fast tier; a plain
  in-memory map with the pre-refactor semantics.  The default, and
  pinned to produce byte-identical schedules to the old dict.
* :class:`~repro.store.logstructured.LogStructuredStore` — append-only
  segments plus an object index, with deterministic compaction driven
  by sim-time ticks; optimized for ZLog/changelog append streams.
* :class:`~repro.store.coldstore.ColdStore` — locally erasure-coded
  capacity tier (``rados/erasure.py`` codec); writes stage cheaply and
  whole batches encode in one call on flush, reads of flushed objects
  pay a reconstruction cost.
* :class:`~repro.store.cachetier.CacheTier` — a write-back cache
  wrapped around any base store: deterministic clock-LRU, read-promote
  thresholds, dirty write-back on a jitter-free flusher tick.

Two access planes
-----------------
The client I/O path uses :meth:`ObjectStore.fetch` / :meth:`commit` /
:meth:`discard`, which return a **modeled service delay** in simulated
seconds alongside their effect; the OSD sleeps that long before
acking, which is what gives the storage-tier ablation benchmark real
asymmetry.  MemStore charges exactly ``0.0`` everywhere, so default
pools add no events and the pre-refactor schedule is preserved
byte-for-byte (pinned by a tape test).

Recovery, rebalance, PG splitting, scrub, and tests use the plain
``MutableMapping`` plane (``store[oid]``, ``store.get``, ``.items()``,
``in``, ``len``) which never charges a delay — background repair
traffic is paced by the network, not by the medium model.

Determinism contract: no RNG, no wall clock; any internal iteration
that can influence behavior walks keys in sorted order; maintenance
runs only from the OSD's jitter-free store ticker.
"""

from __future__ import annotations

from collections.abc import MutableMapping
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import InvalidArgument
from repro.rados.objects import StoredObject

#: Known backend profile names (the dispatch table lives in
#: ``repro.store.__init__`` to avoid circular imports).
BACKEND_PROFILES = ("memstore", "logstructured", "coldstore")


class ObjectStore(MutableMapping):
    """One PG's object storage: oid -> :class:`StoredObject`.

    Subclasses implement the five ``MutableMapping`` primitives plus
    the costed client-op plane and maintenance hooks.  ``perf`` is the
    owning daemon's counter registry (or None outside a daemon); all
    backend counters land there under a ``store.<profile>.`` prefix so
    the mgr scrape and Prometheus export pick them up for free.
    """

    __slots__ = ("perf",)

    #: Stable profile name ("memstore", "logstructured", ...).
    profile = "base"
    #: True when the backend wants periodic :meth:`maintenance` ticks
    #: (compaction, write-back).  The OSD only starts its store ticker
    #: when it hosts at least one such store — pure-memstore clusters
    #: schedule zero extra events.
    needs_maintenance = False

    def __init__(self, perf: Optional[Any] = None):
        self.perf = perf

    # -- counter helper -------------------------------------------------
    def incr(self, name: str, amount: float = 1.0) -> None:
        if self.perf is not None:
            self.perf.incr(f"store.{self.profile}.{name}", amount)

    # ------------------------------------------------------------------
    # Client-op plane (modeled service delays)
    # ------------------------------------------------------------------
    def fetch(self, oid: str) -> Tuple[Optional[StoredObject], float]:
        """Materialize ``oid`` for a client op: (object or None, delay)."""
        return self.get(oid), 0.0

    def commit(self, obj: StoredObject) -> float:
        """Persist a mutated object; returns the modeled write delay."""
        self[obj.oid] = obj
        return 0.0

    def discard(self, oid: str) -> float:
        """Remove via a client op; returns the modeled delay."""
        self.pop(oid, None)
        return 0.0

    # ------------------------------------------------------------------
    # Maintenance plane (driven by the OSD's jitter-free store ticker)
    # ------------------------------------------------------------------
    def maintenance(self, now: float) -> None:
        """One background tick: compaction / write-back as needed."""

    def flush(self, now: float) -> None:
        """Force all pending background work to completion."""
        self.maintenance(now)

    # ------------------------------------------------------------------
    # Introspection / serialization
    # ------------------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        """JSON-safe summary for the ``store.status`` admin command."""
        return {
            "profile": self.profile,
            "objects": len(self),
            "bytes": sum(obj.size for _, obj in sorted(self.items())),
        }

    def to_dict(self) -> Dict[str, Any]:
        """Full-state snapshot (state transfer and tests)."""
        return {
            "profile": self.profile,
            "objects": {oid: obj.to_dict()
                        for oid, obj in sorted(self.items())},
        }

    def load_dict(self, data: Dict[str, Any]) -> None:
        """Hydrate from a :meth:`to_dict` snapshot (additive merge)."""
        for oid in sorted(data.get("objects", {})):
            self[oid] = StoredObject.from_dict(data["objects"][oid])

    # ------------------------------------------------------------------
    # MutableMapping helpers shared by subclasses
    # ------------------------------------------------------------------
    def oids(self) -> List[str]:
        """All stored oids, sorted (deterministic iteration helper)."""
        return sorted(self)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({len(self)} objects)"


def normalize_backend(backend: Any) -> Dict[str, Any]:
    """Validate/normalize a pool's backend declaration to a dict.

    Accepts a profile name (``"logstructured"``) or a dict
    (``{"profile": "coldstore", "k": 2, "m": 1}``); returns the dict
    form stored in the OSD map's pool config.  Raises
    :class:`InvalidArgument` on unknown profiles or bad parameters.
    """
    if isinstance(backend, str):
        backend = {"profile": backend}
    if not isinstance(backend, dict):
        raise InvalidArgument(f"bad backend declaration {backend!r}")
    profile = backend.get("profile")
    if profile not in BACKEND_PROFILES:
        raise InvalidArgument(
            f"unknown backend profile {profile!r} "
            f"(expected one of {', '.join(BACKEND_PROFILES)})")
    out: Dict[str, Any] = {"profile": profile}
    if profile == "coldstore":
        k = int(backend.get("k", 2))
        m = int(backend.get("m", 1))
        if k < 1 or m < 1 or k + m > 255:
            raise InvalidArgument(f"bad coldstore EC profile k={k} m={m}")
        out["k"] = k
        out["m"] = m
    return out


def normalize_cache(cache: Any) -> Dict[str, Any]:
    """Validate/normalize a pool's cache-tier declaration.

    ``{"capacity": <objects>, "promote_reads": <n>}`` — capacity is the
    fast tier's object budget, promote_reads the number of base-tier
    reads of one object before it is promoted into the cache.
    """
    if not isinstance(cache, dict):
        raise InvalidArgument(f"bad cache declaration {cache!r}")
    capacity = int(cache.get("capacity", 64))
    promote_reads = int(cache.get("promote_reads", 2))
    if capacity < 1:
        raise InvalidArgument(f"cache capacity must be >= 1: {capacity}")
    if promote_reads < 1:
        raise InvalidArgument(
            f"cache promote_reads must be >= 1: {promote_reads}")
    return {"capacity": capacity, "promote_reads": promote_reads}


def _iter_sorted(mapping: Dict[str, Any]) -> Iterator[str]:
    """Sorted key iterator (shared by the ordered backends)."""
    return iter(sorted(mapping))
