"""CacheTier: a write-back cache wrapped around any base backend.

The client-op plane hits the cache first: commits land in the cache
dirty (write-back — the base store is not touched until the flusher
tick), reads of resident objects are near-free, and repeated reads of
a base-resident object promote it once they cross the pool's
``promote_reads`` threshold.  The OSD's jitter-free store ticker
drives :meth:`maintenance`, which writes dirty entries back to the
base (sorted-oid order) and then evicts **clean** entries down to
``capacity`` in LRU order.

Invariants (pinned by property tests):

* a dirty entry is never evicted — write-back always happens first,
  so the cache may exceed ``capacity`` between ticks (the
  ``CACHE_TIER_FULL`` health check fires when it stays that way);
* recency is a logical access counter, not sim time, so two identical
  runs make identical promotion/eviction decisions.

The zero-cost ``MutableMapping`` plane (recovery, rebalance, scrub,
tests) is a union view with the cache shadowing the base.  Writes on
that plane go straight through to the base and invalidate any cached
entry: recovery pushes and scrub repairs install authoritative
versions, so the stale (possibly dirty) copy is superseded, not
evicted.  That plane never touches LRU state — background repair
cannot perturb caching decisions.

Durability: the tier lives inside the OSD's PG map, which models the
disk — dirty entries survive crash/restart exactly like base objects.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Tuple

from repro.rados.objects import StoredObject
from repro.store.base import ObjectStore


class CacheEntry:
    """One resident object: payload + dirty bit + logical recency."""

    __slots__ = ("obj", "dirty", "last_use")

    def __init__(self, obj: StoredObject, dirty: bool, last_use: int):
        self.obj = obj
        self.dirty = dirty
        self.last_use = last_use


class CacheTier(ObjectStore):
    """Write-back LRU cache in front of a base :class:`ObjectStore`."""

    __slots__ = ("base", "capacity", "promote_reads", "_entries",
                 "_read_counts", "_clock")

    profile = "cache"
    needs_maintenance = True

    #: Modeled service delays (simulated seconds).
    HIT_DELAY = 5e-6
    MISS_DELAY = 20e-6   # added on top of the base store's delay
    WRITE_DELAY = 10e-6

    def __init__(self, base: ObjectStore, capacity: int = 64,
                 promote_reads: int = 2, perf: Optional[Any] = None):
        super().__init__(perf)
        self.base = base
        self.capacity = capacity
        self.promote_reads = promote_reads
        self._entries: Dict[str, CacheEntry] = {}
        self._read_counts: Dict[str, int] = {}
        self._clock = 0

    # -- internals ------------------------------------------------------
    def _tick_clock(self) -> int:
        self._clock += 1
        return self._clock

    def _evict_clean(self) -> None:
        """Evict clean entries (LRU first) until within capacity."""
        if len(self._entries) <= self.capacity:
            return
        clean = sorted(
            (e.last_use, oid) for oid, e in self._entries.items()
            if not e.dirty)
        for _, oid in clean:
            if len(self._entries) <= self.capacity:
                break
            del self._entries[oid]
            self.incr("evict")

    def utilization(self) -> float:
        return len(self._entries) / self.capacity

    def dirty_count(self) -> int:
        return sum(1 for e in self._entries.values() if e.dirty)

    # -- MutableMapping (zero-cost plane; never touches LRU state) ------
    def __getitem__(self, oid: str) -> StoredObject:
        entry = self._entries.get(oid)
        if entry is not None:
            return entry.obj
        return self.base[oid]  # KeyError when absent

    def __setitem__(self, oid: str, obj: StoredObject) -> None:
        # Authoritative install (recovery push, scrub repair): write
        # through to the base and drop any superseded cached copy.
        self.base[oid] = obj
        self._entries.pop(oid, None)
        self._read_counts.pop(oid, None)

    def __delitem__(self, oid: str) -> None:
        found = self._entries.pop(oid, None) is not None
        self._read_counts.pop(oid, None)
        try:
            del self.base[oid]
        except KeyError:
            if not found:
                raise

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(set(self._entries) | set(self.base)))

    def __len__(self) -> int:
        return len(set(self._entries) | set(self.base))

    # -- client-op plane ------------------------------------------------
    def fetch(self, oid: str) -> Tuple[Optional[StoredObject], float]:
        clock = self._tick_clock()
        entry = self._entries.get(oid)
        if entry is not None:
            entry.last_use = clock
            self.incr("hit")
            return entry.obj, self.HIT_DELAY
        obj, base_delay = self.base.fetch(oid)
        self.incr("miss")
        if obj is not None:
            reads = self._read_counts.get(oid, 0) + 1
            if reads >= self.promote_reads:
                self._read_counts.pop(oid, None)
                self._entries[oid] = CacheEntry(obj, False, clock)
                self.incr("promote")
                self._evict_clean()
            else:
                self._read_counts[oid] = reads
        return obj, base_delay + self.MISS_DELAY

    def commit(self, obj: StoredObject) -> float:
        clock = self._tick_clock()
        entry = self._entries.get(obj.oid)
        if entry is not None:
            entry.obj = obj
            entry.dirty = True
            entry.last_use = clock
        else:
            self._entries[obj.oid] = CacheEntry(obj, True, clock)
            self._read_counts.pop(obj.oid, None)
        self.incr("write")
        self._evict_clean()
        return self.WRITE_DELAY

    def discard(self, oid: str) -> float:
        self._entries.pop(oid, None)
        self._read_counts.pop(oid, None)
        base_delay = self.base.discard(oid)
        return self.WRITE_DELAY + base_delay

    # -- maintenance ----------------------------------------------------
    def maintenance(self, now: float) -> None:
        self._write_back()
        self._evict_clean()
        self.base.maintenance(now)

    def flush(self, now: float) -> None:
        self._write_back()
        self._evict_clean()
        self.base.flush(now)

    def _write_back(self) -> None:
        dirty = [oid for oid in sorted(self._entries)
                 if self._entries[oid].dirty]
        for oid in dirty:
            entry = self._entries[oid]
            self.base.commit(entry.obj)
            entry.dirty = False
            self.incr("writeback")
        if dirty:
            self.incr("flush")

    # -- introspection --------------------------------------------------
    def status(self) -> Dict[str, Any]:
        return {
            "profile": self.profile,
            "objects": len(self),
            "capacity": self.capacity,
            "resident": len(self._entries),
            "dirty": self.dirty_count(),
            "utilization": self.utilization(),
            "base": self.base.status(),
        }
