"""ColdStore: locally erasure-coded capacity tier.

Writes land in a cheap staging area (plain object references, like
MemStore); the OSD's jitter-free store ticker then flushes the whole
staged batch through ``ErasureCodec.encode_batch`` in **one call**,
replacing each object's bytestream with k+m shards.  Reads of flushed
objects pay a reconstruction cost (decode from the k data shards);
staged objects are still hot and cheap.

This is the "cold data" profile from the CFS asymmetry argument:
capacity-efficient, write-friendly (staging absorbs bursts), read-dear.
Omap and xattrs are small metadata and stay verbatim alongside the
shards; only the bytestream is coded.

Determinism: staging flushes in sorted-oid order on tick boundaries,
decode is pure arithmetic, and no events are scheduled here — the OSD
ticker is the only clock.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.rados.erasure import ErasureCodec
from repro.rados.objects import StoredObject
from repro.store.base import ObjectStore


class ColdObject:
    """One flushed object: EC shards + verbatim metadata."""

    __slots__ = ("oid", "shards", "length", "omap", "xattrs", "version")

    def __init__(self, oid: str, shards: List[bytes], length: int,
                 omap: Dict[str, Any], xattrs: Dict[str, Any],
                 version: int):
        self.oid = oid
        self.shards = shards
        self.length = length
        self.omap = omap
        self.xattrs = xattrs
        self.version = version


class ColdStore(ObjectStore):
    """Staging + erasure-coded cold area; batch-encoded on flush."""

    __slots__ = ("codec", "_staging", "_cold", "encode_batches")

    profile = "coldstore"
    needs_maintenance = True

    #: Modeled service delays (simulated seconds): staged ops are
    #: memory-cheap; a cold read reconstructs from shards.
    STAGE_DELAY = 25e-6
    COLD_READ_DELAY = 450e-6

    def __init__(self, k: int = 2, m: int = 1,
                 perf: Optional[Any] = None):
        super().__init__(perf)
        self.codec = ErasureCodec(k, m)
        self._staging: Dict[str, StoredObject] = {}
        self._cold: Dict[str, ColdObject] = {}
        self.encode_batches = 0

    # -- internals ------------------------------------------------------
    def _thaw(self, cold: ColdObject) -> StoredObject:
        """Reconstruct a StoredObject from its cold record."""
        data = self.codec.decode(
            {i: s for i, s in enumerate(cold.shards)}, cold.length)
        obj = StoredObject(cold.oid)
        obj.data = bytearray(data)
        obj.omap = copy.deepcopy(cold.omap)
        obj.xattrs = copy.deepcopy(cold.xattrs)
        obj.version = cold.version
        return obj

    def _freeze(self, obj: StoredObject, shards: List[bytes]) -> None:
        self._cold[obj.oid] = ColdObject(
            obj.oid, shards, obj.size,
            copy.deepcopy(obj.omap), copy.deepcopy(obj.xattrs),
            obj.version)

    def staged_count(self) -> int:
        return len(self._staging)

    # -- MutableMapping -------------------------------------------------
    def __getitem__(self, oid: str) -> StoredObject:
        if oid in self._staging:
            return self._staging[oid]
        return self._thaw(self._cold[oid])  # KeyError when absent

    def __setitem__(self, oid: str, obj: StoredObject) -> None:
        self._staging[oid] = obj

    def __delitem__(self, oid: str) -> None:
        found = self._staging.pop(oid, None) is not None
        found = (self._cold.pop(oid, None) is not None) or found
        if not found:
            raise KeyError(oid)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(set(self._staging) | set(self._cold)))

    def __len__(self) -> int:
        return len(set(self._staging) | set(self._cold))

    # -- client-op plane ------------------------------------------------
    def fetch(self, oid: str) -> Tuple[Optional[StoredObject], float]:
        if oid in self._staging:
            self.incr("stage_read")
            return self._staging[oid], self.STAGE_DELAY
        cold = self._cold.get(oid)
        if cold is None:
            self.incr("miss")
            return None, self.STAGE_DELAY
        self.incr("cold_read")
        return self._thaw(cold), self.COLD_READ_DELAY

    def commit(self, obj: StoredObject) -> float:
        self._staging[obj.oid] = obj
        self.incr("stage_write")
        return self.STAGE_DELAY

    def discard(self, oid: str) -> float:
        self.pop(oid, None)
        return self.STAGE_DELAY

    # -- maintenance ----------------------------------------------------
    def maintenance(self, now: float) -> None:
        if self._staging:
            self._flush_staging()

    def flush(self, now: float) -> None:
        if self._staging:
            self._flush_staging()

    def _flush_staging(self) -> None:
        """Encode the whole staged batch in one codec call."""
        oids = sorted(self._staging)
        batch = [bytes(self._staging[oid].data) for oid in oids]
        shard_sets = self.codec.encode_batch(batch)
        for oid, shards in zip(oids, shard_sets):
            self._freeze(self._staging[oid], shards)
        self._staging.clear()
        self.encode_batches += 1
        self.incr("encode_batch")
        self.incr("encoded_objects", len(oids))

    # -- introspection --------------------------------------------------
    def status(self) -> Dict[str, Any]:
        return {
            "profile": self.profile,
            "objects": len(self),
            "bytes": (sum(o.size for o in self._staging.values())
                      + sum(c.length for c in self._cold.values()
                            if c.oid not in self._staging)),
            "staged": len(self._staging),
            "cold": len(self._cold),
            "k": self.codec.k,
            "m": self.codec.m,
            "encode_batches": self.encode_batches,
        }
