"""Store-level fault injection: EIO, torn writes, bit-rot.

The chaos engine (``repro.chaos``) needs faults *below* the OSD — a
medium that errors, tears, and rots — injected without teaching every
backend about failure.  :class:`FaultInjectingStore` wraps any
:class:`~repro.store.base.ObjectStore` and consults a shared
:class:`StoreFaultPlane` on the costed client-op plane only:

* **EIO on commit** — the write is refused before touching the medium;
  the client sees a typed storage error and must retry.
* **Torn commit** — the medium keeps a *partially* applied object
  (new bytestream, stale omap/xattrs) and then errors.  The caller
  sees a failed write, but unlike EIO the damage is real: replicas
  now diverge, and scrub must find and repair the tear.
* **Bit-rot** — :func:`flip_bit` silently flips one stored byte via
  the mapping plane.  Nothing errors; only a scrub digest comparison
  can notice.  The chaos engine applies it to non-primary replicas
  (scrub repairs from primary state, so rotting the primary would
  propagate the damage instead of healing it).

The ``MutableMapping`` plane passes through untouched: recovery,
rebalance, and scrub repair must keep working or no fault would ever
heal.  All randomness comes from the plane's injected RNG (a dedicated
named stream), so chaos runs stay seed-reproducible.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import MalacologyError
from repro.rados.objects import StoredObject
from repro.store.base import ObjectStore


class StoreFaultPlane:
    """Shared fault policy consulted by every wrapped store.

    One plane serves all OSDs in a run: rates and targeting live here,
    the wrappers stay stateless.  ``targets`` limits injection to the
    named daemons (None = all wrapped daemons); ``log`` records every
    injected fault as ``(time, kind, detail)`` in fire order.
    """

    def __init__(self, rng: random.Random,
                 clock: Callable[[], float]):
        self.rng = rng
        self.clock = clock
        self.eio_rate = 0.0
        self.torn_rate = 0.0
        self.targets: Optional[set] = None
        self.log: List[Tuple[float, str, str]] = []
        self.faults_injected = 0

    def set_eio(self, rate: float,
                targets: Optional[set] = None) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"EIO rate must be in [0,1], got {rate}")
        self.eio_rate = rate
        if targets is not None:
            self.targets = set(targets)

    def set_torn(self, rate: float,
                 targets: Optional[set] = None) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"torn rate must be in [0,1], got {rate}")
        self.torn_rate = rate
        if targets is not None:
            self.targets = set(targets)

    def clear(self) -> None:
        self.eio_rate = self.torn_rate = 0.0
        self.targets = None

    @property
    def active(self) -> bool:
        return bool(self.eio_rate or self.torn_rate)

    def _applies(self, owner: str) -> bool:
        return self.targets is None or owner in self.targets

    def on_commit(self, owner: str, inner: ObjectStore,
                  obj: StoredObject) -> None:
        """Called before a wrapped commit; raises to inject the fault.

        A torn fault persists the partial object itself before raising,
        so the inner commit never runs for a failed write — exactly one
        medium state per outcome.
        """
        if not self.active or not self._applies(owner):
            return
        # Rates are consulted in a fixed order with one draw each while
        # nonzero, so a given seed yields the same fault sequence
        # regardless of which earlier faults actually fired.
        if self.eio_rate and self.rng.random() < self.eio_rate:
            self._record("eio", f"{owner}:{obj.oid}")
            raise MalacologyError(
                f"injected EIO on commit of {obj.oid} at {owner}")
        if self.torn_rate and self.rng.random() < self.torn_rate:
            inner[obj.oid] = _tear(inner.get(obj.oid), obj)
            self._record("torn", f"{owner}:{obj.oid}")
            raise MalacologyError(
                f"injected torn commit of {obj.oid} at {owner}")

    def _record(self, kind: str, detail: str) -> None:
        self.faults_injected += 1
        self.log.append((self.clock(), kind, detail))

    def flip_bit(self, store: ObjectStore, oid: str,
                 owner: str = "?") -> bool:
        """Silently corrupt one stored byte of ``oid`` (bit-rot).

        Returns False when the object is missing or has no data bytes
        to rot.  Goes through the mapping plane so no delay is charged
        and no version is bumped — the object looks untouched until a
        scrub hashes it.
        """
        obj = store.get(oid)
        if obj is None or not obj.data:
            return False
        index = self.rng.randrange(len(obj.data))
        obj.data[index] ^= 1 << self.rng.randrange(8)
        store[oid] = obj  # write back (cache tiers copy on read)
        self._record("bitrot", f"{owner}:{oid}@{index}")
        return True


def _tear(old: Optional[StoredObject],
          new: StoredObject) -> StoredObject:
    """The partially-applied object a torn commit leaves behind.

    The bytestream lands but the omap/xattrs plane does not — the
    classic multi-part update torn between its sub-writes.  Against an
    empty medium the tear keeps the bytestream only.
    """
    torn = StoredObject(new.oid)
    torn.data = bytearray(new.data)
    if old is not None:
        torn.omap = dict(old.omap)
        torn.xattrs = dict(old.xattrs)
    torn.version = new.version
    return torn


class FaultInjectingStore(ObjectStore):
    """Transparent fault shim over any backend.

    Only :meth:`commit` consults the plane; every other operation —
    including the whole ``MutableMapping`` plane — delegates straight
    through, so recovery and repair see the raw medium.
    """

    __slots__ = ("inner", "plane", "owner")

    def __init__(self, inner: ObjectStore, plane: StoreFaultPlane,
                 owner: str):
        super().__init__(perf=inner.perf)
        self.inner = inner
        self.plane = plane
        self.owner = owner

    # -- identity passthrough ------------------------------------------
    @property
    def profile(self) -> str:  # type: ignore[override]
        return self.inner.profile

    @property
    def needs_maintenance(self) -> bool:  # type: ignore[override]
        return self.inner.needs_maintenance

    # -- MutableMapping plane (never faulted) --------------------------
    def __getitem__(self, oid: str) -> StoredObject:
        return self.inner[oid]

    def __setitem__(self, oid: str, obj: StoredObject) -> None:
        self.inner[oid] = obj

    def __delitem__(self, oid: str) -> None:
        del self.inner[oid]

    def __iter__(self) -> Iterator[str]:
        return iter(self.inner)

    def __len__(self) -> int:
        return len(self.inner)

    # -- client-op plane -----------------------------------------------
    def fetch(self, oid: str) -> Tuple[Optional[StoredObject], float]:
        return self.inner.fetch(oid)

    def commit(self, obj: StoredObject) -> float:
        self.plane.on_commit(self.owner, self.inner, obj)
        return self.inner.commit(obj)

    def discard(self, oid: str) -> float:
        return self.inner.discard(oid)

    # -- maintenance / introspection -----------------------------------
    def maintenance(self, now: float) -> None:
        self.inner.maintenance(now)

    def flush(self, now: float) -> None:
        self.inner.flush(now)

    def status(self) -> Dict[str, Any]:
        status = self.inner.status()
        status["fault_plane"] = self.plane.active
        return status

    def to_dict(self) -> Dict[str, Any]:
        return self.inner.to_dict()

    def load_dict(self, data: Dict[str, Any]) -> None:
        self.inner.load_dict(data)

    def __repr__(self) -> str:
        return f"FaultInjectingStore({self.inner!r})"


def unwrap_store(store: ObjectStore) -> ObjectStore:
    """The store under any fault shim (for isinstance-based dispatch)."""
    while isinstance(store, FaultInjectingStore):
        store = store.inner
    return store
