"""Log-structured backend: append-only segments + index + compaction.

Writes never update in place: every commit appends a record to the
active segment and repoints the object index, leaving the previous
record as garbage.  That makes the write path cheap and sequential —
the right shape for ZLog entries and changelog shards, whose workload
is almost pure append — at the price of a slightly dearer read (index
hop + record load) and background compaction debt.

Compaction is deterministic and tick-driven: the OSD's jitter-free
store ticker calls :meth:`maintenance`, and when the dead-record ratio
crosses ``COMPACT_RATIO`` the store rewrites live records (in sorted
oid order) into fresh segments in one synchronous step.  No RNG, no
wall clock, no events of its own — two identical runs compact at the
identical sim-time ticks.

The ``COMPACTION_STALLED`` mgr health check watches the garbage-ratio
gauge against the compaction counter to catch a store that accumulates
debt without ever reclaiming it.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.rados.objects import StoredObject
from repro.store.base import ObjectStore


class LogRecord:
    """One appended object version inside a segment."""

    __slots__ = ("oid", "version", "obj")

    def __init__(self, oid: str, version: int, obj: StoredObject):
        self.oid = oid
        self.version = version
        self.obj = obj


class LogStructuredStore(ObjectStore):
    """Append-only segments with an oid index and tick compaction."""

    __slots__ = ("_segments", "_active", "_index", "_garbage",
                 "_records", "compactions", "last_compaction")

    profile = "logstructured"
    needs_maintenance = True

    #: Records per segment before the active segment is sealed.
    SEGMENT_RECORDS = 64
    #: Dead-record fraction that triggers compaction on the next tick.
    COMPACT_RATIO = 0.5
    #: Minimum record count before compaction is worth running.
    COMPACT_MIN_RECORDS = 32
    #: Modeled service delays (simulated seconds): appends are
    #: sequential and cheap; reads pay an index hop + record load.
    WRITE_DELAY = 15e-6
    READ_DELAY = 40e-6

    def __init__(self, perf: Optional[Any] = None):
        super().__init__(perf)
        self._segments: List[List[LogRecord]] = []
        self._active: List[LogRecord] = []
        self._index: Dict[str, LogRecord] = {}
        self._garbage = 0
        self._records = 0
        self.compactions = 0
        self.last_compaction = 0.0

    # -- internals ------------------------------------------------------
    def _append_record(self, obj: StoredObject) -> None:
        old = self._index.get(obj.oid)
        if old is not None:
            self._garbage += 1
        record = LogRecord(obj.oid, obj.version, obj)
        self._active.append(record)
        self._records += 1
        self._index[obj.oid] = record
        if len(self._active) >= self.SEGMENT_RECORDS:
            self._segments.append(self._active)
            self._active = []

    def garbage_ratio(self) -> float:
        return self._garbage / self._records if self._records else 0.0

    def eligible_garbage_ratio(self) -> float:
        """Garbage ratio, but 0.0 below the compaction size floor.

        Feeds the ``store.log.garbage_ratio`` gauge: a tiny store may
        sit above ``COMPACT_RATIO`` forever by design (compaction is
        not worth running), and the ``COMPACTION_STALLED`` check must
        not read that as debt.
        """
        if self._records < self.COMPACT_MIN_RECORDS:
            return 0.0
        return self.garbage_ratio()

    # -- MutableMapping -------------------------------------------------
    def __getitem__(self, oid: str) -> StoredObject:
        return self._index[oid].obj

    def __setitem__(self, oid: str, obj: StoredObject) -> None:
        self._append_record(obj)

    def __delitem__(self, oid: str) -> None:
        del self._index[oid]  # raises KeyError when absent
        self._garbage += 1    # the dead record stays until compaction

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._index))

    def __len__(self) -> int:
        return len(self._index)

    # -- client-op plane ------------------------------------------------
    def fetch(self, oid: str) -> Tuple[Optional[StoredObject], float]:
        record = self._index.get(oid)
        self.incr("read")
        if record is None:
            return None, self.READ_DELAY
        return record.obj, self.READ_DELAY

    def commit(self, obj: StoredObject) -> float:
        self._append_record(obj)
        self.incr("append")
        return self.WRITE_DELAY

    def discard(self, oid: str) -> float:
        self.pop(oid, None)
        return self.WRITE_DELAY

    # -- maintenance ----------------------------------------------------
    def maintenance(self, now: float) -> None:
        if (self._records >= self.COMPACT_MIN_RECORDS
                and self.garbage_ratio() >= self.COMPACT_RATIO):
            self._compact(now)

    def flush(self, now: float) -> None:
        if self._garbage:
            self._compact(now)

    def _compact(self, now: float) -> None:
        """Rewrite live records into fresh segments; drop the garbage."""
        self._segments = []
        self._active = []
        self._records = 0
        self._garbage = 0
        for oid in sorted(self._index):
            self._append_record(self._index[oid].obj)
        # Rewriting live records into the fresh log marked each one
        # "overwritten" once; they are live, not garbage.
        self._garbage = 0
        self.compactions += 1
        self.last_compaction = now
        self.incr("compaction")

    # -- introspection --------------------------------------------------
    def status(self) -> Dict[str, Any]:
        out = super().status()
        out.update({
            "segments": len(self._segments) + (1 if self._active else 0),
            "records": self._records,
            "garbage_ratio": self.garbage_ratio(),
            "compactions": self.compactions,
        })
        return out
