"""MemStore: the in-memory fast tier (the pre-refactor semantics).

A thin shell around one dict, preserving exactly what the OSD's
implicit PG storage did before the backend refactor: insertion-order
iteration, live object references, and **zero modeled delay** on every
path — so default pools schedule no extra simulator events and the
pre-refactor schedules replay byte-identically (pinned by a tape
test).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Tuple

from repro.rados.objects import StoredObject
from repro.store.base import ObjectStore


class MemStore(ObjectStore):
    """Flat in-memory object map; the default backend profile."""

    __slots__ = ("_objects",)

    profile = "memstore"
    needs_maintenance = False

    def __init__(self, perf: Optional[Any] = None):
        super().__init__(perf)
        self._objects: Dict[str, StoredObject] = {}

    # -- MutableMapping -------------------------------------------------
    def __getitem__(self, oid: str) -> StoredObject:
        return self._objects[oid]

    def __setitem__(self, oid: str, obj: StoredObject) -> None:
        self._objects[oid] = obj

    def __delitem__(self, oid: str) -> None:
        del self._objects[oid]

    def __iter__(self) -> Iterator[str]:
        return iter(self._objects)

    def __len__(self) -> int:
        return len(self._objects)

    # -- client-op plane ------------------------------------------------
    def fetch(self, oid: str) -> Tuple[Optional[StoredObject], float]:
        return self._objects.get(oid), 0.0

    def commit(self, obj: StoredObject) -> float:
        self._objects[obj.oid] = obj
        return 0.0

    def discard(self, oid: str) -> float:
        self._objects.pop(oid, None)
        return 0.0
