"""Cluster telemetry: perf counters, RPC tracing, admin commands.

The paper's thesis is that storage internals become reusable once they
are *exposed*; this package is how the reproduction exposes its own.
Three pieces, mirroring what real Ceph ships:

* :class:`PerfCounters` — a per-daemon registry of counters, gauges,
  decayed rates, and latency trackers (Ceph's ``PerfCounters`` /
  ``perf dump``).
* :class:`TraceCollector` / :class:`SpanContext` — causally-ordered
  span trees for one client op across client → MDS → monitor → OSD
  hops, stitched through the trace context on every RPC envelope.
* :func:`install_telemetry_commands` — the admin-socket command
  surface (``telemetry.dump`` / ``telemetry.reset`` /
  ``telemetry.trace``) registered on every daemon.
"""

from repro.telemetry.admin import install_telemetry_commands
from repro.telemetry.counters import LatencyTracker, PerfCounters
from repro.telemetry.trace import Span, SpanContext, TraceCollector

__all__ = [
    "LatencyTracker",
    "PerfCounters",
    "Span",
    "SpanContext",
    "TraceCollector",
    "install_telemetry_commands",
]
