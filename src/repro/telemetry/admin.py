"""The admin-socket command surface (Ceph: ``ceph daemon <name> ...``).

Real Ceph daemons expose a UNIX-domain admin socket answering ``perf
dump``, ``perf reset``, and friends *out of band* — it works even when
the cluster is wedged.  Here the analog is
:meth:`~repro.msg.daemon.Daemon.admin_command`: a direct, simulator-
time-free invocation on the daemon object.  The same commands are also
registered as RPC handlers so daemons and tests can query each other
in-band through the message layer.

Standard commands installed on every daemon:

* ``telemetry.dump``  — the full :class:`PerfCounters` registry as JSON;
* ``telemetry.reset`` — clear recorded counter values;
* ``telemetry.trace`` — list trace ids, or dump/render one span tree:
  ``{"trace_id": N}`` for the nested tree, plus ``{"render": true}``
  for the human-readable form.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.errors import InvalidArgument

#: Commands every daemon answers, both via ``admin_command`` and RPC.
STANDARD_COMMANDS = ("telemetry.dump", "telemetry.reset",
                     "telemetry.trace")


def install_telemetry_commands(daemon: Any) -> None:
    """Register the standard telemetry commands on one daemon."""
    daemon.register_admin_command("telemetry.dump",
                                  lambda args: daemon.perf.dump())
    daemon.register_admin_command("telemetry.reset",
                                  lambda args: _reset(daemon))
    daemon.register_admin_command("telemetry.trace",
                                  lambda args: trace_query(daemon.tracer,
                                                           args))


def _reset(daemon: Any) -> Dict[str, Any]:
    daemon.perf.reset()
    return {"reset": daemon.name}


def trace_query(tracer: Any, args: Optional[Dict[str, Any]]) -> Any:
    """Answer a ``telemetry.trace`` command against one collector."""
    args = args or {}
    trace_id = args.get("trace_id")
    if trace_id is None:
        return {"traces": tracer.trace_ids()}
    if trace_id not in tracer.trace_ids():
        raise InvalidArgument(f"unknown trace id {trace_id}")
    if args.get("render"):
        return tracer.render(trace_id)
    if args.get("critical_path"):
        return tracer.critical_path(trace_id)
    return tracer.tree(trace_id)
