"""Per-daemon performance counter registry (Ceph's PerfCounters).

Every :class:`~repro.msg.daemon.Daemon` owns one :class:`PerfCounters`
instance.  Four metric kinds cover what the daemons need to report:

* **counters** — monotonic event counts (``perf.incr``), like Ceph's
  ``add_u64_counter``;
* **gauges** — point-in-time values, either set explicitly
  (``perf.gauge``) or computed on dump from a callable
  (``perf.gauge_fn``), like ``add_u64`` / ``set``;
* **rates** — exponentially decayed event rates built on
  :class:`~repro.util.stats.DecayCounter` (``perf.rate_hit``);
* **latency trackers** — duration distributions (``perf.time``), like
  ``add_time_avg`` plus an optional full sample tape for exact tail
  quantiles (the Figure 7 CDF needs p99.99 and max, which summary
  statistics cannot recover).

All values are volatile daemon state: a crash resets the registry
(:meth:`PerfCounters.reset`), matching the discipline that anything
surviving failure must live in RADOS or the monitor store.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.util.stats import DecayCounter, OnlineStats, percentile

Clock = Callable[[], float]


class LatencyTracker:
    """Duration distribution for one operation name.

    Always keeps single-pass summary statistics; with ``retain=True``
    it also keeps every sample so exact quantiles (and external CDF
    construction) are possible.  Retention is reserved for the few
    client-side paths benchmarks read (``seq.next``, ``zlog.append``);
    dispatch-level RPC latencies stay summary-only to bound memory.
    """

    __slots__ = ("stats", "samples", "retain")

    def __init__(self, retain: bool = False):
        self.stats = OnlineStats()
        self.retain = retain
        self.samples: List[float] = []

    @property
    def count(self) -> int:
        return self.stats.count

    @property
    def sum(self) -> float:
        return self.stats.mean * self.stats.count

    def observe(self, duration: float) -> None:
        self.stats.add(duration)
        if self.retain:
            self.samples.append(duration)

    def quantile(self, q: float) -> float:
        """Exact quantile; only available on retaining trackers.

        Defined over the full closed range of inputs: an empty tracker
        answers 0.0 (the same "nothing recorded" value ``to_dict``
        reports for min/max), a single sample answers that sample for
        every ``q``, and the edges are exact — ``quantile(0.0)`` is the
        minimum, ``quantile(1.0)`` the maximum.  ``q`` outside [0, 1]
        raises ``ValueError``.
        """
        if not self.retain:
            raise ValueError("quantile() needs a retain=True tracker")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.samples:
            return 0.0
        return percentile(self.samples, q * 100.0)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "count": self.stats.count,
            "sum": self.sum,
            "mean": self.stats.mean,
            "min": self.stats.min if self.stats.count else 0.0,
            "max": self.stats.max if self.stats.count else 0.0,
        }
        if self.retain and self.samples:
            out["p50"] = self.quantile(0.50)
            out["p99"] = self.quantile(0.99)
        return out


class PerfCounters:
    """The counter/gauge/rate/latency registry one daemon owns.

    Metrics are created lazily on first touch — instrumentation points
    never need a registration step, so adding a counter to a code path
    is one line.  ``dump()`` exports plain JSON-safe dicts; that is the
    admin-socket wire format benchmarks and tests consume.
    """

    def __init__(self, owner: str = "", clock: Optional[Clock] = None):
        self.owner = owner
        self._clock: Clock = clock or (lambda: 0.0)
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, Any] = {}
        self._gauge_fns: Dict[str, Callable[[], Any]] = {}
        self._rates: Dict[str, DecayCounter] = {}
        self._rate_halflife: Dict[str, float] = {}
        self._latency: Dict[str, LatencyTracker] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def incr(self, name: str, amount: float = 1.0) -> None:
        """Bump a monotonic counter."""
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def gauge(self, name: str, value: Any) -> None:
        """Set a point-in-time gauge value."""
        self._gauges[name] = value

    def gauge_fn(self, name: str, fn: Callable[[], Any]) -> None:
        """Register a gauge computed at dump time (queue depths etc.).

        Survives :meth:`reset` — the *binding* is configuration, only
        the observed values are volatile.
        """
        self._gauge_fns[name] = fn

    def rate_hit(self, name: str, amount: float = 1.0,
                 halflife: float = 5.0) -> None:
        """Feed an exponentially decayed rate counter."""
        counter = self._rates.get(name)
        if counter is None:
            counter = self._rates[name] = DecayCounter(halflife)
            self._rate_halflife[name] = halflife
        counter.hit(self._clock(), amount)

    def time(self, name: str, duration: float,
             retain: bool = False) -> None:
        """Record one operation duration (simulated seconds)."""
        self.latency(name, retain=retain).observe(duration)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def get(self, name: str) -> float:
        """Current value of a counter (0.0 if never bumped)."""
        return self._counters.get(name, 0.0)

    def latency(self, name: str, retain: bool = False) -> LatencyTracker:
        """The tracker for ``name``, created on first access.

        ``retain`` only applies at creation; an existing tracker keeps
        its original retention setting.
        """
        tracker = self._latency.get(name)
        if tracker is None:
            tracker = self._latency[name] = LatencyTracker(retain=retain)
        return tracker

    def samples(self, name: str) -> List[float]:
        """Retained latency samples for ``name`` ([] if none)."""
        tracker = self._latency.get(name)
        return list(tracker.samples) if tracker else []

    def dump(self) -> Dict[str, Any]:
        """Export everything as a JSON-safe dict (``perf dump``)."""
        now = self._clock()
        gauges = dict(self._gauges)
        for name, fn in self._gauge_fns.items():
            gauges[name] = fn()
        return {
            "owner": self.owner,
            "counters": dict(self._counters),
            "gauges": gauges,
            "rates": {name: c.get(now) for name, c in self._rates.items()},
            "latency": {name: t.to_dict()
                        for name, t in self._latency.items()},
        }

    def nonzero(self) -> bool:
        """True once any counter or latency tracker has recorded."""
        return (any(v for v in self._counters.values())
                or any(t.count for t in self._latency.values()))

    def reset(self) -> None:
        """Clear all recorded values (``perf reset`` / crash).

        Gauge-function bindings survive (they are wiring, not data);
        retention settings of latency trackers are rebuilt lazily on
        next use.
        """
        self._counters.clear()
        self._gauges.clear()
        self._rates.clear()
        self._rate_halflife.clear()
        self._latency.clear()
