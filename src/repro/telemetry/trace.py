"""RPC tracing: span trees over simulated time.

One client operation fans out across daemons — a ZLog append touches
the client, possibly the MDS (capability grant), and one or more OSDs
(objclass execution plus replication).  The trace layer stitches those
hops into a single causally-ordered tree:

* a **root span** opens when client code runs under
  ``Daemon.traced(...)``;
* the active :class:`SpanContext` is stamped onto every outgoing
  request/cast envelope (``Envelope.trace``);
* the receiving daemon opens a **child span** for its handler and
  propagates further, so nesting follows the actual RPC causality;
* all spans land in one :class:`TraceCollector` shared through the
  simulator (``sim.trace_collector``), which can render the tree or
  extract the critical path in simulated time.

This is the blkin/OpTracker role in real Ceph, minus the wall clock:
simulated time makes span math exact and runs reproducible.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class SpanContext:
    """The (trace id, span id) pair carried on the wire."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: int, span_id: int):
        self.trace_id = trace_id
        self.span_id = span_id

    def wire(self) -> Dict[str, int]:
        """Envelope encoding (plain dict: survives payload deep-copy)."""
        return {"trace": self.trace_id, "span": self.span_id}

    def __repr__(self) -> str:
        return f"SpanContext(trace={self.trace_id}, span={self.span_id})"


class Span:
    """One timed unit of work on one daemon."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "daemon",
                 "src", "kind", "start", "end", "error")

    def __init__(self, trace_id: int, span_id: int,
                 parent_id: Optional[int], name: str, daemon: str,
                 start: float, src: Optional[str] = None,
                 kind: Optional[str] = None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.daemon = daemon
        self.src = src
        self.kind = kind
        self.start = start
        self.end: Optional[float] = None
        self.error: Optional[str] = None

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "daemon": self.daemon,
            "src": self.src,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "error": self.error,
        }

    def __repr__(self) -> str:
        return (f"Span({self.name!r} on {self.daemon} "
                f"[{self.start:.6f}..{self.end}])")


class TraceCollector:
    """Cluster-wide span store, shared through the simulator.

    IDs are plain monotonic integers — the simulator is the single
    authority, so uniqueness needs no randomness and traces replay
    byte-identically across runs (the determinism contract).
    """

    def __init__(self, sim: Any):
        self.sim = sim
        self._spans: Dict[int, Span] = {}
        self._by_trace: Dict[int, List[int]] = {}
        self._next_trace = 1
        self._next_span = 1

    @classmethod
    def of(cls, sim: Any) -> "TraceCollector":
        """The simulator's collector, created and attached on demand."""
        collector = getattr(sim, "trace_collector", None)
        if collector is None:
            collector = cls(sim)
            sim.trace_collector = collector
        return collector

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def begin_trace(self, name: str, daemon: str) -> SpanContext:
        """Open a new root span; returns its context for propagation."""
        trace_id = self._next_trace
        self._next_trace += 1
        span = self._open(trace_id, None, name, daemon)
        return SpanContext(trace_id, span.span_id)

    def start_span(self, name: str, daemon: str, trace_id: int,
                   parent_id: int, src: Optional[str] = None,
                   kind: Optional[str] = None) -> Span:
        """Open a child span under ``parent_id`` (an RPC hop landing)."""
        return self._open(trace_id, parent_id, name, daemon,
                          src=src, kind=kind)

    def _open(self, trace_id: int, parent_id: Optional[int], name: str,
              daemon: str, src: Optional[str] = None,
              kind: Optional[str] = None) -> Span:
        span_id = self._next_span
        self._next_span += 1
        span = Span(trace_id, span_id, parent_id, name, daemon,
                    start=self.sim.now, src=src, kind=kind)
        self._spans[span_id] = span
        self._by_trace.setdefault(trace_id, []).append(span_id)
        return span

    def finish(self, span_id: int,
               error: Optional[BaseException] = None) -> None:
        span = self._spans.get(span_id)
        if span is None or span.finished:
            return
        span.end = self.sim.now
        if error is not None:
            span.error = repr(error)

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------
    def trace_ids(self) -> List[int]:
        return sorted(self._by_trace)

    def spans(self, trace_id: int) -> List[Span]:
        """All spans of one trace, ordered by start time then id."""
        ids = self._by_trace.get(trace_id, [])
        return sorted((self._spans[i] for i in ids),
                      key=lambda s: (s.start, s.span_id))

    def tree(self, trace_id: int) -> List[Dict[str, Any]]:
        """Nested ``{"span": ..., "children": [...]}`` forest.

        Normally a single root; multiple roots appear only if spans
        were collected for a parent that lives in another (reset)
        collector generation.
        """
        nodes = {s.span_id: {"span": s.to_dict(), "children": []}
                 for s in self.spans(trace_id)}
        roots = []
        for span in self.spans(trace_id):
            node = nodes[span.span_id]
            parent = nodes.get(span.parent_id)
            if parent is None:
                roots.append(node)
            else:
                parent["children"].append(node)
        return roots

    def render(self, trace_id: int) -> str:
        """Human-readable indented span tree with simulated timings."""
        lines: List[str] = []

        def _fmt(span: Dict[str, Any]) -> str:
            dur = span["duration"]
            dur_s = f"{dur * 1e6:10.1f}us" if dur is not None else "   (open)"
            via = f" <- {span['src']}" if span["src"] else ""
            err = f"  ERROR {span['error']}" if span["error"] else ""
            return (f"{dur_s}  @{span['start'] * 1e3:9.3f}ms  "
                    f"{span['daemon']}: {span['name']}{via}{err}")

        def _walk(node: Dict[str, Any], depth: int) -> None:
            lines.append("  " * depth + _fmt(node["span"]))
            for child in node["children"]:
                _walk(child, depth + 1)

        for root in self.tree(trace_id):
            _walk(root, 0)
        return "\n".join(lines)

    def critical_path(self, trace_id: int) -> List[Dict[str, Any]]:
        """Root-to-leaf chain through the latest-finishing child.

        The classic critical-path heuristic: at each level, descend
        into the child whose end time bounds the parent's — the hop
        the op was actually waiting on.
        """
        roots = self.tree(trace_id)
        if not roots:
            return []
        path = []
        node = roots[0]
        while True:
            path.append(node["span"])
            children = [c for c in node["children"]
                        if c["span"]["end"] is not None]
            if not children:
                return path
            node = max(children, key=lambda c: c["span"]["end"])

    def reset(self) -> None:
        """Drop all collected spans (``telemetry.reset`` at cluster level)."""
        self._spans.clear()
        self._by_trace.clear()
