"""Builders and helpers shared by tests, benchmarks, and examples.

These are *public*: downstream users writing their own experiments get
the same convenience the in-tree benchmarks use.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Tuple

from repro.monitor.monitor import Monitor, MonitorClient
from repro.msg import Daemon
from repro.rados.client import RadosClient
from repro.sim import FixedLatency, Network, Simulator
from repro.sim.network import LatencyModel, lan_latency


def build_monitor_quorum(
    count: int = 3,
    seed: int = 0,
    proposal_interval: float = 0.1,
    backing: str = "ram",
    latency: Optional[LatencyModel] = None,
) -> Tuple[Simulator, Network, List[Monitor]]:
    """Boot a monitor quorum on a fresh simulator.

    Returns before any election has happened; run the simulator for a
    couple of simulated seconds (or use :func:`settle_quorum`) to let a
    leader emerge.
    """
    sim = Simulator(seed=seed)
    net = Network(sim, latency=latency or lan_latency())
    names = [f"mon{i}" for i in range(count)]
    mons = [Monitor(sim, net, name, names,
                    proposal_interval=proposal_interval, backing=backing)
            for name in names]
    return sim, net, mons


def settle_quorum(sim: Simulator, mons: List[Monitor],
                  deadline: float = 30.0) -> Monitor:
    """Run until a leader exists; returns the leader monitor."""
    step = 0.5
    t = sim.now
    while t < deadline:
        t = sim.run(until=t + step)
        leaders = [m for m in mons if m.alive and m.is_leader]
        if len(leaders) == 1:
            return leaders[0]
    raise AssertionError("no leader emerged before the deadline")


def build_rados_cluster(
    osd_count: int = 4,
    mon_count: int = 3,
    seed: int = 0,
    proposal_interval: float = 0.1,
    pools: Optional[dict] = None,
    latency: Optional[LatencyModel] = None,
) -> "RadosCluster":
    """Boot monitors + OSDs and create pools; settle until serviceable.

    ``pools`` maps pool name -> {"size": r, "pg_num": n}; defaults to
    one pool ``"data"`` with 2x replication and 32 PGs.
    """
    from repro.rados.osd import OSD

    sim, net, mons = build_monitor_quorum(
        count=mon_count, seed=seed, proposal_interval=proposal_interval,
        latency=latency)
    settle_quorum(sim, mons)
    mon_names = [m.name for m in mons]
    osds = [OSD(sim, net, f"osd{i}", mon_names) for i in range(osd_count)]
    # Let OSDs boot and learn the map.
    deadline = sim.now + 60.0
    while sim.now < deadline and not all(o.booted for o in osds):
        sim.run(until=sim.now + 0.5)
    if not all(o.booted for o in osds):
        raise AssertionError("OSDs failed to boot")
    client = RadosScriptClient(sim, net, "admin", mon_names)
    for name, cfg in (pools or {"data": {"size": 2, "pg_num": 32}}).items():
        run_script(sim, client, client.rados_create_pool(
            name, size=cfg.get("size", 2), pg_num=cfg.get("pg_num", 32),
            ec=cfg.get("ec"), backend=cfg.get("backend"),
            cache=cfg.get("cache")))
    sim.run(until=sim.now + 2.0)  # let the pool map gossip out
    return RadosCluster(sim=sim, net=net, mons=mons, osds=osds,
                        admin=client)


class RadosCluster:
    """Handle bundling a booted simulation cluster for tests/benches."""

    def __init__(self, sim: Simulator, net: Network, mons: List[Monitor],
                 osds: list, admin: "RadosScriptClient"):
        self.sim = sim
        self.net = net
        self.mons = mons
        self.osds = osds
        self.admin = admin

    @property
    def mon_names(self) -> List[str]:
        return [m.name for m in self.mons]

    def new_client(self, name: str) -> "RadosScriptClient":
        return RadosScriptClient(self.sim, self.net, name, self.mon_names)

    def run(self, seconds: float) -> None:
        self.sim.run(until=self.sim.now + seconds)

    def do(self, gen: Generator, limit: float = 1e9) -> Any:
        """Run a client script (generator) to completion on the admin."""
        return run_script(self.sim, self.admin, gen, limit=limit)


class ScriptClient(Daemon, MonitorClient):
    """A generic client daemon for driving scripted operations.

    ``do(gen)`` spawns a generator (typically built from the
    MonitorClient / RadosClient / filesystem-client mixin methods) and
    returns its process; combine with ``sim.run_until_complete``.
    """

    def __init__(self, sim: Simulator, network: Network, name: str,
                 mon_names: List[str]):
        super().__init__(sim, network, name)
        self.init_mon_client(mon_names)

    def do(self, gen: Generator, name: str = "script"):
        return self.spawn(gen, name=f"{self.name}:{name}")


class RadosScriptClient(ScriptClient, RadosClient):
    """Script client with full object-store access."""


def run_script(sim: Simulator, client: ScriptClient,
               gen: Generator, limit: float = 1e9) -> Any:
    """Spawn ``gen`` on ``client`` and drive the sim to its completion."""
    proc = client.do(gen)
    return sim.run_until_complete(proc, limit=limit)
