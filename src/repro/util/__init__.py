"""Shared utilities: statistics, histograms, and small helpers."""

from repro.util.stats import (
    Cdf,
    OnlineStats,
    Histogram,
    ThroughputSeries,
    percentile,
)

__all__ = [
    "Cdf",
    "OnlineStats",
    "Histogram",
    "ThroughputSeries",
    "percentile",
]
