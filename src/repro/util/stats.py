"""Measurement primitives used by the evaluation harness.

The paper's figures are latency CDFs (Figures 7 and 8), throughput
time-series (Figures 9 and 12), and bar charts of steady-state
throughput (Figures 6 and 10).  These classes collect exactly those
shapes from simulated runs without pulling in plotting dependencies.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Iterable, List, Sequence, Tuple


def percentile(samples: Sequence[float], pct: float) -> float:
    """Return the ``pct``-th percentile of ``samples`` (0 <= pct <= 100).

    Uses linear interpolation between closest ranks, matching
    ``numpy.percentile``'s default behaviour so results line up with the
    paper's Jupyter analyses.
    """
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi or ordered[lo] == ordered[hi]:
        # Exact rank, or equal bracketing values: no interpolation —
        # avoids float round-off breaking quantile monotonicity.
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class Cdf:
    """An empirical cumulative distribution function.

    Built once from samples, then queried for quantiles or evaluated at
    arbitrary points.  Used to regenerate Figure 7 (sequencer latency
    CDF) and Figure 8 (interface-propagation latency CDF).
    """

    def __init__(self, samples: Iterable[float]):
        self._sorted: List[float] = sorted(samples)
        if not self._sorted:
            raise ValueError("Cdf requires at least one sample")

    def __len__(self) -> int:
        return len(self._sorted)

    @property
    def min(self) -> float:
        return self._sorted[0]

    @property
    def max(self) -> float:
        return self._sorted[-1]

    def at(self, value: float) -> float:
        """Fraction of samples <= ``value``."""
        idx = bisect.bisect_right(self._sorted, value)
        return idx / len(self._sorted)

    def quantile(self, q: float) -> float:
        """Value at cumulative fraction ``q`` (0 <= q <= 1)."""
        return percentile(self._sorted, q * 100.0)

    def series(self, points: int = 100) -> List[Tuple[float, float]]:
        """Evenly spaced (value, fraction) pairs for table output."""
        if points < 2:
            raise ValueError("need at least two points")
        out = []
        for i in range(points):
            q = i / (points - 1)
            out.append((self.quantile(q), q))
        return out


class DecayCounter:
    """Exponentially decayed event counter (CephFS's DecayCounter).

    Shared by the MDS load tracker and the telemetry rate counters;
    lives here so ``repro.telemetry`` never has to import a daemon
    package.
    """

    def __init__(self, halflife: float = 5.0):
        if halflife <= 0:
            raise ValueError("halflife must be positive")
        self._lambda = math.log(2.0) / halflife
        self._value = 0.0
        self._last = 0.0

    def hit(self, now: float, amount: float = 1.0) -> None:
        self._decay_to(now)
        self._value += amount

    def get(self, now: float) -> float:
        self._decay_to(now)
        return self._value

    def peek(self, now: float) -> float:
        """Read the decayed value WITHOUT updating internal state.

        ``get`` folds the elapsed decay into ``_value``, which is
        correct but not float-exact across different call patterns
        (``exp(a)·exp(b) != exp(a+b)`` in floats).  Observability code
        (mgr gauges) must use ``peek`` so that sampling a counter more
        or less often never changes the values the owning daemon later
        computes — determinism of seeded runs depends on it.
        """
        dt = now - self._last
        if dt <= 0:
            return self._value
        return self._value * math.exp(-self._lambda * dt)

    def scale(self, factor: float) -> None:
        """Scale the counter (used when splitting load across exports)."""
        self._value *= factor

    def _decay_to(self, now: float) -> None:
        dt = now - self._last
        if dt > 0:
            self._value *= math.exp(-self._lambda * dt)
            self._last = now


class OnlineStats:
    """Single-pass mean/variance/min/max accumulator (Welford)."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)


class Histogram:
    """Fixed-width bucket histogram over a closed range.

    Values outside the range are clamped into the edge buckets so no
    sample is silently dropped.
    """

    def __init__(self, lo: float, hi: float, buckets: int = 50):
        if hi <= lo:
            raise ValueError("hi must exceed lo")
        if buckets < 1:
            raise ValueError("need at least one bucket")
        self.lo = lo
        self.hi = hi
        self.counts = [0] * buckets
        self._width = (hi - lo) / buckets

    def add(self, value: float) -> None:
        idx = int((value - self.lo) / self._width)
        idx = max(0, min(len(self.counts) - 1, idx))
        self.counts[idx] += 1

    @property
    def total(self) -> int:
        return sum(self.counts)

    def bucket_edges(self) -> List[float]:
        return [self.lo + i * self._width for i in range(len(self.counts) + 1)]


class ThroughputSeries:
    """Bins completion events into fixed windows of simulated time.

    Produces the ops/second-over-time curves of Figures 9 and 12.  Each
    recorded event lands in the window ``floor(t / window)``; reading
    the series fills empty windows with zero so plots are continuous.
    """

    def __init__(self, window: float = 1.0):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._bins: Dict[int, int] = {}

    def record(self, t: float, count: int = 1) -> None:
        if t < 0:
            raise ValueError("negative timestamp")
        self._bins[int(t // self.window)] = (
            self._bins.get(int(t // self.window), 0) + count
        )

    @property
    def total(self) -> int:
        return sum(self._bins.values())

    def rate_at(self, t: float) -> float:
        """Ops/second in the window containing ``t``."""
        return self._bins.get(int(t // self.window), 0) / self.window

    def series(self) -> List[Tuple[float, float]]:
        """(window start time, ops/sec) pairs covering the full span."""
        if not self._bins:
            return []
        last = max(self._bins)
        return [
            (i * self.window, self._bins.get(i, 0) / self.window)
            for i in range(last + 1)
        ]

    def mean_rate(self, start: float = 0.0, end: float = math.inf) -> float:
        """Average ops/second over [start, end) of simulated time."""
        if not self._bins:
            return 0.0
        total = 0
        lo = int(start // self.window)
        hi_bin = max(self._bins)
        hi = min(hi_bin, int(end // self.window)) if end != math.inf else hi_bin
        windows = hi - lo + 1
        if windows <= 0:
            return 0.0
        for i in range(lo, hi + 1):
            total += self._bins.get(i, 0)
        return total / (windows * self.window)
