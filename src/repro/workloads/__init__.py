"""Workload generators and measurement plumbing for the evaluation."""

from repro.workloads.generators import (
    LeaseContentionWorkload,
    SequencerWorkload,
    interleaving_runs,
)

__all__ = [
    "SequencerWorkload",
    "LeaseContentionWorkload",
    "interleaving_runs",
]
