"""Closed-loop sequencer workloads (the evaluation's driver).

Two shapes cover all of sections 6.1 and 6.2:

* :class:`LeaseContentionWorkload` — a handful of clients hammering
  ONE sequencer under a cacheable lease policy; measures per-operation
  latency and the capability interleaving trace (Figures 5-7);
* :class:`SequencerWorkload` — several sequencers each with their own
  client group, in round-trip mode so load lands on the MDSs; measures
  throughput over time per sequencer and cluster-wide (Figures 9, 10,
  12).

Clients are closed-loop: each issues its next request when the
previous completes, so throughput responds to server load the way the
paper's clients do.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.errors import AlreadyExists, MalacologyError
from repro.util.stats import ThroughputSeries


class SequencerWorkload:
    """N sequencers × M clients each, measuring throughput over time."""

    def __init__(self, cluster: Any, num_sequencers: int = 3,
                 clients_per_seq: int = 4, base: str = "/seqbench",
                 window: float = 1.0):
        self.cluster = cluster
        self.num_sequencers = num_sequencers
        self.clients_per_seq = clients_per_seq
        self.base = base
        self.total = ThroughputSeries(window=window)
        self.per_seq: List[ThroughputSeries] = [
            ThroughputSeries(window=window) for _ in range(num_sequencers)]
        self._procs: List[Any] = []
        self._clients: List[Any] = []
        self._stop = False

    # ------------------------------------------------------------------
    def seq_path(self, idx: int) -> str:
        return f"{self.base}/seq{idx}"

    def setup(self, lease_mode: str = "round-trip",
              min_hold: float = 0.0, quota: int = 0,
              max_hold: float = 0.25) -> None:
        """Create the sequencers and set the cluster lease policy."""
        from repro.core import SharedResourceInterface

        c = self.cluster
        shared = SharedResourceInterface(c.admin)
        c.do(shared.set_lease_policy(lease_mode, min_hold=min_hold,
                                     quota=quota, max_hold=max_hold))
        try:
            c.do(c.admin.fs_mkdir(self.base))
        except AlreadyExists:
            pass
        for i in range(self.num_sequencers):
            try:
                c.do(c.admin.fs_create(self.seq_path(i),
                                       file_type="sequencer"))
            except AlreadyExists:
                pass

    def start(self) -> None:
        """Spawn all client loops (they run until :meth:`stop`)."""
        self._stop = False
        for seq_idx in range(self.num_sequencers):
            for client_idx in range(self.clients_per_seq):
                client = self.cluster.new_client(
                    f"wl-s{seq_idx}-c{client_idx}")
                self._clients.append(client)
                proc = client.spawn(
                    self._client_loop(client, seq_idx),
                    name=f"wl:{seq_idx}:{client_idx}")
                self._procs.append(proc)

    def _client_loop(self, client: Any, seq_idx: int) -> Generator:
        # Per-op latency lands in each client's "seq.next" telemetry
        # tracker (recorded inside seq_next itself); only the
        # throughput binning stays here, since it is windowed by
        # completion *time*, which counters do not keep.
        path = self.seq_path(seq_idx)
        while not self._stop:
            try:
                yield from client.seq_next(path)
            except MalacologyError:
                continue  # transient (migration freeze etc.); retry
            now = client.sim.now
            self.total.record(now)
            self.per_seq[seq_idx].record(now)

    def stop(self) -> None:
        self._stop = True
        for proc in self._procs:
            proc.cancel()
        self._procs.clear()

    # ------------------------------------------------------------------
    @property
    def latencies(self) -> List[float]:
        """All per-op latencies, pulled from client telemetry."""
        return [s for c in self._clients
                for s in c.perf.samples("seq.next")]

    def mean_rate(self, start: float = 0.0,
                  end: float = float("inf")) -> float:
        return self.total.mean_rate(start, end)


class LeaseContentionWorkload:
    """A few clients contending for ONE cacheable sequencer.

    Per-client position traces land in each client's ``seq_trace``
    (used for the Figure 5 interleaving analysis); per-op latencies
    come from each client's ``seq.next`` telemetry tracker — the
    workload keeps no accounting of its own.
    """

    def __init__(self, cluster: Any, clients: int = 2,
                 path: str = "/leasebench/seq"):
        self.cluster = cluster
        self.num_clients = clients
        self.path = path
        self.clients: List[Any] = []
        self._procs: List[Any] = []
        self._stop = False

    def setup(self, mode: str, min_hold: float = 0.0, quota: int = 0,
              max_hold: float = 0.25) -> None:
        from repro.core import SharedResourceInterface

        c = self.cluster
        c.do(SharedResourceInterface(c.admin).set_lease_policy(
            mode, min_hold=min_hold, quota=quota, max_hold=max_hold))
        parent = self.path.rsplit("/", 1)[0]
        try:
            c.do(c.admin.fs_mkdir(parent))
        except AlreadyExists:
            pass
        try:
            c.do(c.admin.fs_create(self.path, file_type="sequencer"))
        except AlreadyExists:
            pass

    def start(self) -> None:
        self._stop = False
        for i in range(self.num_clients):
            client = self.cluster.new_client(f"lease-c{i}")
            self.clients.append(client)
            proc = client.spawn(self._loop(client, i), name=f"lease:{i}")
            self._procs.append(proc)

    def _loop(self, client: Any, idx: int) -> Generator:
        while not self._stop:
            try:
                yield from client.seq_next(self.path)
            except MalacologyError:
                continue

    def stop(self) -> None:
        self._stop = True
        for proc in self._procs:
            proc.cancel()
        self._procs.clear()

    @property
    def latencies(self) -> List[List[float]]:
        """Per-client latency samples, from client telemetry."""
        return [c.perf.samples("seq.next") for c in self.clients]

    @property
    def ops_done(self) -> List[int]:
        return [c.perf.latency("seq.next").count for c in self.clients]

    def all_latencies(self) -> List[float]:
        return [lat for per_client in self.latencies for lat in per_client]

    def total_ops(self) -> int:
        return sum(self.ops_done)

    def traces(self) -> List[List[Tuple[float, int]]]:
        return [list(c.seq_trace) for c in self.clients]


def interleaving_runs(traces: List[List[Tuple[float, int]]]
                      ) -> List[int]:
    """Lengths of consecutive-position runs per holder (Figure 5).

    Merge all clients' (position -> client) claims, order by position,
    and measure how long each client kept the capability before it
    bounced.  Long runs = the lease policy let holders batch; run
    length 1 everywhere = pathological ping-ponging.
    """
    owner_by_pos: Dict[int, int] = {}
    for idx, trace in enumerate(traces):
        for _, pos in trace:
            owner_by_pos[pos] = idx
    runs: List[int] = []
    current_owner: Optional[int] = None
    current_len = 0
    for pos in sorted(owner_by_pos):
        owner = owner_by_pos[pos]
        if owner == current_owner:
            current_len += 1
        else:
            if current_len:
                runs.append(current_len)
            current_owner = owner
            current_len = 1
    if current_len:
        runs.append(current_len)
    return runs
