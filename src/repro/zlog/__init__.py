"""ZLog: a high-performance distributed shared log (CORFU on Malacology).

The composition the paper builds in section 5.2:

* the **sequencer** is an inode of File Type ``sequencer`` — naming
  comes free from the POSIX hierarchy, serialization and caching from
  the capability system, recovery from the metadata service;
* the **storage interface** is the ``zlog`` object class (write-once,
  random-read, epoch-fenced log positions striped over RADOS objects);
* **epochs** live in the Service Metadata interface, so sealing
  propagates consistently to every client;
* **recovery** recomputes the sequencer from storage: bump the epoch,
  seal every stripe object (invalidating stale clients), take the max
  written position, and restart the counter above it.
"""

from repro.zlog.striping import StripeLayout
from repro.zlog.log import ZLog
from repro.zlog.recovery import recover_log
from repro.zlog.kvstore import LogBackedDict
from repro.zlog.table import TransactionalTable

__all__ = [
    "StripeLayout",
    "ZLog",
    "recover_log",
    "LogBackedDict",
    "TransactionalTable",
]
