"""A replicated dictionary over the shared log (Tango-style).

The paper motivates shared logs as the substrate for distributed data
structures and elastic databases (section 5.2, citing Tango/Hyder).
``LogBackedDict`` is that pattern in miniature and powers one of the
example applications: every mutation is an entry appended to a ZLog;
every replica reaches the same state by replaying the log in position
order.  Strong reads sync to the tail first.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from repro.errors import InvalidArgument, NotFound
from repro.zlog.log import ZLog


class LogBackedDict:
    """One replica of the log-backed dictionary."""

    def __init__(self, log: ZLog):
        self.log = log
        self._state: Dict[str, Any] = {}
        self._applied = 0  # next position to replay

    # ------------------------------------------------------------------
    # Mutations (write through the log)
    # ------------------------------------------------------------------
    def put(self, key: str, value: Any) -> Generator:
        pos = yield from self.log.append(
            {"op": "put", "key": key, "value": value})
        return pos

    def delete(self, key: str) -> Generator:
        pos = yield from self.log.append({"op": "del", "key": key})
        return pos

    # ------------------------------------------------------------------
    # Reads (replay to the tail for linearizability)
    # ------------------------------------------------------------------
    def get(self, key: str) -> Generator:
        yield from self.sync()
        if key not in self._state:
            raise NotFound(f"key {key!r} not in log-backed dict")
        return self._state[key]

    def snapshot(self) -> Generator:
        yield from self.sync()
        return dict(self._state)

    def local_get(self, key: str, default: Any = None) -> Any:
        """Read the possibly-stale local materialization (no sync)."""
        return self._state.get(key, default)

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def sync(self) -> Generator:
        """Replay the log up to the current tail."""
        tail = yield from self.log.tail()
        while self._applied < tail:
            pos = self._applied
            try:
                entry = yield from self.log.read(pos)
            except NotFound:
                # A hole: a client got a position but hasn't written
                # (or died).  Fill it so replay can proceed — the CORFU
                # hole-filling discipline.
                from repro.errors import ReadOnly

                try:
                    yield from self.log.fill(pos)
                    entry = {"state": "filled"}
                except ReadOnly:
                    # The writer won the race after our failed read.
                    entry = yield from self.log.read(pos)
            self._apply(pos, entry)
            self._applied = pos + 1

    def _apply(self, pos: int, entry: Dict[str, Any]) -> None:
        if entry.get("state") != "written":
            return  # filled or trimmed: no-op
        cmd = entry["data"]
        op = cmd.get("op")
        if op == "put":
            self._state[cmd["key"]] = cmd["value"]
        elif op == "del":
            self._state.pop(cmd["key"], None)
        else:
            raise InvalidArgument(f"unknown log command {op!r} at {pos}")
