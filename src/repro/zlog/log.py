"""The ZLog client: append/read/fill/trim over Malacology interfaces.

One :class:`ZLog` instance binds a log name to a full-stack client
(:class:`~repro.core.cluster.MalacologyClient`).  The append path is
the CORFU fast path:

1. get the next position from the sequencer (File Type + Shared
   Resource interfaces — locally if this client holds the capability);
2. write the entry to the stripe object for that position (Data I/O
   interface, ``zlog`` class), tagged with the client's view of the
   epoch;
3. on ``ESTALE`` (the log was sealed underneath us), refresh the epoch
   from Service Metadata and retry with a fresh position.

All methods are generators driven on the owning client's processes.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from repro.errors import NotFound, ReadOnly, StaleEpoch
from repro.zlog.striping import StripeLayout

#: Where a log keeps its sequencer inode in the namespace.
def sequencer_path(log_name: str) -> str:
    return f"/zlog/{log_name}/seq"


def epoch_key(log_name: str) -> str:
    """Service-metadata key holding the log's current epoch."""
    return f"zlog/{log_name}/epoch"


def layout_key(log_name: str) -> str:
    return f"zlog/{log_name}/layout"


class ZLog:
    """Client handle on one shared log."""

    MAX_APPEND_RETRIES = 8

    def __init__(self, client: Any, name: str,
                 layout: Optional[StripeLayout] = None):
        self.client = client
        self.name = name
        self.layout = layout or StripeLayout(name)
        self.epoch = 1

    # ------------------------------------------------------------------
    # Creation / open
    # ------------------------------------------------------------------
    def create(self) -> Generator:
        """Create the log: sequencer inode + epoch registration."""
        c = self.client
        from repro.errors import AlreadyExists

        for path in ("/zlog", f"/zlog/{self.name}"):
            try:
                yield from c.fs_mkdir(path)
            except AlreadyExists:
                pass
        yield from c.fs_create(sequencer_path(self.name),
                               file_type="sequencer")
        yield from c.mon_kv_put(epoch_key(self.name), 1)
        yield from c.mon_kv_put(layout_key(self.name),
                                self.layout.to_dict())
        self.epoch = 1

    def open(self) -> Generator:
        """Bind to an existing log: fetch epoch and layout."""
        c = self.client
        entry = yield from c.mon_kv_get(epoch_key(self.name))
        self.epoch = entry["value"]
        entry = yield from c.mon_kv_get(layout_key(self.name))
        self.layout = StripeLayout.from_dict(entry["value"])

    def refresh_epoch(self) -> Generator:
        entry = yield from self.client.mon_kv_get(epoch_key(self.name))
        self.epoch = entry["value"]
        return self.epoch

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def append(self, data: Any) -> Generator:
        """Append one entry; returns its log position.

        End-to-end latency lands in the client's ``zlog.append``
        telemetry tracker (samples retained for CDFs); epoch races and
        slot collisions are counted separately.
        """
        c = self.client
        started = c.sim.now
        for _ in range(self.MAX_APPEND_RETRIES):
            pos = yield from c.seq_next(sequencer_path(self.name))
            try:
                yield from c.rados_exec(
                    self.layout.pool, self.layout.object_of(pos),
                    "zlog", "write",
                    {"epoch": self.epoch, "pos": pos, "data": data})
                c.perf.time("zlog.append", c.sim.now - started,
                            retain=True)
                return pos
            except StaleEpoch:
                # Sealed underneath us: adopt the new epoch, get a fresh
                # tail from the (recovered) sequencer, try again.
                c.perf.incr("zlog.append.stale")
                yield from self.refresh_epoch()
            except ReadOnly:
                # Someone beat us to this slot — a duplicate position
                # after a sequencer holder died with unflushed state.
                # Push the sequencer past the collision (it can only
                # ever move forward) and take a fresh position.
                c.perf.incr("zlog.append.conflict")
                yield from c.fs_exec(sequencer_path(self.name),
                                     "set_min_tail", {"tail": pos + 1})
                continue
        raise StaleEpoch(
            f"append to log {self.name!r} kept racing seals")

    def read(self, position: int) -> Generator:
        """Read one position; raises NotFound while unwritten."""
        result = yield from self.client.rados_exec(
            self.layout.pool, self.layout.object_of(position),
            "zlog", "read", {"epoch": self.epoch, "pos": position})
        self.client.perf.incr("zlog.read")
        return result

    def fill(self, position: int) -> Generator:
        """Mark a hole as junk so readers can skip it."""
        yield from self.client.rados_exec(
            self.layout.pool, self.layout.object_of(position),
            "zlog", "fill", {"epoch": self.epoch, "pos": position})
        self.client.perf.incr("zlog.fill")

    def trim(self, position: int) -> Generator:
        yield from self.client.rados_exec(
            self.layout.pool, self.layout.object_of(position),
            "zlog", "trim", {"epoch": self.epoch, "pos": position})
        self.client.perf.incr("zlog.trim")

    def tail(self) -> Generator:
        """Current tail (next position to be issued) from the sequencer."""
        value = yield from self.client.seq_read(sequencer_path(self.name))
        return value

    # ------------------------------------------------------------------
    # Convenience iteration
    # ------------------------------------------------------------------
    def read_range(self, start: int, end: int,
                   skip_holes: bool = True) -> Generator:
        """Read [start, end); returns a list of (pos, entry-or-None)."""
        out = []
        for pos in range(start, end):
            try:
                entry = yield from self.read(pos)
            except NotFound:
                if skip_holes:
                    out.append((pos, None))
                    continue
                raise
            out.append((pos, entry))
        return out
