"""Sequencer recovery: the CORFU seal protocol (paper section 5.2.2).

When the sequencer's state is lost or suspect (MDS failover, cap-holder
death, suspected split), any client can run recovery:

1. bump the log's epoch in Service Metadata (consensus-backed, so
   concurrent recoveries serialize on the version);
2. ``seal`` every stripe object with the new epoch — from this moment
   every I/O tagged with an older epoch is rejected (``ESTALE``), which
   invalidates stale clients *without* any communication to them;
3. collect the max written position across stripe objects;
4. restart the sequencer counter just past it.

Because the sequencer does not resume until sealing completes, there is
no race with in-flight appends, and reads never block during recovery
(the log is immutable once written).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import StaleEpoch
from repro.zlog.log import ZLog, epoch_key, sequencer_path


def recover_log(log: ZLog) -> Generator:
    """Run seal-based recovery; returns the new (epoch, tail).

    Safe to run concurrently with appenders (they get fenced) and with
    other recoveries (the loser's seal is rejected as stale and it
    re-reads the winner's epoch).
    """
    c = log.client
    entry = yield from c.mon_kv_get(epoch_key(log.name))
    new_epoch = entry["value"] + 1
    yield from c.mon_kv_put(epoch_key(log.name), new_epoch)

    max_pos = -1
    for oid in log.layout.all_objects():
        try:
            result = yield from c.rados_exec(
                log.layout.pool, oid, "zlog", "seal",
                {"epoch": new_epoch})
        except StaleEpoch:
            # A concurrent recovery installed a higher epoch; defer to
            # it — our seal (and sequencer reset) must not proceed.
            c.perf.incr("zlog.seal.lost_race")
            yield from log.refresh_epoch()
            tail = yield from c.seq_read(sequencer_path(log.name))
            return log.epoch, tail
        c.perf.incr("zlog.seal")
        max_pos = max(max_pos, result["max_pos"])

    new_tail = max_pos + 1
    yield from c.fs_exec(sequencer_path(log.name), "set_min_tail",
                         {"tail": new_tail})
    log.epoch = new_epoch
    return new_epoch, new_tail
