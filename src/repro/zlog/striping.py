"""Log position -> RADOS object mapping.

CORFU stripes consecutive log positions round-robin across a set of
storage objects so appends proceed in parallel on many OSDs.  The
layout is a pure function shared by clients and recovery: position
``p`` of a log with stripe width ``w`` lives on object
``<log>.stripe.<p mod w>``.
"""

from __future__ import annotations

from typing import List

from repro.errors import InvalidArgument


class StripeLayout:
    """Deterministic position-to-object mapping for one log."""

    def __init__(self, log_name: str, width: int = 4,
                 pool: str = "data"):
        if not log_name or "/" in log_name:
            raise InvalidArgument(f"bad log name {log_name!r}")
        if width < 1:
            raise InvalidArgument(f"stripe width must be >= 1, got {width}")
        self.log_name = log_name
        self.width = width
        self.pool = pool

    def object_of(self, position: int) -> str:
        if position < 0:
            raise InvalidArgument(f"negative log position {position}")
        return f"zlog.{self.log_name}.stripe.{position % self.width}"

    def all_objects(self) -> List[str]:
        """Every stripe object — what seal/recovery must touch."""
        return [f"zlog.{self.log_name}.stripe.{i}"
                for i in range(self.width)]

    def to_dict(self) -> dict:
        return {"log_name": self.log_name, "width": self.width,
                "pool": self.pool}

    @classmethod
    def from_dict(cls, d: dict) -> "StripeLayout":
        return cls(d["log_name"], width=d["width"], pool=d["pool"])

    def __repr__(self) -> str:
        return (f"StripeLayout({self.log_name!r}, width={self.width}, "
                f"pool={self.pool!r})")
