"""Optimistic-concurrency transactions over the shared log.

Section 7's future work proposes "an elastic cloud database" built on
the Malacology interfaces; the shared-log literature the paper builds
on (Tango, Hyder — citations [7]-[10]) shows the recipe: serialize
*transaction intents* through the log and let every replica decide
commit/abort deterministically by replay.

:class:`TransactionalTable` implements that recipe on ZLog:

* a transaction record carries its read set (key -> version observed)
  and its write set (key -> new value);
* replaying replicas commit the record iff every read version still
  matches — first-committer-wins optimistic concurrency;
* because the log is totally ordered and replay is deterministic,
  every replica reaches the same commit/abort verdict with no
  coordination beyond the log itself.

``transact`` retries aborted transactions with fresh reads, giving
serializable read-modify-write without locks.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.errors import InvalidArgument, NotFound, TryAgain
from repro.zlog.log import ZLog


class TransactionalTable:
    """One replica of a log-serialized, optimistically-concurrent table."""

    MAX_TXN_RETRIES = 16

    def __init__(self, log: ZLog):
        self.log = log
        #: key -> (value, version); version = log position of the txn
        #: that last wrote the key.
        self._state: Dict[str, Tuple[Any, int]] = {}
        self._applied = 0
        #: log position -> commit verdict, so a transaction's outcome
        #: can be read even after later writers overwrite its keys.
        self._verdicts: Dict[int, bool] = {}
        self.commits = 0
        self.aborts = 0

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def sync(self) -> Generator:
        """Replay committed log entries up to the tail."""
        tail = yield from self.log.tail()
        while self._applied < tail:
            pos = self._applied
            try:
                entry = yield from self.log.read(pos)
            except NotFound:
                from repro.errors import ReadOnly

                try:
                    yield from self.log.fill(pos)
                    entry = {"state": "filled"}
                except ReadOnly:
                    entry = yield from self.log.read(pos)
            self._apply(pos, entry)
            self._applied = pos + 1

    def _apply(self, pos: int, entry: Dict[str, Any]) -> None:
        if entry.get("state") != "written":
            return
        txn = entry["data"]
        if txn.get("kind") != "txn":
            return  # foreign record on a shared log: ignore
        for key, version in txn["reads"].items():
            current = self._state.get(key, (None, -1))[1]
            if current != version:
                self.aborts += 1
                self._verdicts[pos] = False
                return  # conflict: a later writer got in first
        for key, value in txn["writes"].items():
            self._state[key] = (value, pos)
        self.commits += 1
        self._verdicts[pos] = True

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, key: str) -> Generator:
        yield from self.sync()
        if key not in self._state:
            raise NotFound(f"key {key!r} not in table")
        return self._state[key][0]

    def snapshot(self) -> Generator:
        yield from self.sync()
        return {k: v for k, (v, _) in self._state.items()}

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def transact(self, read_keys: List[str],
                 update: Callable[[Dict[str, Any]], Dict[str, Any]]
                 ) -> Generator:
        """Serializable read-modify-write.

        ``update`` receives {key: value-or-None for read_keys} and
        returns the write set.  Appends the intent, replays to the
        intent's position, and checks the verdict; aborted attempts
        retry with fresh reads (bounded).  Returns the committing log
        position.
        """
        if not callable(update):
            raise InvalidArgument("update must be callable")
        for _ in range(self.MAX_TXN_RETRIES):
            yield from self.sync()
            reads = {k: self._state.get(k, (None, -1))[1]
                     for k in read_keys}
            values = {k: self._state.get(k, (None, -1))[0]
                      for k in read_keys}
            writes = update(dict(values))
            if not isinstance(writes, dict) or not writes:
                raise InvalidArgument(
                    "update must return a non-empty write dict")
            pos = yield from self.log.append(
                {"kind": "txn", "reads": reads, "writes": writes})
            # Replay through our own record to learn the verdict.
            yield from self.sync()
            if self._verdicts.get(pos):
                return pos
        raise TryAgain("transaction kept conflicting; giving up")

    def blind_put(self, key: str, value: Any) -> Generator:
        """Unconditional write (no read set — never aborts)."""
        pos = yield from self.log.append(
            {"kind": "txn", "reads": {}, "writes": {key: value}})
        return pos
