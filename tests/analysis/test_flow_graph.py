"""Golden graph extraction on a toy two-daemon module, determinism
pins, and the architecture-drift gate over the committed artifacts.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

from repro.analysis import flow
from repro.analysis.astcache import SourceFile
from repro.analysis.flow import build, extract
from repro.analysis.flow.emit import (
    DOT_NAME,
    JSON_NAME,
    check_drift,
    graph_doc,
    render_admin_inventory,
    render_json,
)

REPO = Path(__file__).resolve().parents[2]

#: Two daemons, a mixin with a dynamic-method wrapper, a lambda
#: handler, an admin command, and a helper registration — the
#: extraction features in one toy module.
TOY = '''\
class Daemon:
    def register_handler(self, name, fn):
        pass

    def register_admin_command(self, name, fn):
        pass

    def call(self, dst, method, payload=None, timeout=None):
        pass

    def cast(self, dst, method, payload=None):
        pass


class PingClient:
    def init_ping(self):
        self.register_handler("pong_notify", self._h_pong)

    def _h_pong(self, src, payload):
        self.last = payload["n"]

    def ping_request(self, method, payload):
        mon = "mon0"
        return self.call(mon, method, payload, timeout=5)


def install_debug(daemon):
    daemon.register_admin_command("debug.dump", lambda args: {})


class Monitor(Daemon):
    def setup(self):
        rh = self.register_handler
        rh("mon_ping", self._h_ping)
        rh("mon_status", lambda src, p: "ok")
        install_debug(self)

    def _h_ping(self, src, payload):
        if payload["n"] > 0:
            return {"n": payload["n"] + 1}
        return {"n": 0}

    def poke(self, peer):
        self.cast(peer, "mon_ping", {"n": 0})


class OSDServer(Daemon, PingClient):
    def run(self):
        reply = yield self.ping_request("mon_ping", {"n": 3})
        return reply
'''


def toy_extraction():
    sf = SourceFile(path=Path("src/repro/fake/toy.py"), source=TOY,
                    lines=TOY.splitlines())
    sf.tree = ast.parse(TOY)
    return extract([sf])


# ----------------------------------------------------------------------
# Golden graph
# ----------------------------------------------------------------------
def test_toy_graph_kinds_and_handler_tables():
    g = toy_extraction().graph
    assert sorted(g.kinds) == ["mon", "osd"]
    mon = g.kinds["mon"]
    assert sorted(mon.handlers) == ["debug.dump", "mon_ping",
                                    "mon_status"]
    assert mon.admin_commands == ["debug.dump"]
    # Helper registration on a generic ``daemon`` parameter lands on
    # every kind and is marked as such.
    assert mon.handlers["debug.dump"].via == "admin+helper"
    assert "debug.dump" in g.kinds["osd"].handlers
    # The mixin handler binds only to the kind that inherits it.
    assert "pong_notify" in g.kinds["osd"].handlers
    assert "pong_notify" not in mon.handlers


def test_toy_graph_handler_analysis():
    g = toy_extraction().graph
    ping = g.kinds["mon"].handlers["mon_ping"]
    assert ping.cls == "Monitor" and ping.func == "_h_ping"
    assert ping.payload_keys == ("n",)
    assert ping.returns_value and not ping.falls_through
    status = g.kinds["mon"].handlers["mon_status"]
    assert status.func == "<lambda>" and status.returns_value


def test_toy_graph_direct_and_wrapper_edges():
    g = toy_extraction().graph
    by_via = {s.via: s for s in g.sites}
    direct = by_via["direct"]
    assert (direct.src_kinds, direct.mode) == (("mon",), "cast")
    assert direct.method == "mon_ping"
    # ``peer`` resolves to the caller's own kind.
    assert (direct.dst_kind, direct.resolution) == ("mon", "peer")
    assert direct.payload_keys == ("n",) \
        and direct.payload_exhaustive is True
    wrapped = by_via["wrapper:ping_request"]
    assert wrapped.src_kinds == ("osd",)
    assert wrapped.method == "mon_ping"
    # dst resolved inside the wrapper by local dataflow (mon = "mon0");
    # payload comes from the caller's literal.
    assert (wrapped.dst_kind, wrapped.resolution) == ("mon", "dataflow")
    assert wrapped.payload_keys == ("n",)
    assert wrapped.consumes_reply and wrapped.has_timeout
    assert wrapped.path.endswith("toy.py")


def test_toy_graph_method_registry_and_dot():
    g = toy_extraction().graph
    payload = g.to_payload()
    assert payload["methods"]["mon_ping"] == {
        "registered_by": ["mon"], "site_count": 2}
    dot = g.to_dot()
    assert '"osd" -> "mon" [label="mon_ping"]' in dot
    assert 'style=dashed' in dot          # the cast edge
    assert dot == g.to_dot()              # rendering is pure


def test_extraction_is_deterministic():
    a = json.dumps(toy_extraction().graph.to_payload(), sort_keys=True)
    b = json.dumps(toy_extraction().graph.to_payload(), sort_keys=True)
    assert a == b


def test_admin_inventory_rendering():
    ex = toy_extraction()
    table = render_admin_inventory(ex)
    assert "| mon | `debug.dump` |" in table
    assert "| osd | `debug.dump` |" in table


# ----------------------------------------------------------------------
# Acceptance + drift gate on the real tree
# ----------------------------------------------------------------------
def real_extraction():
    return build([str(REPO / "src" / "repro")])


def test_shipped_tree_flow_is_clean():
    """Acceptance: MAL010-017 produce no unwaived findings (and no
    unused flow waivers) on the shipped tree."""
    from repro.analysis.__main__ import _flow_pass

    findings = _flow_pass([str(REPO / "src" / "repro")])
    assert findings == [], [f.render() for f in findings]


def test_committed_rpc_graph_matches_tree():
    """The drift gate: committed artifacts must equal regeneration."""
    ex = real_extraction()
    errors = check_drift(ex, REPO / "docs")
    assert errors == [], "\n".join(errors)


def test_drift_gate_catches_stale_artifacts(tmp_path):
    ex = real_extraction()
    # Fresh emission passes...
    flow.emit.emit_artifacts(ex, tmp_path)
    assert check_drift(ex, tmp_path) == []
    # ...then any content change trips both comparisons.
    doc = json.loads((tmp_path / JSON_NAME).read_text())
    doc["graph"]["edges"] = []
    (tmp_path / JSON_NAME).write_text(render_json(doc))
    (tmp_path / DOT_NAME).write_text("digraph rpc {}\n")
    errors = check_drift(ex, tmp_path)
    assert len(errors) == 2 and all("stale" in e for e in errors)


def test_drift_gate_ignores_git_sha_advance(tmp_path):
    ex = real_extraction()
    flow.emit.emit_artifacts(ex, tmp_path)
    doc = json.loads((tmp_path / JSON_NAME).read_text())
    doc["git_sha"] = "0" * 40      # artifact from an older commit
    (tmp_path / JSON_NAME).write_text(render_json(doc))
    assert check_drift(ex, tmp_path) == []


def test_graph_doc_is_stamped_and_relative():
    doc = graph_doc(real_extraction())
    assert doc["schema_version"] == 1
    assert isinstance(doc["git_sha"], str)
    for edge in doc["graph"]["edges"]:
        assert not Path(edge["path"]).is_absolute()
        assert edge["path"].startswith("src/repro/")
