"""One must-flag and one must-pass case per flow rule (MAL010-017),
plus the waiver-scoping regression tests for MAL008.

Extractions are built from in-memory sources under a fake
``src/repro/...`` path so scope handling matches the real tree.
"""

from __future__ import annotations

import ast
import json
import subprocess
import sys
from pathlib import Path

from repro.analysis.astcache import SourceFile
from repro.analysis.flow import extract, flow_findings
from repro.analysis.linter import FileSuppressions, Linter
from repro.analysis.rules import default_rules

REPO = Path(__file__).resolve().parents[2]

#: Minimal messaging base so toy daemons look like the real ones.
BASE = '''\
class Daemon:
    def register_handler(self, name, fn):
        pass

    def register_admin_command(self, name, fn):
        pass

    def call(self, dst, method, payload=None, timeout=None):
        pass

    def cast(self, dst, method, payload=None):
        pass


'''


def build(source: str, path: str = "src/repro/fake/mod.py"):
    full = BASE + source
    sf = SourceFile(path=Path(path), source=full,
                    lines=full.splitlines())
    sf.tree = ast.parse(full)
    return extract([sf])


def codes(source: str, design_text=None):
    return [f.code for f in flow_findings(build(source), design_text)]


# ----------------------------------------------------------------------
# MAL010 unknown-method
# ----------------------------------------------------------------------
def test_mal010_flags_cast_to_unregistered_method():
    src = '''\
class Monitor(Daemon):
    def poke(self, peer):
        self.cast(peer, "mon_pong", {"n": 1})
'''
    assert "MAL010" in codes(src)


def test_mal010_flags_wrong_destination_kind():
    src = '''\
class Monitor(Daemon):
    def setup(self):
        self.register_handler("mon_ping", self._h_ping)

    def _h_ping(self, src, payload):
        return payload["n"]

class OSDServer(Daemon):
    def poke(self):
        osd = "osd1"
        self.cast(osd, "mon_ping", {"n": 1})
'''
    found = flow_findings(build(src))
    assert any(f.code == "MAL010" and "osd" in f.message
               for f in found)


def test_mal010_passes_when_destination_registers_method():
    src = '''\
class Monitor(Daemon):
    def setup(self):
        self.register_handler("mon_ping", self._h_ping)

    def _h_ping(self, src, payload):
        return payload["n"]

    def poke(self, peer):
        self.cast(peer, "mon_ping", {"n": 1})
'''
    assert "MAL010" not in codes(src)


# ----------------------------------------------------------------------
# MAL011 dead-handler
# ----------------------------------------------------------------------
def test_mal011_flags_handler_without_any_site():
    src = '''\
class Monitor(Daemon):
    def setup(self):
        self.register_handler("mon_orphan", self._h_orphan)

    def _h_orphan(self, src, payload):
        return 1
'''
    assert "MAL011" in codes(src)


def test_mal011_exempts_admin_commands():
    src = '''\
class Monitor(Daemon):
    def setup(self):
        self.register_admin_command("mon.dump", self._h_dump)

    def _h_dump(self, args):
        return {}
'''
    assert "MAL011" not in codes(src)


# ----------------------------------------------------------------------
# MAL012 silent-None reply
# ----------------------------------------------------------------------
def test_mal012_flags_call_handler_with_fallthrough_path():
    src = '''\
class Monitor(Daemon):
    def setup(self):
        self.register_handler("mon_get", self._h_get)

    def _h_get(self, src, payload):
        if payload["key"] in self.kv:
            return self.kv[payload["key"]]

class Client(Daemon):
    def run(self):
        v = yield self.call("mon0", "mon_get", {"key": "a"})
        return v
'''
    assert "MAL012" in codes(src)


def test_mal012_passes_when_every_path_returns_or_raises():
    src = '''\
class Monitor(Daemon):
    def setup(self):
        self.register_handler("mon_get", self._h_get)

    def _h_get(self, src, payload):
        if payload["key"] in self.kv:
            return self.kv[payload["key"]]
        raise KeyError(payload["key"])

class Client(Daemon):
    def run(self):
        v = yield self.call("mon0", "mon_get", {"key": "a"})
        return v
'''
    assert "MAL012" not in codes(src)


# ----------------------------------------------------------------------
# MAL013 dropped Future
# ----------------------------------------------------------------------
def test_mal013_flags_discarded_call_future():
    src = '''\
class Monitor(Daemon):
    def setup(self):
        self.register_handler("mon_ping", lambda src, p: p["n"])

    def poke(self):
        self.call("mon1", "mon_ping", {"n": 1})
'''
    assert "MAL013" in codes(src)


def test_mal013_flags_future_assigned_but_never_read():
    src = '''\
class Monitor(Daemon):
    def setup(self):
        self.register_handler("mon_ping", lambda src, p: p["n"])

    def poke(self):
        fut = self.call("mon1", "mon_ping", {"n": 1})
'''
    assert "MAL013" in codes(src)


def test_mal013_passes_yielded_timeout_and_callback_futures():
    src = '''\
class Monitor(Daemon):
    def setup(self):
        self.register_handler("mon_ping", lambda src, p: p["n"])

    def a(self):
        r = yield self.call("mon1", "mon_ping", {"n": 1})
        return r

    def b(self):
        self.call("mon1", "mon_ping", {"n": 1}, timeout=5)

    def c(self):
        self.call("mon1", "mon_ping", {"n": 1}).add_done_callback(print)
'''
    assert "MAL013" not in codes(src)


# ----------------------------------------------------------------------
# MAL014 payload mismatch
# ----------------------------------------------------------------------
def test_mal014_flags_handler_key_absent_from_all_sites():
    src = '''\
class Monitor(Daemon):
    def setup(self):
        self.register_handler("mon_put", self._h_put)

    def _h_put(self, src, payload):
        return payload["value"]

class Client(Daemon):
    def run(self):
        r = yield self.call("mon0", "mon_put", {"key": "a"})
        return r
'''
    found = flow_findings(build(src))
    assert any(f.code == "MAL014" and "value" in f.message
               for f in found)


def test_mal014_flags_site_key_no_handler_reads():
    src = '''\
class Monitor(Daemon):
    def setup(self):
        self.register_handler("mon_put", self._h_put)

    def _h_put(self, src, payload):
        return payload["key"]

class Client(Daemon):
    def run(self):
        r = yield self.call("mon0", "mon_put", {"key": "a", "junk": 1})
        return r
'''
    found = flow_findings(build(src))
    assert any(f.code == "MAL014" and "junk" in f.message
               for f in found)


def test_mal014_passes_matching_and_optional_keys():
    src = '''\
class Monitor(Daemon):
    def setup(self):
        self.register_handler("mon_put", self._h_put)

    def _h_put(self, src, payload):
        return (payload["key"], (payload or {}).get("hint", 0))

class Client(Daemon):
    def run(self):
        r = yield self.call("mon0", "mon_put", {"key": "a", "hint": 2})
        return r
'''
    assert "MAL014" not in codes(src)


def test_mal014_skips_wholesale_and_non_literal_payloads():
    src = '''\
class Monitor(Daemon):
    def setup(self):
        self.register_handler("mon_fwd", self._h_fwd)

    def _h_fwd(self, src, payload):
        return self.apply(payload)

class Client(Daemon):
    def run(self, blob):
        r = yield self.call("mon0", "mon_fwd", {"anything": 1})
        s = yield self.call("mon0", "mon_fwd", blob)
        return (r, s)
'''
    assert "MAL014" not in codes(src)


# ----------------------------------------------------------------------
# MAL015 cast to a consumed-reply method
# ----------------------------------------------------------------------
def test_mal015_flags_cast_where_reply_consumed_elsewhere():
    src = '''\
class OSDServer(Daemon):
    def setup(self):
        self.register_handler("osd_pull", self._h_pull)

    def _h_pull(self, src, payload):
        return self.data

    def fetch(self):
        m = yield self.call("osd1", "osd_pull", {})
        return m

    def push(self, peer):
        self.cast(peer, "osd_pull", {})
'''
    assert "MAL015" in codes(src)


def test_mal015_passes_pure_fire_and_forget_methods():
    src = '''\
class OSDServer(Daemon):
    def setup(self):
        self.register_handler("osd_note", self._h_note)

    def _h_note(self, src, payload):
        self.notes = payload

    def push(self, peer):
        self.cast(peer, "osd_note", {"x": 1})
'''
    assert "MAL015" not in codes(src)


# ----------------------------------------------------------------------
# MAL016 undocumented admin command
# ----------------------------------------------------------------------
ADMIN_SRC = '''\
class Monitor(Daemon):
    def setup(self):
        self.register_admin_command("mon.secret", lambda args: {})
'''


def test_mal016_flags_command_missing_from_design():
    assert "MAL016" in codes(ADMIN_SRC, design_text="| nothing here |")


def test_mal016_passes_documented_command_or_no_design():
    assert "MAL016" not in codes(
        ADMIN_SRC, design_text="| mon | `mon.secret` | ... |")
    assert "MAL016" not in codes(ADMIN_SRC, design_text=None)


# ----------------------------------------------------------------------
# MAL017 unsanitized protocol-state mutation
# ----------------------------------------------------------------------
def test_mal017_flags_unobserved_chosen_mutation():
    src = '''\
class Monitor(Daemon):
    def sync(self):
        self.chosen.learn(1, "v")
'''
    assert "MAL017" in codes(src)


def test_mal017_passes_with_plane_hook_in_same_function():
    src = '''\
class Monitor(Daemon):
    def sync(self):
        san = getattr(self.sim, "sanitizers", None)
        if san is not None:
            san.paxos.on_learn(self.name, 1, "v", daemon=self)
        self.chosen.learn(1, "v")
'''
    assert "MAL017" not in codes(src)


def test_mal017_ignores_init_and_unprotected_kinds():
    src = '''\
class Monitor(Daemon):
    def __init__(self):
        self.chosen.learn(0, "seed")

class OSDServer(Daemon):
    def apply(self):
        self.chosen.learn(1, "v")
'''
    assert "MAL017" not in codes(src)


# ----------------------------------------------------------------------
# Waiver scoping (MAL008 across the lint/flow split)
# ----------------------------------------------------------------------
def test_lint_pass_does_not_judge_flow_waivers():
    # MAL013 is a flow code: the lint pass must leave its waiver
    # alone even though no lint finding matches the line.
    src = ("class C:\n"
           "    def f(self):\n"
           "        self.x = 1  "
           "# mal: disable=MAL013 -- judged by the flow pass\n")
    findings = Linter(default_rules()).lint_source(
        src, path="src/repro/fake/mod.py")
    assert findings == []


def test_flow_scoped_sweep_flags_unused_flow_waiver():
    lines = ["x = 1  # mal: disable=MAL013 -- stale"]
    sups = FileSuppressions(Path("src/repro/fake/mod.py"), lines,
                            report_hygiene=False)
    kept = sups.filter(Path("src/repro/fake/mod.py"), [],
                       active_codes={"MAL013"})
    assert kept == []
    assert any(f.code == "MAL008" and "unused" in f.message
               for f in sups.hygiene)


def test_unknown_code_is_malformed_in_every_pass():
    src = "x = 1  # mal: disable=MAL999 -- no such rule\n"
    findings = Linter(default_rules()).lint_source(
        src, path="src/repro/fake/mod.py")
    assert any(f.code == "MAL008" and "unknown" in f.message
               for f in findings)


def test_unused_sweep_covers_files_with_no_findings_at_all():
    # Regression: the sweep must not depend on the file producing any
    # rule finding first.
    src = "# mal: disable=MAL006 -- nothing here uses defaults\nx = 1\n"
    findings = Linter(default_rules()).lint_source(
        src, path="src/repro/fake/mod.py")
    assert any(f.code == "MAL008" and "unused" in f.message
               for f in findings)


# ----------------------------------------------------------------------
# CLI: waivers apply to flow findings; unused flow waivers surface
# ----------------------------------------------------------------------
def _run_flow(tmp_path, source):
    mod = tmp_path / "mod.py"
    mod.write_text(BASE + source)
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", "flow",
         str(tmp_path), "--json"],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"})


def test_cli_flow_waiver_suppresses_finding(tmp_path):
    proc = _run_flow(tmp_path, '''\
class Monitor(Daemon):
    def poke(self, peer):
        self.cast(peer, "nope", {})  # mal: disable=MAL010 -- toy fixture
''')
    doc = json.loads(proc.stdout)
    assert doc["schema_version"] == 1
    assert proc.returncode == 0, proc.stdout
    assert doc["findings"] == []


def test_cli_flow_reports_unwaived_finding_and_unused_waiver(tmp_path):
    proc = _run_flow(tmp_path, '''\
class Monitor(Daemon):
    def poke(self, peer):
        self.cast(peer, "nope", {})

    def quiet(self):
        return 1  # mal: disable=MAL013 -- stale waiver
''')
    assert proc.returncode == 1
    found = {f["code"] for f in json.loads(proc.stdout)["findings"]}
    assert "MAL010" in found
    assert "MAL008" in found
