"""Negative-test suite for the MAL lint rules.

One must-flag and one must-pass fixture per rule, plus suppression
semantics, the CLI surface, and — the acceptance criterion — a proof
that the shipped tree is clean.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.linter import Linter, render_json
from repro.analysis.rules import default_rules

REPO = Path(__file__).resolve().parents[2]


def lint(source: str, path: str = "src/repro/fake/mod.py"):
    findings = Linter(default_rules()).lint_source(source, path=path)
    return [f.code for f in findings], findings


# ----------------------------------------------------------------------
# MAL001 wall-clock
# ----------------------------------------------------------------------
def test_mal001_flags_wall_clock():
    codes, _ = lint("import time\n"
                    "def handler(self):\n"
                    "    started = time.time()\n")
    assert codes == ["MAL001"]


def test_mal001_flags_datetime_now():
    codes, _ = lint("from datetime import datetime\n"
                    "stamp = datetime.now()\n")
    assert codes == ["MAL001"]


def test_mal001_passes_sim_clock_and_kernel():
    codes, _ = lint("def handler(self):\n"
                    "    started = self.sim.now\n")
    assert codes == []
    # The kernel itself is the one sanctioned wall-clock-free zone
    # where the rule stands down entirely.
    codes, _ = lint("import time\nt = time.time()\n",
                    path="src/repro/sim/kernel.py")
    assert codes == []


# ----------------------------------------------------------------------
# MAL002 host RNG
# ----------------------------------------------------------------------
def test_mal002_flags_host_random():
    codes, _ = lint("import random\n"
                    "def jitter(self):\n"
                    "    return random.random()\n")
    assert codes == ["MAL002"]


def test_mal002_flags_numpy_random():
    codes, _ = lint("import numpy as np\n"
                    "x = np.random.rand(4)\n")
    assert codes == ["MAL002"]


def test_mal002_passes_seeded_streams():
    codes, _ = lint("def jitter(self):\n"
                    "    return self.sim.rng('ticker').random()\n")
    assert codes == []


# ----------------------------------------------------------------------
# MAL003 message-layer bypass
# ----------------------------------------------------------------------
def test_mal003_flags_direct_deliver():
    codes, _ = lint("def push(self, peer, env):\n"
                    "    peer.deliver(env)\n")
    assert codes == ["MAL003"]


def test_mal003_flags_foreign_private_access():
    codes, _ = lint("def poke(self, other):\n"
                    "    other._handlers['x'] = None\n")
    assert codes == ["MAL003"]


def test_mal003_passes_own_internals_and_tests():
    codes, _ = lint("def setup(self):\n"
                    "    self._handlers = {}\n")
    assert codes == []
    # Tests reach into daemons deliberately; the rule is src-scoped.
    codes, _ = lint("def test_x(daemon, env):\n"
                    "    daemon.deliver(env)\n",
                    path="tests/unit/test_fake.py")
    assert codes == []


# ----------------------------------------------------------------------
# MAL004 broad except
# ----------------------------------------------------------------------
def test_mal004_flags_broad_and_bare_except():
    codes, _ = lint("try:\n    x()\nexcept Exception:\n    pass\n")
    assert codes == ["MAL004"]
    codes, _ = lint("try:\n    x()\nexcept:\n    pass\n")
    assert codes == ["MAL004"]
    codes, _ = lint("try:\n    x()\n"
                    "except (ValueError, Exception):\n    pass\n")
    assert codes == ["MAL004"]


def test_mal004_passes_typed_handlers():
    codes, _ = lint("from repro.errors import NotFound\n"
                    "try:\n    x()\nexcept NotFound:\n    pass\n")
    assert codes == []


# ----------------------------------------------------------------------
# MAL005 unordered iteration
# ----------------------------------------------------------------------
def test_mal005_flags_set_iteration_that_casts():
    src = ("def notify(self, kinds, wanted):\n"
           "    kinds = set(kinds)\n"
           "    for k in kinds & wanted:\n"
           "        self.cast(k, 'map_notify', {})\n")
    codes, _ = lint(src)
    assert codes == ["MAL005"]


def test_mal005_flags_annotated_set_param():
    src = ("from typing import Set\n"
           "def notify(self, kinds: Set[str]):\n"
           "    for k in kinds:\n"
           "        self.cast(k, 'ping', {})\n")
    codes, _ = lint(src)
    assert codes == ["MAL005"]


def test_mal005_passes_sorted_and_pure_iteration():
    src = ("def notify(self, kinds: set):\n"
           "    for k in sorted(kinds):\n"
           "        self.cast(k, 'ping', {})\n")
    codes, _ = lint(src)
    assert codes == []
    # Iterating a set without scheduling effects is harmless.
    src = ("def total(self, nums: set):\n"
           "    acc = 0\n"
           "    for n in nums:\n"
           "        acc += n\n"
           "    return acc\n")
    codes, _ = lint(src)
    assert codes == []


# ----------------------------------------------------------------------
# MAL006 mutable defaults
# ----------------------------------------------------------------------
def test_mal006_flags_mutable_defaults():
    codes, _ = lint("def boot(self, peers=[]):\n    pass\n")
    assert codes == ["MAL006"]
    codes, _ = lint("def boot(self, opts=dict()):\n    pass\n")
    assert codes == ["MAL006"]


def test_mal006_passes_none_default():
    codes, _ = lint("def boot(self, peers=None):\n"
                    "    peers = peers or []\n")
    assert codes == []


# ----------------------------------------------------------------------
# MAL007 Envelope trace propagation
# ----------------------------------------------------------------------
def test_mal007_flags_untraced_envelope():
    src = ("from repro.msg.message import Envelope\n"
           "def forge(self):\n"
           "    return Envelope(kind='request', src='a', dst='b',\n"
           "                    method='m', msg_id=1, payload=None)\n")
    codes, _ = lint(src)
    assert codes == ["MAL007"]


def test_mal007_passes_traced_envelope_and_msg_layer():
    src = ("from repro.msg.message import Envelope\n"
           "def forge(self):\n"
           "    return Envelope(kind='request', src='a', dst='b',\n"
           "                    method='m', msg_id=1, payload=None,\n"
           "                    trace=self._trace_wire())\n")
    codes, _ = lint(src)
    assert codes == []
    untraced = ("def forge():\n"
                "    return Envelope(kind='cast', src='a', dst='b',\n"
                "                    method='m', msg_id=1, payload=None)\n")
    codes, _ = lint(untraced, path="src/repro/msg/daemon.py")
    assert codes == []


# ----------------------------------------------------------------------
# MAL008 suppression hygiene
# ----------------------------------------------------------------------
def test_suppression_waives_trailing_and_standalone():
    src = ("import time\n"
           "t = time.time()  # mal: disable=MAL001 -- fixture clock\n")
    codes, _ = lint(src)
    assert codes == []
    src = ("import time\n"
           "# mal: disable=MAL001 -- fixture clock\n"
           "t = time.time()\n")
    codes, _ = lint(src)
    assert codes == []


def test_unused_suppression_is_flagged():
    src = "x = 1  # mal: disable=MAL001 -- nothing here\n"
    codes, findings = lint(src)
    assert codes == ["MAL008"]
    assert "unused suppression" in findings[0].message


def test_unknown_code_and_malformed_comment_are_flagged():
    codes, _ = lint("x = 1  # mal: disable=MAL999,BOGUS -- eh\n")
    assert codes == ["MAL008"]
    codes, _ = lint("x = 1  # mal: disable\n")
    assert codes == ["MAL008"]


def test_mal008_itself_cannot_be_suppressed():
    src = "x = 1  # mal: disable=MAL008 -- meta\n"
    codes, _ = lint(src)
    assert "MAL008" in codes


def test_directive_examples_in_strings_are_ignored():
    src = 'DOC = "# mal: disable=MAL001 -- just an example"\n'
    codes, _ = lint(src)
    assert codes == []


# ----------------------------------------------------------------------
# CLI and acceptance
# ----------------------------------------------------------------------
def test_cli_json_output_and_exit_codes(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "lint",
         str(bad), "--json"],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"})
    assert proc.returncode == 1
    doc = json.loads(proc.stdout)
    # Stamped envelope per the bench_util conventions (PR 6).
    assert doc["schema_version"] == 1
    assert isinstance(doc["git_sha"], str) and doc["git_sha"]
    assert doc["findings"][0]["code"] == "MAL001"
    good = tmp_path / "good.py"
    good.write_text("x = 1\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "lint", str(good)],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"})
    assert proc.returncode == 0
    assert "clean" in proc.stdout


def test_shipped_tree_is_clean():
    """Acceptance: the linter exits 0 on the real src/tests/benchmarks."""
    findings = Linter(default_rules()).lint_paths(
        [str(REPO / "src"), str(REPO / "tests"), str(REPO / "benchmarks")])
    assert findings == [], render_json(findings)
