"""Seeded-fault tests: each sanitizer must catch its protocol break.

Every test injects a fault underneath the protocol layer (forged
message, corrupted bookkeeping, sabotaged epoch guard) and asserts the
named sanitizer fires with the causal RPC trace attached.  A final
pair of tests pins the TSan-style contract: observation never changes
the schedule, and clean runs report nothing.
"""

from types import SimpleNamespace

import pytest

from repro.analysis.sanitizers import ProtocolViolation, SanitizerRegistry
from repro.core import MalacologyCluster
from repro.zlog import StripeLayout, ZLog


def build(seed, **kw):
    return MalacologyCluster.build(osds=2, mdss=1, mons=3, seed=seed,
                                   sanitize=True, **kw)


# ----------------------------------------------------------------------
# PaxosSanitizer
# ----------------------------------------------------------------------
def test_paxos_sanitizer_catches_divergent_commit():
    """A forged commit that disagrees with the chosen value must trip
    the one-value-per-instance invariant, naming both values."""
    c = build(101)
    san = c.sim.sanitizers
    assert san is not None and san.paxos._chosen, "nothing was chosen?"
    instance, (value, first_mon) = sorted(san.paxos._chosen.items())[0]
    victim = next(m.name for m in c.mons if m.name != first_mon)
    forged = {"id": "evil", "txns": [{"op": "kv_put", "key": "boom",
                                      "value": 666}]}

    def attack():
        yield c.admin.call(victim, "paxos_commit",
                           {"instance": instance, "value": forged})

    with pytest.raises(ProtocolViolation) as ei:
        c.do(c.admin.traced(attack(), "paxos-attack"))
    v = ei.value
    assert v.sanitizer == "paxos"
    assert v.invariant == "one-value-per-instance"
    assert f"instance {instance}" in v.message
    # The causal trace pins the offending RPC hop.
    assert v.trace is not None and "paxos_commit" in v.trace
    assert san.violations and san.violations[0] is v


def test_paxos_sanitizer_catches_epoch_regression():
    """Map epochs must be monotone per monitor (unit-level check)."""
    sim = SimpleNamespace(now=1.5, trace_collector=None)
    san = SanitizerRegistry(sim)
    san.paxos.on_epoch("mon0", "osd", 5)
    san.paxos.on_epoch("mon0", "osd", 6)
    with pytest.raises(ProtocolViolation) as ei:
        san.paxos.on_epoch("mon0", "osd", 4)
    assert ei.value.invariant == "monotone-epochs"
    # A different monitor has its own watermark.
    san2 = SanitizerRegistry(SimpleNamespace(now=0.0,
                                             trace_collector=None))
    san2.paxos.on_epoch("mon0", "osd", 5)
    san2.paxos.on_epoch("mon1", "osd", 1)  # fine: separate daemon
    assert san2.violations == []


# ----------------------------------------------------------------------
# CapabilitySanitizer
# ----------------------------------------------------------------------
def test_cap_sanitizer_catches_conflicting_grant():
    """Corrupt the MDS's cap table so it forgets the holder; the next
    grant hands the same inode to a second client — exactly the bug
    class the sanitizer exists for."""
    c = build(102)
    san = c.sim.sanitizers
    c.do(c.admin.fs_mkdir("/seq"))
    c.do(c.admin.fs_create("/seq/ctr", file_type="sequencer"))
    a, b = c.new_client("holder"), c.new_client("thief")
    assert c.sim.run_until_complete(a.do(a.seq_next("/seq/ctr"))) == 0

    # Fault injection: the MDS loses its bookkeeping of the grant
    # (as a lost-release bug would); the sanitizer still remembers.
    mds = c.mdss[0]
    assert mds.locker.held_inos(), "client A should hold the cap"
    mds.locker._caps.clear()

    with pytest.raises(ProtocolViolation) as ei:
        c.sim.run_until_complete(
            b.do(b.traced(b.seq_next("/seq/ctr"), "seq.acquire")))
    v = ei.value
    assert v.sanitizer == "caps"
    assert v.invariant == "exclusive-holder"
    assert "holder" in v.message and "thief" in v.message
    assert v.trace is not None and "open" in v.trace
    assert san.violations


def test_cap_sanitizer_catches_stuck_revoke():
    """A revoke that never completes must trip the liveness deadline."""
    sim = SimpleNamespace(now=0.0, trace_collector=None)
    san = SanitizerRegistry(sim)
    san.caps.on_grant("mds0", 7, "clientA", 1)
    san.caps.on_revoke_start("mds0", 7)
    sim.now = san.caps.REVOKE_DEADLINE + 1.0
    with pytest.raises(ProtocolViolation) as ei:
        san.finish()
    assert ei.value.invariant == "revoke-completes"
    assert "ino 7" in ei.value.message


# ----------------------------------------------------------------------
# ZLogEpochSanitizer
# ----------------------------------------------------------------------
def test_zlog_sanitizer_catches_stale_epoch_acceptance():
    """Sabotage the epoch guard in cls_zlog (a buggy interface
    upgrade): the OSD then accepts a write below the sealed epoch and
    the sanitizer must catch what the class no longer does."""
    c = build(103)
    san = c.sim.sanitizers
    log = ZLog(c.admin, "fenced", layout=StripeLayout("fenced", width=1))
    c.do(log.create())
    c.do(log.append("pre-seal"))
    oid = log.layout.object_of(0)

    # Seal every replica's object at a newer epoch, out of band of the
    # client (its cached epoch is now stale).
    c.do(c.admin.rados_exec(log.layout.pool, oid, "zlog", "seal",
                            {"epoch": 5}))

    # The sabotage: "upgrade" the zlog class on every OSD to a write
    # that forges a fresh epoch tag, skipping the fence check.
    for osd in c.osds:
        methods = osd.registry._classes["zlog"]["methods"]
        orig_write = methods["write"]
        methods["write"] = (
            lambda ctx, args, _orig=orig_write:
            _orig(ctx, {**args, "epoch": 10 ** 6}))

    assert log.epoch < 5  # the client will send a genuinely stale tag
    with pytest.raises(ProtocolViolation) as ei:
        c.do(c.admin.traced(log.append("stale-write"), "zlog.append"))
    v = ei.value
    assert v.sanitizer == "zlog"
    assert v.invariant == "epoch-fencing"
    assert oid in v.message and "epoch 1" in v.message
    assert v.trace is not None and "osd_op" in v.trace
    assert san.violations


# ----------------------------------------------------------------------
# MigrationSanitizer
# ----------------------------------------------------------------------
def test_migration_sanitizer_catches_unsolicited_import():
    """An mds_import with no matching export means two MDSs would both
    claim the subtree; the sanitizer fires on the import hop."""
    c = MalacologyCluster.build(osds=2, mdss=2, mons=3, seed=104,
                                sanitize=True)
    san = c.sim.sanitizers
    c.do(c.admin.fs_mkdir("/stolen"))

    def attack():
        yield c.admin.call("mds1", "mds_import",
                           {"path": "/stolen", "entries": {},
                            "popularity": {}})

    with pytest.raises(ProtocolViolation) as ei:
        c.do(c.admin.traced(attack(), "migration-attack"))
    v = ei.value
    assert v.sanitizer == "migration"
    assert v.invariant == "single-owner"
    assert "/stolen" in v.message
    assert v.trace is not None and "mds_import" in v.trace
    assert san.violations


def test_migration_sanitizer_catches_overlapping_exports():
    """Unit-level: freezing a subtree while an ancestor migrates."""
    san = SanitizerRegistry(SimpleNamespace(now=0.0,
                                            trace_collector=None))
    san.migration.on_export_begin("/a", 0, 1)
    with pytest.raises(ProtocolViolation):
        san.migration.on_export_begin("/a/b", 0, 2)
    # Disjoint subtrees may migrate concurrently.
    san2 = SanitizerRegistry(SimpleNamespace(now=0.0,
                                             trace_collector=None))
    san2.migration.on_export_begin("/a", 0, 1)
    san2.migration.on_export_begin("/b", 0, 2)
    san2.migration.on_import("/a", 1)
    san2.migration.on_export_end("/a")
    assert san2.violations == []


# ----------------------------------------------------------------------
# The TSan contract: observation changes nothing, clean runs are clean
# ----------------------------------------------------------------------
def _schedule_tape(sanitize):
    c = MalacologyCluster.build(osds=2, mdss=1, mons=3, seed=46,
                                sanitize=sanitize)
    tape = []
    orig = c.net.send

    def spy(src, dst, msg):
        tape.append((c.sim.now, src, dst,
                     getattr(msg, "method", None)
                     or getattr(msg, "kind", None)))
        return orig(src, dst, msg)

    c.net.send = spy
    client = c.new_client("load")

    def work():
        yield from client.fs_mkdir("/d")
        for i in range(20):
            yield from client.fs_create(f"/d/f{i}")
        yield from client.fs_create("/d/seq", file_type="sequencer")
        for _ in range(5):
            yield from client.seq_next("/d/seq")

    c.sim.run_until_complete(client.do(work()))
    c.run(10.0)
    return c, tape


def test_sanitizers_do_not_perturb_schedules():
    c_off, tape_off = _schedule_tape(sanitize=False)
    c_on, tape_on = _schedule_tape(sanitize=True)
    assert len(tape_off) > 100  # the workload exercised the network
    assert tape_on == tape_off  # byte-identical schedules
    assert c_off.sim.sanitizers is None
    assert c_on.sim.sanitizers is not None


def test_clean_run_reports_zero_violations():
    c, _ = _schedule_tape(sanitize=True)
    assert c.sanitizer_report() == []
    # The clean run still *observed* the protocols.
    assert c.sim.sanitizers.paxos._chosen
