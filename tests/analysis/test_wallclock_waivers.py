"""Negative test: wall-clock discipline across the shipped tree.

``repro.profiling`` is the one sanctioned wall-clock consumer outside
the simulation kernel — its reads are deliberate, waived with MAL001
suppressions, and never feed back into the schedule.  These tests pin
both directions of that claim:

* running the MAL001 rule *raw* (ignoring suppressions) over ``src/``
  finds wall-clock calls **only** inside ``repro.profiling`` — nobody
  else snuck a host clock in behind a waiver or otherwise;
* the full linter (suppressions honored) over ``src/`` reports zero
  findings — every profiling waiver is declared, used, and hygienic.
"""

import ast
from pathlib import Path

from repro.analysis.linter import FileContext, Linter
from repro.analysis.rules import WallClockRule, default_rules

SRC = Path(__file__).resolve().parents[2] / "src"


def _contexts():
    for path in sorted(SRC.rglob("*.py")):
        source = path.read_text()
        yield FileContext(path, source, ast.parse(source))


def test_raw_wallclock_findings_only_in_profiling():
    rule = WallClockRule()
    findings = []
    for ctx in _contexts():
        if rule.applies(ctx):
            findings.extend(rule.check(ctx))
    # The sanctioned boundary must actually exist (otherwise the
    # waivers rotted away and this test is vacuous)...
    assert findings, "expected MAL001 hits inside repro.profiling"
    # ...and nothing outside repro/profiling reads a host clock.
    # (sim/kernel.py is exempt by the rule itself: in_kernel.)
    for f in findings:
        parts = Path(f.path).parts
        assert "profiling" in parts, (
            f"undeclared wall-clock use outside repro.profiling: "
            f"{f.render()}")


def test_profiling_waivers_are_declared_and_lint_passes():
    findings = Linter(default_rules()).lint_paths([str(SRC)])
    assert findings == [], "\n".join(f.render() for f in findings)
