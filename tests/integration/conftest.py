"""Run the protocol sanitizers underneath selected integration suites.

The failure-injection suites exercise exactly the protocol edges the
sanitizers watch (epoch fencing under crashes, cap recovery across MDS
failover, Paxos re-election), so they run with ``MALACOLOGY_SANITIZE=1``
and every cluster they build is pinned to zero violations.  The
sanitizers are passive observers, so the sanitized schedules stay
byte-identical to the plain runs (asserted directly in
``tests/analysis/test_sanitizers.py``).
"""

import pytest

from repro.analysis import sanitizers

#: Modules whose clusters run sanitized and must finish violation-free.
SANITIZED_MODULES = {
    "test_zlog_failures",
    "test_multi_mds",
    "test_rados_failures",
}


def _assert_clean(registries, where):
    for registry in registries:
        violations = registry.finish()
        assert violations == [], (
            f"protocol violations in {where}:\n"
            + "\n\n".join(str(v) for v in violations))


@pytest.fixture(scope="module", autouse=True)
def _sanitized_module(request):
    """Turn sanitizers on for the whole module (clusters may be built
    in module-scoped fixtures) and drop its registries at teardown."""
    module = request.node.name.rpartition("/")[2].removesuffix(".py")
    if module not in SANITIZED_MODULES:
        yield None
        return
    mp = pytest.MonkeyPatch()
    mp.setenv("MALACOLOGY_SANITIZE", "1")
    before = len(sanitizers.ACTIVE)
    try:
        yield before
        new = sanitizers.ACTIVE[before:]
        assert new, f"sanitized module {module} built no cluster?"
        _assert_clean(new, module)
    finally:
        del sanitizers.ACTIVE[before:]
        mp.undo()


@pytest.fixture(autouse=True)
def _sanitized_test(request, _sanitized_module):
    """Pin zero violations after each test, for precise attribution."""
    yield
    if _sanitized_module is None:
        return
    _assert_clean(sanitizers.ACTIVE[_sanitized_module:],
                  request.node.nodeid)
