"""Integration tests: the distributed changelog & audit subsystem.

Covers the acceptance criteria end to end: records flow from MDS/OSD
producers through the writer into epoch-fenced shard objects and out
to watch/notify-woken consumers; OSD crash/recovery leaves no gaps or
duplicates; a second writer fences the first; a crashed consumer
resumes from its durable cursor; a lagging consumer trips
``CHANGELOG_CONSUMER_LAG`` in mgr health and Prometheus; and — the
determinism contract — a changelog-enabled run leaves the
non-changelog daemons' schedule byte-identical.
"""

import pytest

from repro.core import MalacologyCluster
from repro.changelog import CHANGELOG_POOL, ChangelogWriter
from repro.mgr.health import (
    HEALTH_WARN,
    ChangelogTrimStalledCheck,
    ClusterSample,
)
from repro.mgr.prometheus import parse_prometheus_text
from repro.rados.placement import locate


def mkdir_and_create(client, dirname, n):
    def work():
        yield from client.fs_mkdir(dirname)
        for i in range(n):
            yield from client.fs_create(f"{dirname}/f{i}")
    return work()


def read_shard(cluster, writer, shard):
    """Drain one shard object through the paginated list method."""
    entries, from_seq = [], -1
    while True:
        out = cluster.do(cluster.admin.rados_exec(
            CHANGELOG_POOL, writer.layout.object_of(shard),
            "changelog", "list", {"from_seq": from_seq, "max": 256}))
        entries.extend(out["entries"])
        if not out["truncated"]:
            return entries
        from_seq = out["cursor"]


def all_records(cluster, writer):
    return {shard: read_shard(cluster, writer, shard)
            for shard in range(writer.layout.width)}


# ----------------------------------------------------------------------
# End-to-end stream -> audit -> mgr
# ----------------------------------------------------------------------
def test_stream_end_to_end_with_audit_and_mgr():
    c = MalacologyCluster.build(osds=3, mdss=1, mons=3, seed=80,
                                changelog=True, mgr=True)
    c.run(3.0)
    assert c.changelog_writer.booted
    aud = c.audit_pipeline
    assert aud is not None and aud.booted

    client = c.new_client("alice-app")
    def work():
        yield from client.fs_mkdir("/alice")
        for i in range(8):
            yield from client.fs_create(f"/alice/f{i}")
        yield from client.fs_rename("/alice/f0", "/alice/g0")
        yield from client.fs_unlink("/alice/f1")
        yield from client.fs_write("/alice/f2", 0, b"payload")
    c.sim.run_until_complete(client.do(work()))
    c.run(8.0)  # flush, notify, consume, trim, scrape

    # Every mutation became a typed record and reached the consumer.
    kinds = {}
    for rec in aud.received:
        kinds[rec["kind"]] = kinds.get(rec["kind"], 0) + 1
    assert kinds["mkdir"] == 1 and kinds["create"] == 8
    assert kinds["rename"] == 1 and kinds["unlink"] == 1
    assert kinds["setattr"] == 1  # fs_write updates the size
    assert kinds["object_write"] == 1  # the data-pool write

    # The audit pipeline materialized per-tenant / per-actor views.
    summary = c.daemon_command(aud.name, "audit.summary")
    assert summary["by_tenant"]["alice"]["create"] == 8
    assert summary["by_actor"]["alice-app"]["rename"] == 1

    # Acked ranges were reclaimed: nothing retained, zero lag.
    status = c.daemon_command("mgr0", "changelog.status")
    assert status["appended"] == len(aud.received) > 0
    assert status["consumed"] == status["appended"]
    assert status["retained"] == 0 and status["buffered"] == 0
    assert status["lag"] == {"audit": 0.0}
    assert c.health()["status"] == "HEALTH_OK"

    # The rename really happened in the namespace.
    assert c.sim.run_until_complete(
        client.do(client.fs_stat("/alice/g0")))["kind"] == "file"


# ----------------------------------------------------------------------
# OSD crash/recovery: no gaps, no duplicates (epoch fencing + dedup)
# ----------------------------------------------------------------------
def test_records_survive_osd_crash_without_gaps_or_dups():
    c = MalacologyCluster.build(osds=3, mdss=1, mons=3, seed=81)
    w = c.enable_changelog(audit=False)  # no cursors -> nothing trims
    c.run(3.0)
    assert w.booted

    client = c.new_client("load")
    c.sim.run_until_complete(client.do(mkdir_and_create(client, "/d", 20)))
    c.run(2.0)

    # Kill the OSD holding shard 0 (size-1 pool: appends to it must
    # stall and replay, not vanish).
    osdmap = c.mons[0].store.osdmap
    _, acting = locate(osdmap, CHANGELOG_POOL, w.layout.object_of(0))
    victim = next(o for o in c.osds if o.name == acting[0])
    victim.crash()

    def more():
        for i in range(20, 40):
            yield from client.fs_create(f"/d/f{i}")
    proc = client.do(more())
    c.run(5.0)
    victim.restart()
    c.sim.run_until_complete(proc)
    c.run(25.0)  # writer retries drain the buffered batches

    status = w.status()
    assert status["buffered"] == 0, status
    shards = all_records(c, w)
    # Per-shard: the class-assigned seqs are contiguous from 0.
    total = 0
    for shard, entries in sorted(shards.items()):
        seqs = [e["seq"] for e in entries]
        assert seqs == list(range(len(seqs))), f"shard {shard} gap"
        total += len(entries)
    # Per-producer: exactly pseq 1..N once each — no loss on the crash,
    # no duplicates from the writer's replays.
    by_producer = {}
    for entries in shards.values():
        for e in entries:
            by_producer.setdefault(e["producer"], []).append(e["pseq"])
    assert set(by_producer) == {"mds0#1"}
    pseqs = sorted(by_producer["mds0#1"])
    assert pseqs == list(range(1, 42))  # mkdir + 40 creates, each once
    assert total == 41


def test_second_writer_fences_the_first():
    c = MalacologyCluster.build(osds=3, mdss=1, mons=3, seed=82,
                                changelog=True)
    c.run(3.0)
    w1 = c.changelog_writer
    assert w1.booted and w1.epoch == 1

    client = c.new_client("load")
    c.sim.run_until_complete(client.do(mkdir_and_create(client, "/a", 5)))
    c.run(2.0)

    # A successor writer seals every shard at a higher epoch.
    w2 = ChangelogWriter(c.sim, c.net, "chlog1", c.mon_names,
                         layout=w1.layout)
    c.run(2.0)
    assert w2.booted and w2.epoch == 2

    # The fenced writer's next flush is rejected and it stops cleanly.
    c.sim.run_until_complete(client.do(mkdir_and_create(client, "/b", 5)))
    c.run(3.0)
    assert w1.fenced
    assert w1.perf.get("changelog.fenced") > 0
    # Events arriving at a fenced writer are dropped and counted, never
    # half-appended under a stale epoch.
    c.sim.run_until_complete(client.do(mkdir_and_create(client, "/c", 3)))
    c.run(2.0)
    assert w1.perf.get("changelog.dropped.fenced") > 0
    for shard in range(w1.layout.width):
        state = c.do(c.admin.rados_exec(
            CHANGELOG_POOL, w1.layout.object_of(shard),
            "changelog", "get_state", {}))
        assert state["epoch"] == 2


# ----------------------------------------------------------------------
# Consumer crash mid-tail: durable cursor resume (at-least-once)
# ----------------------------------------------------------------------
def test_consumer_crash_resumes_from_durable_cursor():
    c = MalacologyCluster.build(osds=3, mdss=1, mons=3, seed=83,
                                changelog=True)
    c.run(3.0)
    aud = c.audit_pipeline
    client = c.new_client("load")

    c.sim.run_until_complete(client.do(mkdir_and_create(client, "/d", 15)))
    c.run(3.0)
    acked_before = {(r["producer"], r["pseq"]) for r in aud.received}
    assert len(acked_before) == 16  # mkdir + 15 creates, all consumed

    aud.crash()
    def more():
        for i in range(15, 30):
            yield from client.fs_create(f"/d/f{i}")
    c.sim.run_until_complete(client.do(more()))
    c.run(2.0)
    aud.restart()
    c.run(8.0)

    after = {(r["producer"], r["pseq"]) for r in aud.received}
    expected = {("mds0#1", i) for i in range(1, 32)}
    # At-least-once: everything not acked before the crash is
    # redelivered from the durable cursor; nothing is lost.
    assert acked_before | after == expected
    assert len(after) >= len(expected) - len(acked_before)
    # And the stream drains again: lag returns to zero after trim.
    c.run(6.0)
    assert c.changelog_writer._cursor_lag.get("audit", 0) == 0


# ----------------------------------------------------------------------
# Lag health: paused consumer -> CHANGELOG_CONSUMER_LAG -> recovery
# ----------------------------------------------------------------------
def test_lagging_consumer_trips_health_and_prometheus():
    c = MalacologyCluster.build(osds=3, mdss=1, mons=3, seed=84,
                                changelog=True, mgr=True)
    c.run(3.0)
    aud = c.audit_pipeline
    aud.pause()  # stops tailing and acking; lag accumulates

    client = c.new_client("load")
    c.sim.run_until_complete(client.do(
        mkdir_and_create(client, "/storm", 260)))
    c.run(12.0)  # trim ticks compute lag; mgr scrapes it

    report = c.health()
    assert report["status"] == "HEALTH_WARN"
    check = report["checks"].get("CHANGELOG_CONSUMER_LAG")
    assert check is not None, report
    assert check["detail"]["cursors"]["audit"] > 200
    assert "audit" in check["summary"]

    # The per-cursor lag gauge is in the Prometheus export.
    text = c.daemon_command("mgr0", "metrics.export")
    samples = parse_prometheus_text(text)
    lag = [s for s in samples
           if s.metric == "repro_gauge"
           and s.labels["name"] == "changelog.lag.audit"]
    assert lag and lag[0].value > 200
    assert lag[0].labels["daemon"] == "chlog0"
    status = c.daemon_command("mgr0", "changelog.status")
    assert status["lag"]["audit"] > 200
    assert "CHANGELOG_CONSUMER_LAG" in status["health"]

    # Resume: the consumer catches up, trim reclaims, health clears.
    aud.resume()
    c.run(15.0)
    report = c.health()
    assert "CHANGELOG_CONSUMER_LAG" not in report["checks"], report
    assert report["status"] == "HEALTH_OK"
    assert c.daemon_command("mgr0", "changelog.status")["retained"] == 0


def test_trim_stalled_check_fires_on_synthetic_sample():
    """Unit-style: retained backlog + appends but no trims -> WARN."""
    check = ChangelogTrimStalledCheck(min_retained=500.0, window=10.0,
                                      min_scrapes=3)
    sample = ClusterSample(time=30.0, roles={"chlog0": "changelog"})
    series = sample.series_of("chlog0")
    for t, appended in ((10.0, 100.0), (15.0, 400.0), (20.0, 700.0),
                        (25.0, 900.0), (30.0, 1000.0)):
        series.observe_dump(t, {
            "counters": {"changelog.appended": appended,
                         "changelog.trimmed": 120.0},
            "gauges": {"changelog.retained": appended - 120.0},
        })
    result = check.evaluate(sample)
    assert result is not None and result.status == HEALTH_WARN
    assert result.detail["writers"] == {"chlog0": pytest.approx(580.0)}
    # A healthy stream (trim advancing) stays silent.
    healthy = ClusterSample(time=30.0, roles={"chlog0": "changelog"})
    hs = healthy.series_of("chlog0")
    for t, (appended, trimmed) in ((10.0, (100.0, 0.0)),
                                   (20.0, (700.0, 600.0)),
                                   (30.0, (1000.0, 950.0))):
        hs.observe_dump(t, {
            "counters": {"changelog.appended": appended,
                         "changelog.trimmed": trimmed},
            "gauges": {"changelog.retained": 600.0},
        })
    assert check.evaluate(healthy) is None


# ----------------------------------------------------------------------
# Determinism: the changelog must not perturb the experiment
# ----------------------------------------------------------------------
def _non_changelog_tape(changelog):
    c = MalacologyCluster.build(osds=2, mdss=1, mons=3, seed=46,
                                changelog=changelog)
    tape = []
    orig = c.net.send
    def spy(src, dst, msg):
        if not (src.startswith("chlog") or dst.startswith("chlog")):
            tape.append((c.sim.now, src, dst,
                         getattr(msg, "method", None)
                         or getattr(msg, "kind", None)))
        return orig(src, dst, msg)
    c.net.send = spy
    client = c.new_client("load")

    def work():
        yield from client.fs_mkdir("/d")
        for i in range(25):
            yield from client.fs_create(f"/d/f{i}")
    c.sim.run_until_complete(client.do(work()))
    c.run(10.0)
    return tape


def test_changelog_does_not_change_daemon_schedules():
    without = _non_changelog_tape(changelog=False)
    with_chlog = _non_changelog_tape(changelog=True)
    assert len(without) > 100  # the workload actually exercised the net
    assert with_chlog == without
