"""Integration tests: the chaos engine end to end.

Three guarantees pin the whole subsystem:

1. **Schedule transparency** — arming the engine with an empty
   schedule (store fault plane installed, injector attached, nothing
   firing) leaves the cluster's network tape byte-identical to a run
   that never saw the engine.  Chaos must be pay-for-what-you-inject.
2. **Clean sweeps** — the shipped scenarios pass their oracles on
   representative seeds: faults are injected and fully healed.
3. **Oracle sensitivity** — sabotaging a real guard (the changelog
   object class's ``(producer, pseq)`` dedup) is *caught* by the
   oracles, delta-debugged to a minimal schedule, and emitted as a
   stamped replayable repro artifact.  A chaos rig that cannot detect
   a planted bug proves nothing about the bugs it fails to find.
"""

import hashlib
import json

import pytest

from repro.chaos import (
    NemesisEngine,
    NemesisSchedule,
    minimize_case,
    run_case,
    write_repro_artifact,
)
from repro.core import MalacologyCluster
from repro.objclass.bundled import cls_changelog


# ----------------------------------------------------------------------
# Schedule transparency: armed-but-empty == never-attached
# ----------------------------------------------------------------------
def _taped_run(with_engine):
    """Run a fixed workload; return the full network tape digest."""
    c = MalacologyCluster.build(osds=3, mons=3, seed=1234)
    tape = []
    orig = c.net.send

    def spy(src, dst, msg):
        tape.append((round(c.sim.now, 9), src, dst,
                     getattr(msg, "method", None)
                     or getattr(msg, "kind", None)))
        return orig(src, dst, msg)

    c.net.send = spy
    engine = None
    if with_engine:
        engine = NemesisEngine(c)
        engine.arm(NemesisSchedule(name="empty", duration=5.0))
    client = c.new_client("load")

    def work():
        for i in range(8):
            yield from client.rados_write_full("data", f"obj{i}",
                                               bytes([i]) * 32)
        for i in range(8):
            got = yield from client.rados_read("data", f"obj{i}")
            assert got == bytes([i]) * 32

    c.sim.run_until_complete(client.do(work()))
    c.run(10.0)
    if engine is not None:
        engine.finalize()
        c.run(2.0)
    else:
        c.run(2.0)
    h = hashlib.sha256()
    for entry in tape:
        h.update(repr(entry).encode())
    return len(tape), h.hexdigest()


def test_armed_empty_schedule_is_schedule_transparent():
    bare = _taped_run(with_engine=False)
    armed = _taped_run(with_engine=True)
    assert armed == bare


# ----------------------------------------------------------------------
# Clean sweeps: shipped scenarios heal on representative seeds
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scenario,seed", [
    ("rolling-crash", 3),
    ("net-chaos", 5),
    ("torn-store", 1),
    ("changelog-flap", 2),
])
def test_scenario_passes_oracles(scenario, seed):
    verdict = run_case(scenario, seed)
    assert verdict.error is None
    assert verdict.ok, [v.to_dict() for v in verdict.violations]
    # The run must have actually injected something: a no-fault pass
    # is vacuous.
    assert verdict.stats["schedule"]["ops"]
    engine = verdict.stats["engine"]
    assert engine["injector_faults"] + engine["store_faults"] > 0


# ----------------------------------------------------------------------
# Oracle sensitivity: a planted dedup bug is caught and minimized
# ----------------------------------------------------------------------
def _without_dedup(orig):
    """An ``append`` that forgets every producer's pseq watermark —
    the retry-dedup guard is gone, so a client retry after a lost ack
    re-appends the same records at fresh seqs."""
    def no_dedup(ctx, args):
        ctx.xattr_set("chlog.pseq", {})
        return orig(ctx, args)
    return no_dedup


def test_sabotaged_dedup_is_caught_minimized_and_reproducible(
        monkeypatch, tmp_path):
    # The registry is copied per OSD at construction time, so the
    # patch must land in METHODS before run_case builds the cluster.
    orig = cls_changelog.METHODS["append"]
    monkeypatch.setitem(cls_changelog.METHODS, "append",
                        _without_dedup(orig))

    # changelog-flap seed 2: one append's ack is lost in a loss
    # window, the writer's rados_op retries, and without dedup the
    # batch lands twice.
    verdict = run_case("changelog-flap", 2)
    assert not verdict.ok
    assert any(v.oracle == "changelog" and "logged twice" in v.detail
               for v in verdict.violations), \
        [v.to_dict() for v in verdict.violations]

    full = NemesisSchedule.from_dict(verdict.stats["schedule"])
    minimal, final, runs = minimize_case("changelog-flap", 2, full)
    assert 1 <= len(minimal.ops) <= len(full.ops)
    assert not final.ok
    assert runs >= 1

    path = write_repro_artifact(
        str(tmp_path / "repro.json"), "changelog-flap", 2,
        full, minimal, final, runs)
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    assert doc["kind"] == "chaos-repro"
    assert doc["minimized_ops"] == len(minimal.ops)
    assert "python -m repro.chaos run" in doc["replay"]
    # The artifact's schedule replays: same seed + same schedule
    # reproduces the violation deterministically.
    replayed = NemesisSchedule.from_dict(doc["schedule"])
    again = run_case("changelog-flap", 2, schedule=replayed)
    assert not again.ok

    # And the guard itself is what the rig was testing: with dedup
    # restored, the very same minimal schedule is harmless.
    monkeypatch.setitem(cls_changelog.METHODS, "append", orig)
    healthy = run_case("changelog-flap", 2, schedule=replayed)
    assert healthy.ok, [v.to_dict() for v in healthy.violations]
